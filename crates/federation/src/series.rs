//! The federation's global telemetry series (`federation.*` names).

use std::sync::{Arc, OnceLock};

use acc_telemetry::{registry, Counter};

/// Federation-layer series, shared by the lookup service and the
/// discovery bus.
pub(crate) struct FederationSeries {
    /// Service registrations granted (leases issued).
    pub lease_granted: Arc<Counter>,
    /// Lease renewals that succeeded.
    pub lease_renewed: Arc<Counter>,
    /// Registrations cancelled explicitly.
    pub lease_cancelled: Arc<Counter>,
    /// Registrations reaped because their lease lapsed.
    pub lease_expired: Arc<Counter>,
    /// Associative lookups served.
    pub lookups: Arc<Counter>,
    /// Lookup services announced on the discovery bus.
    pub announcements: Arc<Counter>,
    /// Discovery requests answered.
    pub discoveries: Arc<Counter>,
}

/// The lazily registered federation series (one set per process).
pub(crate) fn series() -> &'static FederationSeries {
    static SERIES: OnceLock<FederationSeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        FederationSeries {
            lease_granted: r.counter("federation.lease.granted"),
            lease_renewed: r.counter("federation.lease.renewed"),
            lease_cancelled: r.counter("federation.lease.cancelled"),
            lease_expired: r.counter("federation.lease.expired"),
            lookups: r.counter("federation.lookup.queries"),
            announcements: r.counter("federation.discovery.announcements"),
            discoveries: r.counter("federation.discovery.requests"),
        }
    })
}
