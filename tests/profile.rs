//! Acceptance test for the job profiler: a master and two remote
//! workers, one artificially slowed. `/profile.json` must report a
//! critical path dominated by the slow worker, the verdict
//! `straggler-bound`, and phase totals that reconcile with the job's
//! measured wall-clock within 10%. Tail-based retention must keep the
//! slow job's full trace in the flight recorder while a later flood of
//! fast tasks ages everything else out of the rings.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::Payload;
use adaptive_spaces::telemetry::{flight, registry, TraceAssembler};

/// Inputs at or above this are "filler" tasks: they return immediately
/// instead of sleeping. Remote workers are bound to the job installed
/// when they joined, so both phases of the test run under one job name
/// and the task input selects the behaviour.
const FILLER_BASE: u64 = 1 << 32;

/// Adds one to each input. Ordinary tasks sleep — much longer on any
/// worker whose thread name marks it slow (worker threads are named
/// `acc-worker-<node>`), so the node name selects the behaviour — a
/// degraded machine running the same binary. Filler tasks skip the
/// sleep entirely.
struct SkewedApp {
    n: u64,
    filler: bool,
    total: u64,
}

impl Application for SkewedApp {
    fn job_name(&self) -> String {
        "skewed".into()
    }
    fn bundle_name(&self) -> String {
        "skewed-bundle".into()
    }
    fn bundle_kb(&self) -> usize {
        1
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        let base = if self.filler { FILLER_BASE } else { 0 };
        (0..self.n).map(|i| TaskSpec::new(i, &(base + i))).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        struct Exec;
        impl TaskExecutor for Exec {
            fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                let x: u64 = task.input()?;
                if x < FILLER_BASE {
                    let slow = std::thread::current()
                        .name()
                        .is_some_and(|n| n.contains("slow"));
                    std::thread::sleep(Duration::from_millis(if slow { 80 } else { 6 }));
                }
                Ok((x + 1).to_bytes())
            }
        }
        Arc::new(Exec)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)? % FILLER_BASE;
        Ok(())
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// Pulls `"key":<int>` out of the JSON following `anchor` — enough of a
/// parser for the fields this test asserts on.
fn json_int_after(json: &str, anchor: &str, key: &str) -> Option<i64> {
    let at = json.find(anchor)?;
    let rest = &json[at..];
    let kat = rest.find(&format!("\"{key}\":"))?;
    let num = &rest[kat + key.len() + 3..];
    let end = num
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

#[test]
fn profile_names_the_straggler_and_retention_outlives_ring_overflow() {
    flight::install();
    flight::clear();
    flight::clear_retained();

    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        task_poll_timeout: Duration::from_millis(10),
        class_load_base: Duration::from_millis(1),
        class_load_per_kb: Duration::ZERO,
        task_prefetch: 1,
        metrics_interval: Duration::from_millis(25),
        // Keep the straggler detector out of the way: if it flags the
        // slow worker the monitor excludes it mid-run and the fast
        // worker bounds the job instead. The profiler's own peer-ratio
        // rule (~13x mean compute) must name the straggler unaided.
        straggler_k: 100.0,
        straggler_min_samples: 3,
        // Deep enough that the slow job's compute samples still anchor
        // the workers' retention threshold while the filler phase floods
        // the same per-job history ring with near-zero samples.
        history_depth: 2048,
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config)
        .space_name("profiled-space")
        .observe("127.0.0.1:0")
        .build();
    let addr = cluster.observe_addr().expect("observer endpoint mounted");
    let mut app = SkewedApp {
        n: 80,
        filler: false,
        total: 0,
    };
    cluster.install(&app);
    cluster
        .add_remote_worker(NodeSpec::new("fast-0", 800, 256))
        .expect("fast worker connects");
    cluster
        .add_remote_worker(NodeSpec::new("slow-1", 800, 256))
        .expect("slow worker connects");

    // Both workers federating heartbeats means both are up and taking
    // before the job starts, so the bounding chain spans the whole run.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let json = http_get(addr, "/cluster.json");
        let fast_hist = json_int_after(&json, "\"fast-0\"", "history_samples").unwrap_or(0);
        let slow_hist = json_int_after(&json, "\"slow-1\"", "history_samples").unwrap_or(0);
        if fast_hist >= 3 && slow_hist >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers never federated 3 heartbeats: {json}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Whose result closes the job is a race in the final task handoff
    // (the fast worker can snatch the last task while the slow one is
    // mid-task), so allow a few runs; each rerun of the same job name
    // resets its profile. The expected outcome dominates every run.
    let mut profile_json = String::new();
    let mut ok = false;
    for _attempt in 0..3 {
        app.total = 0;
        let report = cluster.run(&mut app);
        assert!(report.complete, "failures: {:?}", report.failures);
        assert_eq!(report.results_collected, 80);
        assert_eq!(app.total, (1..=80u64).sum::<u64>());

        profile_json = http_get(addr, "/profile.json");
        let wall_us = json_int_after(&profile_json, "\"skewed\"", "wall_ms").unwrap_or(0) * 1000;
        let total_us = json_int_after(&profile_json, "critical_path", "total_us").unwrap_or(0);
        let reconciles = wall_us > 0 && (total_us - wall_us).abs() <= wall_us / 10;
        if profile_json.contains("\"verdict\":\"straggler-bound\"")
            && profile_json.contains("\"critical_path\":{\"worker\":\"slow-1\"")
            && reconciles
            && !flight::retained_traces().is_empty()
        {
            ok = true;
            break;
        }
        eprintln!(
            "attempt missed: wall_us={wall_us} total_us={total_us} retained={} — {profile_json}",
            flight::retained_traces().len()
        );
    }
    assert!(ok, "no run produced the expected profile: {profile_json}");

    // The winning profile's shape: all 80 results folded in, no errors,
    // a finished job, raw phase totals carrying the compute skew
    // (every task sleeps at least 6 ms), and a non-empty bounding chain
    // attributed to the slow worker.
    assert!(
        json_int_after(&profile_json, "\"skewed\"", "tasks") == Some(80),
        "{profile_json}"
    );
    assert!(
        json_int_after(&profile_json, "\"skewed\"", "errors") == Some(0),
        "{profile_json}"
    );
    assert!(profile_json.contains("\"finished\":true"), "{profile_json}");
    assert!(
        json_int_after(&profile_json, "phases", "compute_us").unwrap_or(0) >= 480_000,
        "{profile_json}"
    );
    assert!(
        profile_json.contains("\"task\":"),
        "critical path has no task segments: {profile_json}"
    );
    // The human waterfall names the same bound.
    let text = http_get(addr, "/profile");
    assert!(text.contains("verdict: straggler-bound"), "{text}");
    assert!(text.contains("critical path (worker slow-1"), "{text}");
    // The flight occupancy satellite reports through /cluster.json.
    let cluster_json = http_get(addr, "/cluster.json");
    assert!(
        cluster_json.contains("\"flight\":{\"dropped_events\":"),
        "{cluster_json}"
    );

    // Tail retention: the slow job's trace ids are pinned. Flood the
    // workers with trivial tasks until their flight rings overflow; the
    // pinned records must move to the kept buffer while unpinned filler
    // spans are dropped.
    let retained_before = flight::retained_traces();
    let dropped_before = registry().counter("telemetry.flight.dropped_events").get();
    app.n = 900;
    app.filler = true;
    app.total = 0;
    let report = cluster.run(&mut app);
    assert!(report.complete, "failures: {:?}", report.failures);
    assert_eq!(report.results_collected, 900);
    assert_eq!(app.total, (1..=900u64).sum::<u64>());

    let dropped_after = registry().counter("telemetry.flight.dropped_events").get();
    assert!(
        dropped_after > dropped_before,
        "filler flood never overflowed a flight ring ({dropped_before} -> {dropped_after})"
    );
    assert!(
        flight::occupancy().iter().any(|o| o.kept > 0),
        "no thread moved retained records to its kept buffer: {:?}",
        flight::occupancy()
    );
    // A pinned slow-job trace still assembles with full span detail —
    // including a worker.compute span that carries the 80 ms straggler
    // task — even though the rings have since turned over completely.
    let mut asm = TraceAssembler::new();
    asm.add_flight_json("test-process", &flight::dump_json());
    let slow_span_survives = retained_before.iter().any(|&trace_id| {
        asm.spans(trace_id)
            .iter()
            .any(|s| s.name == "worker.compute" && s.elapsed_us >= 60_000)
    });
    assert!(
        slow_span_survives,
        "no retained trace kept a slow worker.compute span; retained={retained_before:?}"
    );

    cluster.shutdown();
}
