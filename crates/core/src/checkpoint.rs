//! Master checkpoint state: persisted task cursor and aggregated partials.
//!
//! The paper's fault-tolerance story covers workers (a taken task is
//! protected by a transaction) but the master is a single point of failure:
//! if it dies mid-aggregation, absorbed results are gone even though the
//! durable space still holds the unconsumed ones. A [`CheckpointState`]
//! closes that gap — [`crate::Master::run_with_checkpoint`] persists the
//! set of completed task ids plus the application's serialized partial
//! aggregate, so a restarted master re-issues only uncompleted tasks and
//! never double-absorbs a result.
//!
//! The file format is self-validating: an 8-byte magic, a little-endian
//! body length, a CRC-32 of the body, then the body (a
//! [`Payload`] encoding). The file is replaced atomically on every save
//! (temp file + fsync + rename), so a crash mid-save leaves the previous
//! checkpoint intact.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

use acc_durability::{crc32, write_atomic};
use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};

/// File magic: "adaptive cluster computing checkpoint, version 1".
const MAGIC: &[u8; 8] = b"ACCCKPT1";

/// Everything a restarted master needs to resume an interrupted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointState {
    /// Job name — a checkpoint for a different job is ignored on load.
    pub job: String,
    /// Total number of planned tasks.
    pub total: u64,
    /// Task ids whose results have been absorbed (or terminally failed).
    pub completed: BTreeSet<u64>,
    /// The application's serialized partial aggregate
    /// ([`crate::Application::snapshot_partials`]).
    pub app_state: Vec<u8>,
}

impl Payload for CheckpointState {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(&self.job);
        w.put_u64(self.total);
        w.put_u32(self.completed.len() as u32);
        for id in &self.completed {
            w.put_u64(*id);
        }
        w.put_blob(&self.app_state);
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        let job = r.get_str()?;
        let total = r.get_u64()?;
        let count = r.get_u32()?;
        if count as usize > (1 << 24) {
            return Err(PayloadError::Corrupt("completed-set length"));
        }
        let mut completed = BTreeSet::new();
        for _ in 0..count {
            completed.insert(r.get_u64()?);
        }
        let app_state = r.get_blob()?;
        Ok(CheckpointState {
            job,
            total,
            completed,
            app_state,
        })
    }
}

impl CheckpointState {
    /// Atomically replaces the checkpoint file with this state.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let body = self.to_bytes();
        let mut bytes = Vec::with_capacity(MAGIC.len() + 8 + body.len());
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        write_atomic(path, &bytes)
    }

    /// Loads a checkpoint; `Ok(None)` when the file does not exist.
    ///
    /// A malformed file is an error rather than `None`: saves are atomic,
    /// so corruption means something external damaged the file and silently
    /// restarting from scratch could double-absorb results.
    pub fn load(path: &Path) -> io::Result<Option<CheckpointState>> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let corrupt = |what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint {}: {what}", path.display()),
            )
        };
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let body = &bytes[16..];
        if body.len() != len {
            return Err(corrupt("length mismatch"));
        }
        if crc32(body) != crc {
            return Err(corrupt("crc mismatch"));
        }
        let state =
            CheckpointState::from_bytes(body).map_err(|e| corrupt(&format!("body: {e}")))?;
        Ok(Some(state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> CheckpointState {
        CheckpointState {
            job: "pricing".into(),
            total: 50,
            completed: [0u64, 3, 7, 41].into_iter().collect(),
            app_state: vec![1, 2, 3, 4],
        }
    }

    fn path(label: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("acc-ckpt-{}-{label}.bin", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let p = path("roundtrip");
        let s = state();
        s.save(&p).unwrap();
        assert_eq!(CheckpointState::load(&p).unwrap(), Some(s));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn missing_file_loads_none() {
        assert_eq!(CheckpointState::load(&path("missing")).unwrap(), None);
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_fresh_start() {
        let p = path("corrupt");
        state().save(&p).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        assert!(CheckpointState::load(&p).is_err());
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn save_replaces_previous_state() {
        let p = path("replace");
        state().save(&p).unwrap();
        let mut s2 = state();
        s2.completed.insert(42);
        s2.save(&p).unwrap();
        assert_eq!(CheckpointState::load(&p).unwrap(), Some(s2));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn empty_state_roundtrips() {
        let s = CheckpointState {
            job: String::new(),
            total: 0,
            completed: BTreeSet::new(),
            app_state: vec![],
        };
        assert_eq!(CheckpointState::from_bytes(&s.to_bytes()), Ok(s));
    }
}
