//! A network-accessible space: TCP server and remote client.
//!
//! JavaSpaces is "a shared, **network-accessible** repository for Java
//! objects" — masters and workers on different machines reach the same
//! space. [`SpaceServer`] serves an in-process [`Space`] over TCP with
//! length-prefixed frames; [`RemoteSpace`] is the client-side proxy and
//! implements [`TupleStore`], so the framework's master and workers work
//! against it unchanged.
//!
//! **Trust model:** the protocol is unauthenticated — any connector can
//! read, take, or close the space, matching the paper's era (JavaSpaces
//! relied on the deployment network's perimeter; its community-string-like
//! controls lived in Jini security policies, out of scope here). Bind to
//! loopback or a trusted segment.
//!
//! Protocol: length-prefixed frames over one connection. Plain (v0/v1)
//! requests are served synchronously — one request/response at a time —
//! and blocking `read`/`take` block on the *server* (each connection gets
//! its own service thread), exactly like a JavaSpaces proxy blocking on
//! the remote call. Protocol v2 adds batch operations (`WriteAll`,
//! `TakeUpTo`) and *pipelined* requests: a client may send several
//! [`Request::Corr`]-wrapped frames back to back and collect the
//! correlated responses afterwards, paying one round trip for the whole
//! batch instead of one per tuple.
//!
//! ```
//! use acc_tuplespace::{RemoteSpace, Space, SpaceServer, Template, Tuple, TupleStore};
//!
//! let space = Space::new("shared");
//! let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
//! let proxy = RemoteSpace::connect(server.addr()).unwrap();
//!
//! proxy.write(Tuple::build("task").field("id", 1i64).done()).unwrap();
//! let got = space.take_if_exists(&Template::of_type("task")).unwrap();
//! assert_eq!(got.unwrap().get_int("id"), Some(1));
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acc_telemetry::TraceContext;
use parking_lot::Mutex;

use crate::error::{SpaceError, SpaceResult};
use crate::lease::Lease;
use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::space::{EntryId, Space};
use crate::store::TupleStore;
use crate::template::Template;
use crate::tuple::Tuple;

const MAX_FRAME: usize = 16 << 20;

/// Wire-protocol series: the error path (reconnects, negotiated version,
/// restored tuples) plus the zero-copy path's health — bytes moved per
/// frame, how often per-connection frame buffers were actually reused,
/// and the server pipeline pool's backlog.
struct NetSeries {
    reconnects: Arc<acc_telemetry::Counter>,
    protocol_version: Arc<acc_telemetry::Gauge>,
    tuples_restored: Arc<acc_telemetry::Counter>,
    /// Total frame bytes moved (headers + payloads, both directions).
    frame_bytes: Arc<acc_telemetry::Counter>,
    /// Frame reads served from a recycled per-connection buffer…
    buffer_reuse_hits: Arc<acc_telemetry::Counter>,
    /// …vs. reads that had to allocate (first read, or the previous frame
    /// is still pinned by decoded values borrowing it).
    buffer_reuse_misses: Arc<acc_telemetry::Counter>,
    /// Jobs queued or running in server pipeline pools right now.
    pipeline_queue_depth: Arc<acc_telemetry::Gauge>,
    /// Submissions that found every pool slot busy and had to queue.
    pipeline_saturated: Arc<acc_telemetry::Counter>,
}

fn net_series() -> &'static NetSeries {
    static SERIES: std::sync::OnceLock<NetSeries> = std::sync::OnceLock::new();
    SERIES.get_or_init(|| {
        let r = acc_telemetry::registry();
        NetSeries {
            reconnects: r.counter("remote.reconnects"),
            protocol_version: r.gauge("remote.protocol_version"),
            tuples_restored: r.counter("server.tuples_restored"),
            frame_bytes: r.counter("remote.frame_bytes"),
            buffer_reuse_hits: r.counter("remote.buffer_reuse_hits"),
            buffer_reuse_misses: r.counter("remote.buffer_reuse_misses"),
            pipeline_queue_depth: r.gauge("server.pipeline_queue_depth"),
            pipeline_saturated: r.counter("server.pipeline_saturated"),
        }
    })
}

/// Current wire-protocol version, exchanged via [`Request::Hello`].
///
/// * **Version 1** adds the `Hello` handshake and the `Traced` request
///   envelope carrying a distributed [`TraceContext`]. Version-0 peers
///   (the seed protocol) never see either: a v0 server drops the
///   connection on the unknown `Hello` tag, which the client takes as
///   "speak v0" and reconnects plain.
/// * **Version 2** adds the batch operations `WriteAll` / `TakeUpTo` and
///   the `Corr` correlation envelope for pipelining several in-flight
///   requests over one connection. The client gates every v2 frame on the
///   version the server answered, so v0/v1 peers keep interoperating —
///   batch trait calls silently degrade to loops of single-tuple frames.
pub const PROTO_VERSION: u32 = 2;

#[derive(Debug, Clone, PartialEq)]
enum Request {
    /// Write with optional lease (`None` = forever, `Some(ms)`).
    Write(Tuple, Option<u64>),
    /// Read with optional timeout in ms (`None` = wait forever).
    Read(Template, Option<u64>),
    /// Take with optional timeout in ms.
    Take(Template, Option<u64>),
    /// Count matching tuples.
    Count(Template),
    /// Close the space.
    Close,
    /// Is the space closed?
    IsClosed,
    /// Version handshake: client sends its protocol version, server
    /// answers [`Response::Proto`]. (v1+)
    Hello(u32),
    /// A basic request wrapped with the sender's trace context, so the
    /// server-side handler span joins the client's trace. (v1+)
    Traced {
        trace_id: u64,
        span_id: u64,
        inner: Box<Request>,
    },
    /// Batch write: every tuple stored under one optional lease in a
    /// single space operation (one round trip, one wakeup per shard). (v2+)
    WriteAll(Vec<Tuple>, Option<u64>),
    /// Batch take: block up to the timeout for the first match, then drain
    /// up to `max` currently matching tuples without further waiting. (v2+)
    TakeUpTo(Template, u64, Option<u64>),
    /// Pipelining envelope: the response to this request is wrapped in
    /// [`Response::Corr`] with the same correlation id, so several
    /// requests can be in flight on one connection and their responses
    /// matched up out of order. May wrap an operation or a `Traced`
    /// envelope — never a `Hello` or another `Corr`. (v2+)
    Corr { corr_id: u64, inner: Box<Request> },
}

impl Payload for Request {
    fn encode(&self, w: &mut WireWriter) {
        let put_opt = |w: &mut WireWriter, v: &Option<u64>| match v {
            Some(ms) => {
                w.put_bool(true);
                w.put_u64(*ms);
            }
            None => w.put_bool(false),
        };
        match self {
            Request::Write(tuple, lease) => {
                w.put_u8(1);
                tuple.encode(w);
                put_opt(w, lease);
            }
            Request::Read(tmpl, timeout) => {
                w.put_u8(2);
                tmpl.encode(w);
                put_opt(w, timeout);
            }
            Request::Take(tmpl, timeout) => {
                w.put_u8(3);
                tmpl.encode(w);
                put_opt(w, timeout);
            }
            Request::Count(tmpl) => {
                w.put_u8(4);
                tmpl.encode(w);
            }
            Request::Close => w.put_u8(5),
            Request::IsClosed => w.put_u8(6),
            Request::Hello(version) => {
                w.put_u8(7);
                w.put_u32(*version);
            }
            Request::Traced {
                trace_id,
                span_id,
                inner,
            } => {
                w.put_u8(8);
                w.put_u64(*trace_id);
                w.put_u64(*span_id);
                inner.encode(w);
            }
            Request::WriteAll(tuples, lease) => {
                w.put_u8(9);
                w.put_u32(tuples.len() as u32);
                for tuple in tuples {
                    tuple.encode(w);
                }
                put_opt(w, lease);
            }
            Request::TakeUpTo(tmpl, max, timeout) => {
                w.put_u8(10);
                tmpl.encode(w);
                w.put_u64(*max);
                put_opt(w, timeout);
            }
            Request::Corr { corr_id, inner } => {
                w.put_u8(11);
                w.put_u64(*corr_id);
                inner.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            7 => Ok(Request::Hello(r.get_u32()?)),
            8 => Request::decode_traced(r),
            11 => {
                let corr_id = r.get_u64()?;
                // A correlation envelope wraps an operation or one trace
                // envelope — never a handshake or another `Corr`, so frame
                // nesting is bounded at depth two (no recursion through
                // `decode`, which a hostile frame could stack ~1M deep).
                let inner = match r.get_u8()? {
                    8 => Request::decode_traced(r)?,
                    tag => Request::decode_op(tag, r)?,
                };
                Ok(Request::Corr {
                    corr_id,
                    inner: Box::new(inner),
                })
            }
            tag => Request::decode_op(tag, r),
        }
    }
}

impl Request {
    /// Decodes a trace envelope body (tag 8 already consumed). The
    /// envelope may only wrap an *operation* — decoding the inner tag
    /// through `decode` again would let a hostile frame nest envelopes
    /// arbitrarily deep inside MAX_FRAME and blow the service thread's
    /// stack.
    fn decode_traced(r: &mut WireReader) -> Result<Request, PayloadError> {
        let trace_id = r.get_u64()?;
        let span_id = r.get_u64()?;
        let inner = Request::decode_op(r.get_u8()?, r)?;
        Ok(Request::Traced {
            trace_id,
            span_id,
            inner: Box::new(inner),
        })
    }

    /// Decodes the operation set — the version-0 requests (tags 1–6) plus
    /// the v2 batch operations (tags 9–10); everything except the
    /// handshake and the two envelopes.
    fn decode_op(tag: u8, r: &mut WireReader) -> Result<Request, PayloadError> {
        let get_opt = |r: &mut WireReader| -> Result<Option<u64>, PayloadError> {
            if r.get_bool()? {
                Ok(Some(r.get_u64()?))
            } else {
                Ok(None)
            }
        };
        match tag {
            1 => {
                let tuple = Tuple::decode(r)?;
                let lease = get_opt(r)?;
                Ok(Request::Write(tuple, lease))
            }
            2 => {
                let tmpl = Template::decode(r)?;
                let timeout = get_opt(r)?;
                Ok(Request::Read(tmpl, timeout))
            }
            3 => {
                let tmpl = Template::decode(r)?;
                let timeout = get_opt(r)?;
                Ok(Request::Take(tmpl, timeout))
            }
            4 => Ok(Request::Count(Template::decode(r)?)),
            5 => Ok(Request::Close),
            6 => Ok(Request::IsClosed),
            9 => {
                let n = r.get_u32()? as usize;
                // The count is attacker-controlled, so the pre-reserve is
                // capped: a lying header wastes at most 1024 slots before
                // the bounded body (MAX_FRAME) runs out of tuples.
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(Tuple::decode(r)?);
                }
                let lease = if r.get_bool()? {
                    Some(r.get_u64()?)
                } else {
                    None
                };
                Ok(Request::WriteAll(tuples, lease))
            }
            10 => {
                let tmpl = Template::decode(r)?;
                let max = r.get_u64()?;
                let timeout = if r.get_bool()? {
                    Some(r.get_u64()?)
                } else {
                    None
                };
                Ok(Request::TakeUpTo(tmpl, max, timeout))
            }
            _ => Err(PayloadError::Corrupt("request tag")),
        }
    }

    /// The operation name a [`Request::Traced`] envelope's server-side
    /// span reports.
    fn op_name(&self) -> &'static str {
        match self {
            Request::Write(..) => "write",
            Request::Read(..) => "read",
            Request::Take(..) => "take",
            Request::Count(..) => "count",
            Request::Close => "close",
            Request::IsClosed => "is_closed",
            Request::Hello(..) => "hello",
            Request::Traced { .. } => "traced",
            Request::WriteAll(..) => "write_all",
            Request::TakeUpTo(..) => "take_up_to",
            Request::Corr { .. } => "corr",
        }
    }

    /// The lowest protocol version whose peers understand this request —
    /// what a version-capped server checks to emulate an older peer
    /// (older servers genuinely cannot decode newer tags and hang up; the
    /// cap reproduces that hangup without a second codebase).
    fn min_version(&self) -> u32 {
        match self {
            Request::Write(..)
            | Request::Read(..)
            | Request::Take(..)
            | Request::Count(..)
            | Request::Close
            | Request::IsClosed => 0,
            Request::Hello(..) => 1,
            Request::Traced { inner, .. } => inner.min_version().max(1),
            Request::WriteAll(..) | Request::TakeUpTo(..) => 2,
            Request::Corr { inner, .. } => inner.min_version().max(2),
        }
    }

    /// True when serving this request *removes* tuples from the space. If
    /// the response to such a request cannot be delivered, the server must
    /// restore the taken tuples (see [`restore_unacked`]) — otherwise a
    /// connection dropped between the take and the response destroys them.
    fn is_destructive(&self) -> bool {
        match self {
            Request::Take(..) | Request::TakeUpTo(..) => true,
            Request::Traced { inner, .. } | Request::Corr { inner, .. } => inner.is_destructive(),
            _ => false,
        }
    }

    /// True when serving this request may park the serving thread waiting
    /// on the space. Pipelined requests that cannot block are served
    /// inline on the connection thread; only ones that can occupy a
    /// [`PipelinePool`] slot.
    fn may_block(&self) -> bool {
        match self {
            Request::Read(_, timeout) | Request::Take(_, timeout) => !matches!(timeout, Some(0)),
            Request::TakeUpTo(_, _, timeout) => !matches!(timeout, Some(0)),
            Request::Traced { inner, .. } | Request::Corr { inner, .. } => inner.may_block(),
            _ => false,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Response {
    Id(EntryId),
    MaybeTuple(Option<Tuple>),
    Count(u64),
    Bool(bool),
    Unit,
    /// An error code plus a detail string (empty except for `Storage`,
    /// `Transport` and `Protocol`).
    Err(u8, String),
    /// The server's protocol version, answering [`Request::Hello`]. (v1+)
    Proto(u32),
    /// Entry ids of a batch write, answering [`Request::WriteAll`]. (v2+)
    Ids(Vec<EntryId>),
    /// Tuples of a batch take, answering [`Request::TakeUpTo`]. (v2+)
    Tuples(Vec<Tuple>),
    /// The correlated answer to a [`Request::Corr`] envelope. (v2+)
    Corr {
        corr_id: u64,
        inner: Box<Response>,
    },
}

fn error_encode(e: &SpaceError) -> Response {
    let code = match e {
        SpaceError::Closed => 1,
        SpaceError::TxnInactive => 2,
        SpaceError::NoSuchEntry => 3,
        SpaceError::LeaseExpired => 4,
        SpaceError::NoSuchRegistration => 5,
        SpaceError::EntryLocked => 6,
        SpaceError::Storage(_) => 7,
        SpaceError::Transport(_) => 8,
        SpaceError::Protocol(_) => 9,
    };
    let detail = match e {
        SpaceError::Storage(msg) | SpaceError::Transport(msg) | SpaceError::Protocol(msg) => {
            msg.clone()
        }
        _ => String::new(),
    };
    Response::Err(code, detail)
}

fn error_from(code: u8, detail: String) -> SpaceError {
    match code {
        1 => SpaceError::Closed,
        2 => SpaceError::TxnInactive,
        3 => SpaceError::NoSuchEntry,
        4 => SpaceError::LeaseExpired,
        6 => SpaceError::EntryLocked,
        7 => SpaceError::Storage(detail),
        8 => SpaceError::Transport(detail),
        9 => SpaceError::Protocol(detail),
        _ => SpaceError::NoSuchRegistration,
    }
}

impl Payload for Response {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Response::Id(id) => {
                w.put_u8(1);
                w.put_u64(*id);
            }
            Response::MaybeTuple(None) => w.put_u8(2),
            Response::MaybeTuple(Some(tuple)) => {
                w.put_u8(3);
                tuple.encode(w);
            }
            Response::Count(n) => {
                w.put_u8(4);
                w.put_u64(*n);
            }
            Response::Bool(b) => {
                w.put_u8(5);
                w.put_bool(*b);
            }
            Response::Unit => w.put_u8(6),
            Response::Err(code, detail) => {
                w.put_u8(7);
                w.put_u8(*code);
                w.put_str(detail);
            }
            Response::Proto(version) => {
                w.put_u8(8);
                w.put_u32(*version);
            }
            Response::Ids(ids) => {
                w.put_u8(9);
                w.put_u32(ids.len() as u32);
                for id in ids {
                    w.put_u64(*id);
                }
            }
            Response::Tuples(tuples) => {
                w.put_u8(10);
                w.put_u32(tuples.len() as u32);
                for tuple in tuples {
                    tuple.encode(w);
                }
            }
            Response::Corr { corr_id, inner } => {
                w.put_u8(11);
                w.put_u64(*corr_id);
                inner.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            11 => {
                let corr_id = r.get_u64()?;
                // Correlation envelopes never nest (same stack-depth guard
                // as on the request side).
                let inner = Response::decode_flat(r.get_u8()?, r)?;
                Ok(Response::Corr {
                    corr_id,
                    inner: Box::new(inner),
                })
            }
            tag => Response::decode_flat(tag, r),
        }
    }
}

impl Response {
    /// Decodes every response except the correlation envelope.
    fn decode_flat(tag: u8, r: &mut WireReader) -> Result<Response, PayloadError> {
        match tag {
            1 => Ok(Response::Id(r.get_u64()?)),
            2 => Ok(Response::MaybeTuple(None)),
            3 => Ok(Response::MaybeTuple(Some(Tuple::decode(r)?))),
            4 => Ok(Response::Count(r.get_u64()?)),
            5 => Ok(Response::Bool(r.get_bool()?)),
            6 => Ok(Response::Unit),
            7 => Ok(Response::Err(r.get_u8()?, r.get_str()?)),
            8 => Ok(Response::Proto(r.get_u32()?)),
            9 => {
                let n = r.get_u32()? as usize;
                // Capped pre-reserve; see `Request::decode` for rationale.
                let mut ids = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ids.push(r.get_u64()?);
                }
                Ok(Response::Ids(ids))
            }
            10 => {
                let n = r.get_u32()? as usize;
                let mut tuples = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tuples.push(Tuple::decode(r)?);
                }
                Ok(Response::Tuples(tuples))
            }
            _ => Err(PayloadError::Corrupt("response tag")),
        }
    }
}

fn write_frame(stream: &mut TcpStream, payload: &impl Payload) -> std::io::Result<()> {
    let bytes = payload.to_bytes();
    // Reject oversized frames before the length prefix goes out: casting
    // an over-4GiB length to u32 would wrap the prefix and desync the
    // stream, and anything over MAX_FRAME would be rejected by the peer's
    // reader anyway — after we already paid to send it.
    if bytes.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "frame too large to send: {} > {MAX_FRAME} bytes",
                bytes.len()
            ),
        ));
    }
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()
}

/// Reads and validates a frame's length prefix — the one place frame-size
/// edge cases are policed. Empty frames are rejected here: every legal
/// request/response encodes at least a tag byte, so a zero length means a
/// desynced or hostile peer, and catching it at the prefix keeps the
/// decoders free of empty-input special cases.
fn read_frame_len(stream: &mut TcpStream) -> std::io::Result<usize> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "empty frame",
        ));
    }
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    Ok(len)
}

fn read_frame_bytes(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let len = read_frame_len(stream)?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// A per-connection recycled frame buffer.
///
/// Each frame is read into a ref-counted [`bytes::Bytes`] so decoded
/// values can borrow it; once every borrower is gone, [`FramePool::recycle`]
/// reclaims the allocation for the next read. The buffer is sized by
/// high-water mark and decays: every [`FramePool::DECAY_INTERVAL`]
/// recycles, a buffer grown far beyond the recent peak frame size is
/// shrunk back to it, so one huge batch frame does not pin megabytes for
/// the life of the connection.
#[derive(Debug)]
struct FramePool {
    spare: Option<Vec<u8>>,
    /// Largest frame seen since the last decay window closed.
    seen_max: usize,
    recycles: u32,
}

impl FramePool {
    const DECAY_INTERVAL: u32 = 64;
    /// Never decay below this; tiny control frames shouldn't thrash.
    const MIN_CAPACITY: usize = 4 << 10;

    fn new() -> FramePool {
        FramePool {
            spare: None,
            seen_max: 0,
            recycles: 0,
        }
    }

    /// Reads one length-prefixed frame, reusing the recycled buffer when
    /// one is available.
    fn read_frame(&mut self, stream: &mut TcpStream) -> std::io::Result<bytes::Bytes> {
        let len = read_frame_len(stream)?;
        let net = net_series();
        let mut body = match self.spare.take() {
            Some(buf) => {
                net.buffer_reuse_hits.inc();
                buf
            }
            None => {
                net.buffer_reuse_misses.inc();
                Vec::new()
            }
        };
        body.resize(len, 0);
        stream.read_exact(&mut body)?;
        net.frame_bytes.add((len + 4) as u64);
        self.seen_max = self.seen_max.max(len);
        Ok(bytes::Bytes::from(body))
    }

    /// Hands a frame's allocation back for reuse. A frame still borrowed
    /// by decoded values (e.g. a written tuple's `Bytes` field now living
    /// in the space) is simply dropped later with its last borrower —
    /// callers recycle opportunistically and never wait.
    fn recycle(&mut self, frame: bytes::Bytes) {
        let Ok(mut buf) = frame.try_reclaim() else {
            return;
        };
        buf.clear();
        self.recycles += 1;
        if self.recycles % Self::DECAY_INTERVAL == 0 {
            let target = self.seen_max.max(Self::MIN_CAPACITY);
            if buf.capacity() > target * 2 {
                buf.shrink_to(target);
            }
            self.seen_max = 0;
        }
        // Keep the larger of the spare and the incoming buffer.
        if self
            .spare
            .as_ref()
            .is_none_or(|s| s.capacity() < buf.capacity())
        {
            self.spare = Some(buf);
        }
    }
}

/// A per-connection reusable encode buffer with vectored frame writes.
///
/// Encoding reuses one scratch [`WireWriter`] (high-water sized, decayed
/// like [`FramePool`]), and the header + payload go out in a single
/// `write_vectored` call instead of two writes or a concatenating copy.
#[derive(Debug)]
struct FrameEncoder {
    w: WireWriter,
    seen_max: usize,
    uses: u32,
}

impl FrameEncoder {
    fn new() -> FrameEncoder {
        FrameEncoder {
            w: WireWriter::new(),
            seen_max: 0,
            uses: 0,
        }
    }

    fn write_frame(
        &mut self,
        stream: &mut TcpStream,
        payload: &impl Payload,
    ) -> std::io::Result<()> {
        self.uses += 1;
        if self.uses % FramePool::DECAY_INTERVAL == 0 {
            let target = self.seen_max.max(FramePool::MIN_CAPACITY);
            if self.w.capacity() > target * 2 {
                self.w.shrink_to(target);
            }
            self.seen_max = 0;
        }
        self.w.clear();
        payload.encode(&mut self.w);
        let body = self.w.as_slice();
        // Reject oversized frames before the length prefix goes out (see
        // `write_frame`).
        if body.len() > MAX_FRAME {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "frame too large to send: {} > {MAX_FRAME} bytes",
                    body.len()
                ),
            ));
        }
        self.seen_max = self.seen_max.max(body.len());
        let header = (body.len() as u32).to_le_bytes();
        let total = header.len() + body.len();
        let mut written = 0usize;
        while written < total {
            let n = if written < header.len() {
                stream.write_vectored(&[
                    std::io::IoSlice::new(&header[written..]),
                    std::io::IoSlice::new(body),
                ])?
            } else {
                stream.write(&body[written - header.len()..])?
            };
            if n == 0 {
                return Err(std::io::ErrorKind::WriteZero.into());
            }
            written += n;
        }
        stream.flush()?;
        net_series().frame_bytes.add(total as u64);
        Ok(())
    }
}

/// Resource limits for a [`SpaceServer`]. Each accepted connection owns one
/// service thread, so an unbounded accept loop lets one misbehaving client
/// pool exhaust the server; these knobs bound both the thread count and how
/// long a silent connection may pin its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Max idle time between requests on a connection before it is dropped
    /// (`None` = wait forever). Does not limit blocking `read`/`take`
    /// service time — while those wait on the space, the socket is idle on
    /// the *client's* side, not the server's.
    pub read_timeout: Option<Duration>,
    /// Max time a response write may block before the connection is
    /// dropped (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Max concurrently served connections; connections accepted over this
    /// limit are dropped immediately.
    pub max_connections: usize,
    /// Worker threads per connection for pipelined (`Corr`) requests that
    /// can block. Non-blocking pipelined requests are served inline on the
    /// connection thread; blocking ones occupy a pool slot, and when every
    /// slot is busy they queue (bounding the per-request thread spawns the
    /// previous design paid, and the unbounded thread count with it).
    pub pipeline_workers: usize,
    /// Highest protocol version this server speaks (default
    /// [`PROTO_VERSION`]). A capped server behaves exactly like a real
    /// older build: it answers `Hello` with the capped version and hangs
    /// up on any frame that version cannot decode — which is what the
    /// cross-version interop tests rely on to emulate v0/v1 peers without
    /// keeping three codebases around.
    pub protocol_version: u32,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 128,
            pipeline_workers: 4,
            protocol_version: PROTO_VERSION,
        }
    }
}

type ConnRegistry = Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>;

/// The write half of a served connection: one socket plus one reusable
/// encode buffer behind a single lock, so every response — inline or from
/// a pipeline worker — reuses the same scratch allocation and goes out as
/// one vectored write.
struct ResponseWriter {
    stream: TcpStream,
    enc: FrameEncoder,
}

impl ResponseWriter {
    fn send(&mut self, response: &Response) -> std::io::Result<()> {
        self.enc.write_frame(&mut self.stream, response)
    }
}

/// A bounded per-connection worker pool for pipelined (`Corr`) requests
/// that can block.
///
/// The previous design spawned one thread per pipelined request — cheap
/// until a client pipelines thousands of blocking takes and the server
/// pays a thread spawn per frame plus an unbounded thread count. The pool
/// spawns lazily up to `max_workers` threads; beyond that, jobs queue.
/// Workers exit when the connection closes the channel; a worker parked
/// in a forever-blocking take drains its queue entry late, exactly as the
/// old detached thread would have.
struct PipelinePool {
    tx: Option<std::sync::mpsc::Sender<PipelineJob>>,
    rx: Arc<Mutex<std::sync::mpsc::Receiver<PipelineJob>>>,
    space: Arc<Space>,
    writer: Arc<Mutex<ResponseWriter>>,
    version: u32,
    max_workers: usize,
    spawned: usize,
    /// Jobs queued or running. Shared with workers; also mirrored into
    /// the `server.pipeline_queue_depth` gauge.
    depth: Arc<AtomicUsize>,
}

struct PipelineJob {
    corr_id: u64,
    inner: Request,
    /// Decrements depth (and the gauge) exactly once, whether the job
    /// runs, dies in the queue, or dies with the channel.
    _depth: DepthGuard,
}

struct DepthGuard(Arc<AtomicUsize>);

impl Drop for DepthGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
        net_series().pipeline_queue_depth.add(-1);
    }
}

impl PipelinePool {
    fn new(
        space: Arc<Space>,
        writer: Arc<Mutex<ResponseWriter>>,
        version: u32,
        max_workers: usize,
    ) -> PipelinePool {
        let (tx, rx) = std::sync::mpsc::channel();
        PipelinePool {
            tx: Some(tx),
            rx: Arc::new(Mutex::new(rx)),
            space,
            writer,
            version,
            max_workers: max_workers.max(1),
            spawned: 0,
            depth: Arc::new(AtomicUsize::new(0)),
        }
    }

    fn submit(&mut self, corr_id: u64, inner: Request) {
        let depth = self.depth.fetch_add(1, Ordering::SeqCst) + 1;
        let net = net_series();
        net.pipeline_queue_depth.add(1);
        if depth > self.max_workers {
            net.pipeline_saturated.inc();
        }
        if depth > self.spawned && self.spawned < self.max_workers {
            self.spawn_worker();
        }
        let tx = self.tx.as_ref().expect("pool open while serving");
        let _ = tx.send(PipelineJob {
            corr_id,
            inner,
            _depth: DepthGuard(self.depth.clone()),
        });
    }

    fn spawn_worker(&mut self) {
        self.spawned += 1;
        let rx = self.rx.clone();
        let space = self.space.clone();
        let writer = self.writer.clone();
        let version = self.version;
        std::thread::spawn(move || {
            loop {
                // Holding the lock across `recv` is the point: exactly one
                // idle worker waits on the channel, the rest park on the
                // mutex, and each job wakes exactly one of them.
                let job = match rx.lock().recv() {
                    Ok(job) => job,
                    Err(_) => break,
                };
                let destructive = job.inner.is_destructive();
                let inner = serve(&space, job.inner, version);
                let response = Response::Corr {
                    corr_id: job.corr_id,
                    inner: Box::new(inner),
                };
                let failed = writer.lock().send(&response).is_err();
                if failed && destructive {
                    restore_unacked(&space, response);
                }
                drop(job._depth);
            }
        });
    }
}

/// Serves one space over TCP loopback/network.
#[derive(Debug)]
pub struct SpaceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Live served connections, so drop can actively hang up on clients
    /// (service threads are detached; shutting their sockets down is what
    /// unblocks and ends them).
    conns: ConnRegistry,
    observer: Option<acc_telemetry::HttpServer>,
}

impl SpaceServer {
    /// Binds an ephemeral port on the given address (`"127.0.0.1:0"` for
    /// loopback) and starts serving with [`ServerOptions::default`].
    pub fn spawn(space: Arc<Space>, bind: &str) -> std::io::Result<SpaceServer> {
        SpaceServer::spawn_with(space, bind, ServerOptions::default())
    }

    /// Like [`SpaceServer::spawn_with`], plus a scrape endpoint
    /// (`/metrics`, `/metrics.json`, `/healthz`, `/spans`) on a second
    /// bind — the server-side half of the observability plane. `/healthz`
    /// checks that the served space is open and its journal flushes.
    pub fn spawn_observed(
        space: Arc<Space>,
        bind: &str,
        opts: ServerOptions,
        observe_bind: &str,
    ) -> std::io::Result<SpaceServer> {
        let health = acc_telemetry::HealthChecks::new();
        let space_open = space.clone();
        health.register("space", move || {
            if space_open.is_closed() {
                Err("space closed".into())
            } else {
                Ok("open".into())
            }
        });
        let space_wal = space.clone();
        health.register("wal", move || match space_wal.flush_journal() {
            Ok(()) => Ok("flushing".into()),
            Err(e) => Err(e.to_string()),
        });
        let observer = acc_telemetry::serve(observe_bind, health)?;
        let mut server = SpaceServer::spawn_with(space, bind, opts)?;
        server.observer = Some(observer);
        Ok(server)
    }

    /// The scrape endpoint's address, when mounted via
    /// [`SpaceServer::spawn_observed`].
    pub fn observe_addr(&self) -> Option<SocketAddr> {
        self.observer.as_ref().map(|o| o.addr())
    }

    /// Like [`SpaceServer::spawn`] with explicit resource limits.
    pub fn spawn_with(
        space: Arc<Space>,
        bind: &str,
        opts: ServerOptions,
    ) -> std::io::Result<SpaceServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let active = Arc::new(AtomicUsize::new(0));
        let conns: ConnRegistry = Arc::new(Mutex::new(std::collections::HashMap::new()));
        let conns2 = conns.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                if active.fetch_add(1, Ordering::SeqCst) >= opts.max_connections {
                    // Over the cap: release the slot and drop the socket.
                    active.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(opts.read_timeout);
                let _ = stream.set_write_timeout(opts.write_timeout);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns2.lock().insert(conn_id, clone);
                }
                let space = space.clone();
                let active = active.clone();
                let conns3 = conns2.clone();
                std::thread::spawn(move || {
                    /// Releases the connection slot and registry entry
                    /// however the thread exits.
                    struct Slot(Arc<AtomicUsize>, ConnRegistry, u64);
                    impl Drop for Slot {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                            self.1.lock().remove(&self.2);
                        }
                    }
                    let _slot = Slot(active, conns3, conn_id);
                    // Responses go through a shared writer (socket + one
                    // reusable encode buffer) so pipelined requests served
                    // on pool workers interleave their answers with the
                    // synchronous path.
                    let Ok(write_stream) = stream.try_clone() else {
                        return;
                    };
                    let writer = Arc::new(Mutex::new(ResponseWriter {
                        stream: write_stream,
                        enc: FrameEncoder::new(),
                    }));
                    let version = opts.protocol_version;
                    let mut pool = PipelinePool::new(
                        space.clone(),
                        writer.clone(),
                        version,
                        opts.pipeline_workers,
                    );
                    // Per-connection read-side state: a recycled frame
                    // buffer, the name cache shared by every decode on
                    // this connection, and the previous frame awaiting an
                    // opportunistic recycle.
                    let mut frames = FramePool::new();
                    let mut interner = crate::payload::NameInterner::new();
                    let mut last_frame: Option<bytes::Bytes> = None;
                    loop {
                        if let Some(done) = last_frame.take() {
                            // By now the previous request has been served
                            // (or handed to the pool); if nothing borrowed
                            // its frame, the next read reuses it.
                            frames.recycle(done);
                        }
                        let Ok(frame) = frames.read_frame(&mut stream) else {
                            break;
                        };
                        last_frame = Some(frame.clone());
                        let Ok(request) =
                            crate::payload::decode_frame::<Request>(frame, &mut interner)
                        else {
                            break;
                        };
                        if request.min_version() > version {
                            // A real server of the capped version could not
                            // have decoded this frame; reproduce its
                            // reaction — hang up without an answer.
                            break;
                        }
                        match request {
                            // Pipelined and possibly blocking: a pool
                            // worker serves it so the requests queued
                            // behind it aren't stalled; the response
                            // carries the correlation id back.
                            Request::Corr { corr_id, inner } if inner.may_block() => {
                                pool.submit(corr_id, *inner);
                            }
                            // Pipelined but non-blocking: serving inline
                            // is cheaper than any handoff.
                            Request::Corr { corr_id, inner } => {
                                let destructive = inner.is_destructive();
                                let response = Response::Corr {
                                    corr_id,
                                    inner: Box::new(serve(&space, *inner, version)),
                                };
                                if writer.lock().send(&response).is_err() {
                                    if destructive {
                                        restore_unacked(&space, response);
                                    }
                                    break;
                                }
                            }
                            request => {
                                let destructive = request.is_destructive();
                                let response = serve(&space, request, version);
                                if writer.lock().send(&response).is_err() {
                                    if destructive {
                                        restore_unacked(&space, response);
                                    }
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        Ok(SpaceServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            observer: None,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Hangs up on every currently served connection. Clients see a reset
    /// on their next (or in-flight) request and are expected to reconnect
    /// — [`RemoteSpace`] does so transparently. An operator lever for
    /// shedding stuck clients, and the failure injection behind the
    /// "worker survives a dropped connection" tests.
    pub fn disconnect_all(&self) {
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for SpaceServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Actively hang up on served clients: service threads are
        // detached and may be blocked in a read; shutting the sockets
        // down unblocks them so clients see Closed, not a stale server.
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Returns tuples carried by an *undeliverable* response to a destructive
/// request back to the space. A take's tuples live only in the response
/// frame once removed from the space; if that frame never reaches the
/// client (connection cut mid-call — see `SpaceServer::disconnect_all`, or
/// the client died), dropping it would silently destroy them. Restoring
/// them lets the client's reconnect-and-retry take them again, and returns
/// a dead worker's tasks to the pool. Restored tuples get a fresh
/// `Forever` lease — the original lease was consumed by the take.
///
/// Callers gate on [`Request::is_destructive`]: a `MaybeTuple` response to
/// a plain `read` must *not* be restored (the tuple is still in the
/// space — writing it back would duplicate it).
fn restore_unacked(space: &Arc<Space>, response: Response) {
    let tuples = match response {
        Response::MaybeTuple(Some(tuple)) => vec![tuple],
        Response::Tuples(tuples) if !tuples.is_empty() => tuples,
        Response::Corr { inner, .. } => return restore_unacked(space, *inner),
        _ => return,
    };
    net_series().tuples_restored.add(tuples.len() as u64);
    // Failure means the space is closed; the tuples are moot then.
    let _ = Space::write_all(space, tuples);
}

fn serve(space: &Arc<Space>, request: Request, version: u32) -> Response {
    match request {
        Request::Hello(_client_version) => Response::Proto(version),
        Request::Traced {
            trace_id,
            span_id,
            inner,
        } => {
            // Adopt the client's context so the handler span (and any
            // space instrumentation under it) joins the client's trace.
            let _ctx = (trace_id != 0 && span_id != 0)
                .then(|| TraceContext { trace_id, span_id }.attach());
            let _span = acc_telemetry::span!("space.serve", op = inner.op_name());
            serve_basic(space, *inner, version)
        }
        basic => serve_basic(space, basic, version),
    }
}

fn serve_basic(space: &Arc<Space>, request: Request, version: u32) -> Response {
    fn map<T>(result: SpaceResult<T>, ok: impl FnOnce(T) -> Response) -> Response {
        match result {
            Ok(v) => ok(v),
            Err(e) => error_encode(&e),
        }
    }
    match request {
        Request::Write(tuple, lease) => {
            let lease = match lease {
                Some(ms) => Lease::for_millis(ms),
                None => Lease::Forever,
            };
            map(space.write_leased(tuple, lease), Response::Id)
        }
        Request::Read(tmpl, timeout) => map(
            Space::read(space, &tmpl, timeout.map(Duration::from_millis)),
            Response::MaybeTuple,
        ),
        Request::Take(tmpl, timeout) => map(
            Space::take(space, &tmpl, timeout.map(Duration::from_millis)),
            Response::MaybeTuple,
        ),
        Request::Count(tmpl) => Response::Count(Space::count(space, &tmpl) as u64),
        Request::Close => {
            Space::close(space);
            Response::Unit
        }
        Request::IsClosed => Response::Bool(Space::is_closed(space)),
        Request::WriteAll(tuples, lease) => {
            let lease = match lease {
                Some(ms) => Lease::for_millis(ms),
                None => Lease::Forever,
            };
            map(Space::write_all_leased(space, tuples, lease), Response::Ids)
        }
        Request::TakeUpTo(tmpl, max, timeout) => {
            match Space::take_up_to(
                space,
                &tmpl,
                max as usize,
                timeout.map(Duration::from_millis),
            ) {
                Err(e) => error_encode(&e),
                Ok(mut tuples) => {
                    // The batch must fit one response frame. Tuples that
                    // would overflow it go *back to the space* — they were
                    // already taken, and dropping the frame on the floor
                    // would silently destroy them.
                    let mut total = 0usize;
                    let mut keep = tuples.len();
                    for (i, t) in tuples.iter().enumerate() {
                        total += t.size_hint() + 64;
                        if total > MAX_FRAME / 2 {
                            keep = i.max(1);
                            break;
                        }
                    }
                    if keep < tuples.len() {
                        let excess = tuples.split_off(keep);
                        if Space::write_all(space, excess).is_err() {
                            return error_encode(&SpaceError::Closed);
                        }
                    }
                    Response::Tuples(tuples)
                }
            }
        }
        // Envelopes never nest (the codec enforces it); answer the
        // version either way rather than kill the connection.
        Request::Hello(..) | Request::Traced { .. } | Request::Corr { .. } => {
            Response::Proto(version)
        }
    }
}

/// Soft cap on one batch-write frame: tuples are chunked so each
/// `WriteAll` frame stays comfortably under [`MAX_FRAME`] (the estimate
/// is `size_hint`, not the exact encoding, hence the margin).
const BATCH_FRAME_BUDGET: usize = MAX_FRAME / 4;
/// Hard cap on tuples per batch frame, so a million tiny tuples still
/// pipeline as several frames instead of one enormous one.
const BATCH_MAX_TUPLES: usize = 4096;

/// The client's per-connection state: the socket plus the reusable
/// buffers that make the wire path allocation-free in steady state — an
/// encode scratch, a recycled read frame, and the decode name cache.
/// All live under the one connection mutex, so none need their own.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    enc: FrameEncoder,
    pool: FramePool,
    interner: crate::payload::NameInterner,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            enc: FrameEncoder::new(),
            pool: FramePool::new(),
            interner: crate::payload::NameInterner::new(),
        }
    }
}

/// Client-side proxy to a [`SpaceServer`] — the "downloaded space proxy".
/// One TCP connection, one *caller* at a time (clone-free; open one proxy
/// per worker, as each worker owns its own connection). Batch operations
/// pipeline several correlated frames over that connection in one lock
/// hold.
///
/// A transport failure mid-call triggers exactly one reconnect (with a
/// fresh version probe) and one resend before surfacing
/// [`SpaceError::Transport`] — so a single dropped connection is invisible
/// to callers. The retry makes mutating calls *at-least-once*: if the
/// first attempt's response was lost after the server applied it, the
/// resend applies it again. That matches JavaSpaces' RMI-era semantics;
/// callers needing exactly-once dedupe by task id (as the master does).
#[derive(Debug)]
pub struct RemoteSpace {
    addr: SocketAddr,
    stream: Mutex<Conn>,
    /// What the server answered to `Hello` — 0 for a version-0 (seed
    /// protocol) server, which must never be sent v1+ frames. Refreshed on
    /// every reconnect, hence atomic.
    peer_version: AtomicU32,
    /// The highest version this client will speak (PROTO_VERSION outside
    /// of cross-version interop tests).
    max_version: u32,
}

impl RemoteSpace {
    /// Connects to a space server and probes its protocol version: a
    /// `Hello` is sent first, and a server that hangs up on it (a v0
    /// server breaks the connection on any undecodable request) gets a
    /// plain reconnect with every v1+ feature disabled.
    pub fn connect(addr: SocketAddr) -> std::io::Result<RemoteSpace> {
        RemoteSpace::connect_capped(addr, PROTO_VERSION)
    }

    /// Like [`RemoteSpace::connect`], but never speaking a protocol newer
    /// than `max_version` regardless of what the server offers — this is
    /// how the interop matrix emulates older clients. `max_version == 0`
    /// skips the handshake entirely, exactly like the seed client.
    pub fn connect_capped(addr: SocketAddr, max_version: u32) -> std::io::Result<RemoteSpace> {
        let (stream, peer_version) = RemoteSpace::establish(addr, max_version)?;
        net_series().protocol_version.set(peer_version as i64);
        Ok(RemoteSpace {
            addr,
            stream: Mutex::new(Conn::new(stream)),
            peer_version: AtomicU32::new(peer_version),
            max_version,
        })
    }

    /// Opens a connection and negotiates the protocol version: the lower
    /// of our cap and the server's answer, or 0 when the server rejects
    /// the handshake (probe-and-fallback).
    fn establish(addr: SocketAddr, max_version: u32) -> std::io::Result<(TcpStream, u32)> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        if max_version == 0 {
            return Ok((stream, 0));
        }
        match RemoteSpace::probe(&mut stream, max_version) {
            Ok(version) => Ok((stream, version.min(max_version))),
            Err(_) => {
                // Old peer: reconnect and speak version 0 only.
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok((stream, 0))
            }
        }
    }

    fn probe(stream: &mut TcpStream, max_version: u32) -> std::io::Result<u32> {
        write_frame(stream, &Request::Hello(max_version))?;
        let bytes = read_frame_bytes(stream)?;
        match Response::from_bytes(&bytes) {
            Ok(Response::Proto(version)) => Ok(version),
            _ => Ok(0),
        }
    }

    /// The protocol version negotiated with the connected server (0 = a
    /// pre-handshake server).
    pub fn peer_version(&self) -> u32 {
        self.peer_version.load(Ordering::Relaxed)
    }

    /// Replaces a failed connection with a fresh, re-probed one. Called
    /// at most once per operation (bounded retry). Only the socket is
    /// replaced — the buffers and name cache are content-based, not
    /// connection-based, and stay warm across reconnects.
    fn reconnect(&self, conn: &mut Conn, cause: &std::io::Error) -> SpaceResult<()> {
        let (fresh, version) = RemoteSpace::establish(self.addr, self.max_version)
            .map_err(|e| SpaceError::Transport(format!("{cause}; reconnect failed: {e}")))?;
        conn.stream = fresh;
        self.peer_version.store(version, Ordering::Relaxed);
        let net = net_series();
        net.reconnects.inc();
        net.protocol_version.set(version as i64);
        Ok(())
    }

    /// Marks the stream dead after a protocol violation so the next call
    /// starts from a clean reconnect instead of a desynced byte stream.
    fn poison(stream: &TcpStream) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    fn call(&self, request: Request) -> SpaceResult<Response> {
        let mut conn = self.stream.lock();
        let conn = &mut *conn;
        let exchange = |c: &mut Conn| -> std::io::Result<bytes::Bytes> {
            c.enc.write_frame(&mut c.stream, &request)?;
            c.pool.read_frame(&mut c.stream)
        };
        let frame = match exchange(conn) {
            Ok(frame) => frame,
            // InvalidData is not a transport fault (oversized or corrupt
            // frame) — reconnecting and resending cannot fix it.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return Err(SpaceError::Protocol(e.to_string()));
            }
            Err(first) => {
                self.reconnect(conn, &first)?;
                exchange(conn).map_err(|e| SpaceError::Transport(e.to_string()))?
            }
        };
        let decoded = crate::payload::decode_frame::<Response>(frame.clone(), &mut conn.interner);
        // Opportunistic: reclaims the buffer unless the response borrowed
        // it (a tuple payload holding a `Bytes` view keeps it alive).
        conn.pool.recycle(frame);
        match decoded {
            Ok(response) => Ok(response),
            Err(_) => {
                RemoteSpace::poison(&conn.stream);
                Err(SpaceError::Protocol("undecodable response frame".into()))
            }
        }
    }

    /// Opens a client-side span over the operation and, when tracing is
    /// on and the peer speaks v1, wraps the request in a [`Request::Traced`]
    /// envelope carrying that span's context — which is how the server's
    /// handler span ends up in the caller's trace.
    fn call_traced(&self, span_name: &'static str, request: Request) -> SpaceResult<Response> {
        let _span = acc_telemetry::span!(span_name);
        let request = match TraceContext::current_if_enabled() {
            Some(ctx) if self.peer_version() >= 1 => Request::Traced {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                inner: Box::new(request),
            },
            _ => request,
        };
        self.call(request)
    }

    /// Pipelines several requests over the connection in one lock hold:
    /// every frame goes out (wrapped in a [`Request::Corr`] envelope,
    /// trace context attached when live) before the first response is
    /// read, so the whole batch costs one round trip. Responses are
    /// matched by correlation id and returned in request order. Requires a
    /// v2 peer.
    fn call_pipelined(
        &self,
        span_name: &'static str,
        requests: Vec<Request>,
    ) -> SpaceResult<Vec<Response>> {
        let _span = acc_telemetry::span!(span_name, frames = requests.len() as u64);
        let ctx = TraceContext::current_if_enabled();
        let frames: Vec<Request> = requests
            .into_iter()
            .enumerate()
            .map(|(i, inner)| {
                let inner = match ctx {
                    Some(ctx) => Request::Traced {
                        trace_id: ctx.trace_id,
                        span_id: ctx.span_id,
                        inner: Box::new(inner),
                    },
                    None => inner,
                };
                Request::Corr {
                    corr_id: i as u64,
                    inner: Box::new(inner),
                }
            })
            .collect();
        let n = frames.len();
        let mut conn = self.stream.lock();
        let conn = &mut *conn;
        // The whole batch is encoded through the one reusable scratch
        // buffer before the first response is read (that is the whole
        // point of pipelining: one round trip).
        let exchange = |c: &mut Conn| -> std::io::Result<Vec<bytes::Bytes>> {
            for frame in &frames {
                c.enc.write_frame(&mut c.stream, frame)?;
            }
            (0..n).map(|_| c.pool.read_frame(&mut c.stream)).collect()
        };
        let raw = match exchange(conn) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return Err(SpaceError::Protocol(e.to_string()));
            }
            Err(first) => {
                self.reconnect(conn, &first)?;
                if self.peer_version() < 2 {
                    // The server was replaced by an older build between
                    // attempts; resending v2 frames would just hang up.
                    return Err(SpaceError::Transport(format!(
                        "{first}; peer downgraded below v2 on reconnect"
                    )));
                }
                exchange(conn).map_err(|e| SpaceError::Transport(e.to_string()))?
            }
        };
        let mut slots: Vec<Option<Response>> = (0..n).map(|_| None).collect();
        for frame in raw {
            let decoded =
                crate::payload::decode_frame::<Response>(frame.clone(), &mut conn.interner);
            conn.pool.recycle(frame);
            let Ok(Response::Corr { corr_id, inner }) = decoded else {
                RemoteSpace::poison(&conn.stream);
                return Err(SpaceError::Protocol(
                    "expected a correlated response frame".into(),
                ));
            };
            let Some(slot) = slots.get_mut(corr_id as usize) else {
                RemoteSpace::poison(&conn.stream);
                return Err(SpaceError::Protocol(format!(
                    "correlation id {corr_id} out of range"
                )));
            };
            if slot.is_some() {
                RemoteSpace::poison(&conn.stream);
                return Err(SpaceError::Protocol(format!(
                    "duplicate correlation id {corr_id}"
                )));
            }
            *slot = Some(*inner);
        }
        // n responses with unique in-range ids fill all n slots.
        Ok(slots
            .into_iter()
            .map(|s| s.expect("all correlation slots filled"))
            .collect())
    }

    fn expect_tuple(
        &self,
        span_name: &'static str,
        request: Request,
    ) -> SpaceResult<Option<Tuple>> {
        match self.call_traced(span_name, request)? {
            Response::MaybeTuple(t) => Ok(t),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            other => Err(unexpected(span_name, &other)),
        }
    }
}

/// A decodable response of the wrong variant is a protocol bug (or a
/// hostile peer) — report it as such instead of masking it as a shutdown.
fn unexpected(op: &str, response: &Response) -> SpaceError {
    SpaceError::Protocol(format!("unexpected response to {op}: {response:?}"))
}

impl TupleStore for RemoteSpace {
    fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        let lease_ms = match lease {
            Lease::Forever => None,
            Lease::Duration(d) => Some(d.as_millis() as u64),
        };
        match self.call_traced("remote.write", Request::Write(tuple, lease_ms))? {
            Response::Id(id) => Ok(id),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            other => Err(unexpected("remote.write", &other)),
        }
    }

    // The `template.clone()` below (and in take/count/take_up_to) is two
    // refcount bumps, not a deep copy — `Template` is `Arc`-backed.
    fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.expect_tuple(
            "remote.read",
            Request::Read(template.clone(), timeout.map(|d| d.as_millis() as u64)),
        )
    }

    fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.expect_tuple(
            "remote.take",
            Request::Take(template.clone(), timeout.map(|d| d.as_millis() as u64)),
        )
    }

    fn count(&self, template: &Template) -> SpaceResult<usize> {
        match self.call_traced("remote.count", Request::Count(template.clone()))? {
            Response::Count(n) => Ok(n as usize),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            other => Err(unexpected("remote.count", &other)),
        }
    }

    fn close(&self) {
        let _ = self.call(Request::Close);
    }

    fn is_closed(&self) -> bool {
        matches!(
            self.call(Request::IsClosed),
            Ok(Response::Bool(true)) | Err(_)
        )
    }

    /// Batch write over the wire: tuples are chunked to bounded frames and
    /// the chunks *pipelined* — every frame is sent before the first
    /// response is read, so a planning phase of thousands of tasks costs a
    /// handful of round trips instead of one per task. Pre-v2 peers get
    /// the plain one-write-per-tuple loop.
    fn write_all_leased(&self, tuples: Vec<Tuple>, lease: Lease) -> SpaceResult<Vec<EntryId>> {
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        if self.peer_version() < 2 {
            let mut ids = Vec::with_capacity(tuples.len());
            for tuple in tuples {
                ids.push(self.write_leased(tuple, lease)?);
            }
            return Ok(ids);
        }
        let lease_ms = match lease {
            Lease::Forever => None,
            Lease::Duration(d) => Some(d.as_millis() as u64),
        };
        let mut chunks: Vec<Request> = Vec::new();
        let mut current: Vec<Tuple> = Vec::new();
        let mut budget = 0usize;
        for tuple in tuples {
            let hint = tuple.size_hint() + 64;
            if !current.is_empty()
                && (budget + hint > BATCH_FRAME_BUDGET || current.len() >= BATCH_MAX_TUPLES)
            {
                chunks.push(Request::WriteAll(std::mem::take(&mut current), lease_ms));
                budget = 0;
            }
            budget += hint;
            current.push(tuple);
        }
        chunks.push(Request::WriteAll(current, lease_ms));
        let mut ids = Vec::new();
        for response in self.call_pipelined("remote.write_all", chunks)? {
            match response {
                Response::Ids(batch) => ids.extend(batch),
                Response::Err(code, detail) => return Err(error_from(code, detail)),
                other => return Err(unexpected("remote.write_all", &other)),
            }
        }
        Ok(ids)
    }

    /// Batch take over the wire: one round trip fetches up to `max`
    /// matching tuples (the worker's prefetch path). Pre-v2 peers get the
    /// block-for-first-then-drain loop of single takes.
    fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        if self.peer_version() < 2 {
            let mut out = Vec::new();
            match self.take(template, timeout)? {
                None => return Ok(out),
                Some(first) => out.push(first),
            }
            while out.len() < max {
                match self.take_if_exists(template)? {
                    Some(t) => out.push(t),
                    None => break,
                }
            }
            return Ok(out);
        }
        let request = Request::TakeUpTo(
            template.clone(),
            max as u64,
            timeout.map(|d| d.as_millis() as u64),
        );
        match self.call_traced("remote.take_up_to", request)? {
            Response::Tuples(tuples) => Ok(tuples),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            other => Err(unexpected("remote.take_up_to", &other)),
        }
    }

    /// Batch drain over the wire: repeated `take_up_to` frames instead of
    /// one round trip per tuple.
    fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        let mut out = Vec::new();
        loop {
            let batch = self.take_up_to(template, BATCH_MAX_TUPLES, Some(Duration::ZERO))?;
            let done = batch.is_empty();
            out.extend(batch);
            if done {
                return Ok(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreHandle;

    fn tuple(id: i64) -> Tuple {
        Tuple::build("t").field("id", id).done()
    }

    fn rig() -> (Arc<Space>, SpaceServer, RemoteSpace) {
        let space = Space::new("served");
        let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        (space, server, remote)
    }

    #[test]
    fn request_response_codecs_roundtrip() {
        let requests = vec![
            Request::Write(tuple(1), Some(5000)),
            Request::Write(tuple(2), None),
            Request::Read(Template::of_type("t"), Some(100)),
            Request::Take(Template::any_type().done(), None),
            Request::Count(Template::of_type("t")),
            Request::Close,
            Request::IsClosed,
            Request::Hello(PROTO_VERSION),
            Request::Traced {
                trace_id: 0xdead_beef_cafe_f00d,
                span_id: 42,
                inner: Box::new(Request::Take(Template::of_type("t"), Some(250))),
            },
            Request::WriteAll(vec![tuple(1), tuple(2), tuple(3)], Some(9000)),
            Request::WriteAll(Vec::new(), None),
            Request::TakeUpTo(Template::of_type("t"), 8, Some(50)),
            Request::TakeUpTo(Template::any_type().done(), 1, None),
            Request::Corr {
                corr_id: 17,
                inner: Box::new(Request::WriteAll(vec![tuple(9)], None)),
            },
            Request::Corr {
                corr_id: u64::MAX,
                inner: Box::new(Request::Traced {
                    trace_id: 5,
                    span_id: 6,
                    inner: Box::new(Request::Count(Template::of_type("t"))),
                }),
            },
        ];
        for r in requests {
            assert_eq!(Request::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        let responses = vec![
            Response::Id(7),
            Response::MaybeTuple(None),
            Response::MaybeTuple(Some(tuple(3))),
            Response::Count(12),
            Response::Bool(true),
            Response::Unit,
            Response::Err(1, String::new()),
            Response::Err(7, "disk full".into()),
            Response::Err(8, "connection reset".into()),
            Response::Err(9, "bad correlation id".into()),
            Response::Proto(PROTO_VERSION),
            Response::Ids(vec![1, 2, 3]),
            Response::Ids(Vec::new()),
            Response::Tuples(vec![tuple(4), tuple(5)]),
            Response::Corr {
                corr_id: 17,
                inner: Box::new(Response::Ids(vec![8, 9])),
            },
        ];
        for r in responses {
            assert_eq!(Response::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn nested_trace_envelopes_are_rejected_not_recursed() {
        // Hand-build Traced(Traced(IsClosed)): the codec must refuse the
        // inner envelope rather than recurse (stack-overflow guard).
        let mut w = WireWriter::new();
        w.put_u8(8);
        w.put_u64(1);
        w.put_u64(2);
        w.put_u8(8); // inner tag: another envelope
        w.put_u64(3);
        w.put_u64(4);
        w.put_u8(6);
        assert!(Request::from_bytes(&w.finish()).is_err());
        // An envelope wrapping a Hello is equally invalid.
        let mut w = WireWriter::new();
        w.put_u8(8);
        w.put_u64(1);
        w.put_u64(2);
        w.put_u8(7);
        w.put_u32(1);
        assert!(Request::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn nested_correlation_envelopes_are_rejected_not_recursed() {
        // Corr(Corr(IsClosed)) must be refused at the inner tag.
        let mut w = WireWriter::new();
        w.put_u8(11);
        w.put_u64(1);
        w.put_u8(11); // inner tag: another correlation envelope
        w.put_u64(2);
        w.put_u8(6);
        assert!(Request::from_bytes(&w.finish()).is_err());
        // Corr(Hello) is invalid: the handshake is never pipelined.
        let mut w = WireWriter::new();
        w.put_u8(11);
        w.put_u64(1);
        w.put_u8(7);
        w.put_u32(2);
        assert!(Request::from_bytes(&w.finish()).is_err());
        // Response-side: Corr(Corr(Unit)) is refused the same way.
        let mut w = WireWriter::new();
        w.put_u8(11);
        w.put_u64(1);
        w.put_u8(11);
        w.put_u64(2);
        w.put_u8(6);
        assert!(Response::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn connect_negotiates_protocol_version() {
        let (_space, _server, remote) = rig();
        assert_eq!(remote.peer_version(), PROTO_VERSION);
    }

    #[test]
    fn connect_falls_back_to_v0_when_peer_rejects_hello() {
        // A "v0 server": accepts, reads one frame, hangs up — exactly how
        // the seed server reacted to an undecodable request tag.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let old_server = std::thread::spawn(move || {
            let mut seen_frames = 0usize;
            for stream in listener.incoming().take(2) {
                let Ok(mut stream) = stream else { continue };
                if read_frame_bytes(&mut stream).is_ok() {
                    seen_frames += 1;
                }
                // Drop the connection without answering: v0 behaviour
                // for a frame it cannot decode.
            }
            seen_frames
        });
        let remote = RemoteSpace::connect(addr).unwrap();
        assert_eq!(remote.peer_version(), 0);
        // The client's next op goes over the *second* (plain) connection
        // and carries no envelope; our fake server just hangs up, which
        // surfaces as Closed — but the probe must not have errored out
        // the constructor.
        assert!(remote.write(tuple(1)).is_err());
        assert!(old_server.join().unwrap() >= 1);
    }

    #[test]
    fn traced_envelope_serves_like_plain_request() {
        let space = Space::new("enveloped");
        let env = Request::Traced {
            trace_id: 9,
            span_id: 11,
            inner: Box::new(Request::Write(tuple(5), None)),
        };
        let Response::Id(_) = serve(&space, env, PROTO_VERSION) else {
            panic!("enveloped write must behave like a plain write");
        };
        assert_eq!(
            serve(
                &space,
                Request::Traced {
                    trace_id: 9,
                    span_id: 12,
                    inner: Box::new(Request::Count(Template::of_type("t"))),
                },
                PROTO_VERSION
            ),
            Response::Count(1)
        );
        // Hello gets the version back.
        assert_eq!(
            serve(&space, Request::Hello(0), PROTO_VERSION),
            Response::Proto(PROTO_VERSION)
        );
    }

    #[test]
    fn observed_server_scrapes_metrics_and_health() {
        use std::io::{Read as _, Write as _};
        let space = Space::new("observed");
        let server = SpaceServer::spawn_observed(
            space.clone(),
            "127.0.0.1:0",
            ServerOptions::default(),
            "127.0.0.1:0",
        )
        .unwrap();
        let observe = server.observe_addr().expect("observer mounted");
        let get = |path: &str| {
            let mut s = TcpStream::connect(observe).unwrap();
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let health = get("/healthz");
        assert!(health.contains("200"), "{health}");
        assert!(health.contains("space: ok"), "{health}");
        assert!(health.contains("wal: ok"), "{health}");
        let metrics = get("/metrics");
        assert!(metrics.contains("# TYPE"), "{metrics}");
        // Closing the space flips /healthz to 503.
        space.close();
        let health = get("/healthz");
        assert!(health.contains("503"), "{health}");
        assert!(health.contains("space: FAIL"), "{health}");
    }

    #[test]
    fn remote_write_take_roundtrip() {
        let (_space, _server, remote) = rig();
        remote.write(tuple(1)).unwrap();
        remote.write(tuple(2)).unwrap();
        assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 2);
        let got = remote.take_if_exists(&Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(1));
    }

    #[test]
    fn remote_sees_local_writes_and_vice_versa() {
        let (space, _server, remote) = rig();
        space.write(tuple(10)).unwrap();
        let got = remote.take_if_exists(&Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(10));
        remote.write(tuple(11)).unwrap();
        let got = Space::take_if_exists(&space, &Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(11));
    }

    #[test]
    fn remote_blocking_take_waits_for_writer() {
        let (space, _server, remote) = rig();
        let handle = std::thread::spawn(move || {
            remote
                .take(&Template::of_type("t"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(40));
        space.write(tuple(77)).unwrap();
        let got = handle.join().unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(77));
    }

    #[test]
    fn remote_timeout_returns_none() {
        let (_space, _server, remote) = rig();
        let got = remote
            .take(&Template::of_type("t"), Some(Duration::from_millis(30)))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn remote_close_propagates() {
        let (space, _server, remote) = rig();
        assert!(!remote.is_closed());
        remote.close();
        assert!(space.is_closed());
        assert!(remote.is_closed());
        assert_eq!(remote.write(tuple(1)), Err(SpaceError::Closed));
    }

    #[test]
    fn leased_remote_writes_expire() {
        let (_space, _server, remote) = rig();
        remote
            .write_leased(tuple(1), Lease::for_millis(10))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 0);
    }

    #[test]
    fn two_remote_workers_share_distinct_tasks() {
        let (space, server, _unused) = rig();
        for i in 0..40 {
            space.write(tuple(i)).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..2 {
            let remote = RemoteSpace::connect(server.addr()).unwrap();
            handles.push(std::thread::spawn(move || {
                let store: StoreHandle = Arc::new(remote);
                let mut got = Vec::new();
                while let Ok(Some(t)) =
                    store.take(&Template::of_type("t"), Some(Duration::from_millis(100)))
                {
                    got.push(t.get_int("id").unwrap());
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn server_drop_disconnects_clients() {
        let (_space, server, remote) = rig();
        drop(server);
        std::thread::sleep(Duration::from_millis(20));
        // New requests fail as Closed.
        assert!(remote.write(tuple(1)).is_err());
    }

    #[test]
    fn connection_cap_drops_excess_connections() {
        let space = Space::new("capped");
        let server = SpaceServer::spawn_with(
            space,
            "127.0.0.1:0",
            ServerOptions {
                max_connections: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let first = RemoteSpace::connect(server.addr()).unwrap();
        // Prove the first connection holds the only slot.
        first.write(tuple(1)).unwrap();
        // The second connection is accepted at TCP level but dropped by the
        // server before service; its first request fails even after the
        // client's one bounded reconnect (the cap still holds), surfacing
        // as a transport error — not as a bogus "space closed".
        let second = RemoteSpace::connect(server.addr()).unwrap();
        assert!(matches!(
            second.write(tuple(2)),
            Err(SpaceError::Transport(_))
        ));
        // Releasing the first connection frees the slot for a new client.
        drop(first);
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(10));
            let third = RemoteSpace::connect(server.addr()).unwrap();
            if third.write(tuple(3)).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "slot was never released");
    }

    #[test]
    fn idle_connection_is_dropped_after_read_timeout() {
        let space = Space::new("timed");
        let server = SpaceServer::spawn_with(
            space,
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(40)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        // A raw connection (no proxy, so no transparent reconnect) sees
        // the hangup directly: after the idle period its next exchange
        // gets EOF instead of a response.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut raw, &Request::Write(tuple(1), None)).unwrap();
        read_frame_bytes(&mut raw).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        let _ = write_frame(&mut raw, &Request::Write(tuple(2), None));
        assert!(read_frame_bytes(&mut raw).is_err());
        // The proxy rides out the same hangup: its call fails mid-flight,
        // reconnects once, and succeeds.
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        remote.write(tuple(3)).unwrap();
        std::thread::sleep(Duration::from_millis(250));
        remote.write(tuple(4)).unwrap();
    }

    #[test]
    fn active_requests_survive_read_timeout() {
        // The idle timeout bounds silence *between* requests; a blocking
        // take that waits longer than the timeout must still be served.
        let space = Space::new("busy");
        let server = SpaceServer::spawn_with(
            space.clone(),
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(40)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        let handle = std::thread::spawn(move || {
            remote
                .take(&Template::of_type("t"), Some(Duration::from_millis(400)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(200));
        space.write(tuple(9)).unwrap();
        assert_eq!(handle.join().unwrap().unwrap().get_int("id"), Some(9));
    }

    #[test]
    fn storage_error_crosses_the_wire_with_its_message() {
        for e in [
            SpaceError::Storage("disk on fire".into()),
            SpaceError::Transport("connection reset".into()),
            SpaceError::Protocol("bad correlation id".into()),
        ] {
            let resp = error_encode(&e);
            let decoded = Response::from_bytes(&resp.to_bytes()).unwrap();
            let Response::Err(code, detail) = decoded else {
                panic!("expected error response");
            };
            assert_eq!(error_from(code, detail), e);
        }
    }

    #[test]
    fn remote_batch_write_and_take_up_to() {
        let (space, _server, remote) = rig();
        let ids = remote.write_all((0..10).map(tuple).collect()).unwrap();
        assert_eq!(ids.len(), 10);
        assert_eq!(Space::count(&space, &Template::of_type("t")), 10);
        let got = remote
            .take_up_to(&Template::of_type("t"), 4, Some(Duration::ZERO))
            .unwrap();
        assert_eq!(got.len(), 4);
        let rest = remote.take_all(&Template::of_type("t")).unwrap();
        assert_eq!(rest.len(), 6);
        // Batch take blocks for the first match like a single take.
        let empty = remote
            .take_up_to(&Template::of_type("t"), 4, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn pipelined_requests_correlate_responses() {
        let (space, _server, remote) = rig();
        let requests = (0..8).map(|i| Request::Write(tuple(i), None)).collect();
        let responses = remote.call_pipelined("test.pipeline", requests).unwrap();
        assert_eq!(responses.len(), 8);
        for r in responses {
            assert!(matches!(r, Response::Id(_)), "unexpected {r:?}");
        }
        assert_eq!(Space::count(&space, &Template::of_type("t")), 8);
    }

    #[test]
    fn cross_version_interop_matrix() {
        // Every client generation against every server generation: the
        // negotiated version is the min of the two, and the batch trait
        // calls work at every intersection (degrading to loops of single
        // frames below v2).
        for server_v in [0u32, 1, 2] {
            for client_v in [0u32, 1, 2] {
                let space = Space::new("interop");
                let server = SpaceServer::spawn_with(
                    space.clone(),
                    "127.0.0.1:0",
                    ServerOptions {
                        protocol_version: server_v,
                        ..ServerOptions::default()
                    },
                )
                .unwrap();
                let remote = RemoteSpace::connect_capped(server.addr(), client_v).unwrap();
                let pair = format!("server v{server_v} / client v{client_v}");
                assert_eq!(remote.peer_version(), server_v.min(client_v), "{pair}");
                let ids = remote.write_all((0..6).map(tuple).collect()).unwrap();
                assert_eq!(ids.len(), 6, "{pair}");
                let got = remote
                    .take_up_to(&Template::of_type("t"), 4, Some(Duration::from_millis(200)))
                    .unwrap();
                assert_eq!(got.len(), 4, "{pair}");
                assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 2, "{pair}");
                let rest = remote.take_all(&Template::of_type("t")).unwrap();
                assert_eq!(rest.len(), 2, "{pair}");
            }
        }
    }

    #[test]
    fn client_survives_server_dropping_the_connection() {
        let (space, server, remote) = rig();
        remote.write(tuple(1)).unwrap();
        // The server kills every live connection (as a restarting or
        // load-shedding server would); the proxy's next call fails on the
        // dead socket, reconnects once, re-probes, and succeeds.
        server.disconnect_all();
        remote.write(tuple(2)).unwrap();
        assert_eq!(remote.peer_version(), PROTO_VERSION);
        assert_eq!(Space::count(&space, &Template::of_type("t")), 2);
        // Batch calls survive the same treatment.
        server.disconnect_all();
        let ids = remote.write_all((3..13).map(tuple).collect()).unwrap();
        assert_eq!(ids.len(), 10);
        assert_eq!(Space::count(&space, &Template::of_type("t")), 12);
    }

    #[test]
    fn undeliverable_take_response_restores_the_tuples() {
        // The lost-take race: a blocking take is parked server-side when
        // the connection is severed; the take then matches and the
        // response write fails. The tuples must go back to the space —
        // dropping the undeliverable frame would silently destroy them.
        let (space, server, _remote) = rig();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        write_frame(
            &mut raw,
            &Request::TakeUpTo(Template::of_type("t"), 4, Some(500)),
        )
        .unwrap();
        // Let the request park in the server's blocking take, then cut
        // the connection out from under it and satisfy the match.
        std::thread::sleep(Duration::from_millis(50));
        server.disconnect_all();
        Space::write_all(&space, (0..4).map(tuple).collect()).unwrap();
        // The server takes all four, fails to answer the dead socket, and
        // restores them.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while Space::count(&space, &Template::of_type("t")) < 4 {
            assert!(
                std::time::Instant::now() < deadline,
                "taken tuples were not restored"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(Space::count(&space, &Template::of_type("t")), 4);
    }

    #[test]
    fn write_frame_enforces_max_frame_at_the_boundary() {
        struct Blob(Vec<u8>);
        impl Payload for Blob {
            fn encode(&self, w: &mut WireWriter) {
                w.put_blob(&self.0);
            }
            fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
                Ok(Blob(r.get_blob()?))
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let drain = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64 * 1024];
            while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let overhead = Blob(Vec::new()).to_bytes().len();
        // Exactly MAX_FRAME: allowed (the reader accepts len == MAX_FRAME).
        let at_limit = Blob(vec![0u8; MAX_FRAME - overhead]);
        assert_eq!(at_limit.to_bytes().len(), MAX_FRAME);
        write_frame(&mut stream, &at_limit).unwrap();
        // One byte over: rejected cleanly before any bytes go out.
        let over = Blob(vec![0u8; MAX_FRAME - overhead + 1]);
        let err = write_frame(&mut stream, &over).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("frame too large"), "{err}");
        drop(stream);
        drain.join().unwrap();
    }

    #[test]
    fn oversized_write_is_a_protocol_error_and_does_not_desync() {
        let (_space, _server, remote) = rig();
        let huge = Tuple::build("t").field("blob", vec![0u8; MAX_FRAME]).done();
        match remote.write(huge) {
            Err(SpaceError::Protocol(msg)) => {
                assert!(msg.contains("frame too large"), "{msg}")
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
        // Nothing hit the wire, so the connection is still usable.
        remote.write(tuple(1)).unwrap();
        assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 1);
    }

    #[test]
    fn unexpected_response_is_a_protocol_error() {
        // A confused server: answers the handshake correctly, then replies
        // to everything with Bool — decodable but wrong. The old client
        // reported this as `Closed`, masking the bug as a shutdown.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let bytes = read_frame_bytes(&mut s).unwrap();
            assert!(matches!(Request::from_bytes(&bytes), Ok(Request::Hello(_))));
            write_frame(&mut s, &Response::Proto(PROTO_VERSION)).unwrap();
            while read_frame_bytes(&mut s).is_ok() {
                if write_frame(&mut s, &Response::Bool(false)).is_err() {
                    break;
                }
            }
        });
        let remote = RemoteSpace::connect(addr).unwrap();
        match remote.count(&Template::of_type("t")) {
            Err(SpaceError::Protocol(msg)) => {
                assert!(msg.contains("unexpected response"), "{msg}")
            }
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn take_up_to_splits_responses_that_would_overflow_a_frame() {
        // Six 2 MiB tuples exceed the server's per-response budget
        // (MAX_FRAME / 2): the server must return a prefix and write the
        // excess back rather than losing it or sending an unreadable
        // frame.
        let (space, _server, remote) = rig();
        for i in 0..6i64 {
            space
                .write(
                    Tuple::build("big")
                        .field("id", i)
                        .field("blob", vec![0u8; 2 << 20])
                        .done(),
                )
                .unwrap();
        }
        let first = remote
            .take_up_to(&Template::of_type("big"), 10, Some(Duration::ZERO))
            .unwrap();
        assert!(!first.is_empty(), "must return at least one tuple");
        assert!(first.len() < 6, "a 12 MiB response must have been split");
        // The excess went back to the space; repeated calls recover all six.
        let mut total = first.len();
        while total < 6 {
            let more = remote
                .take_up_to(&Template::of_type("big"), 10, Some(Duration::ZERO))
                .unwrap();
            assert!(!more.is_empty(), "excess tuples were lost");
            total += more.len();
        }
        assert_eq!(total, 6);
        assert_eq!(Space::count(&space, &Template::of_type("big")), 0);
    }

    /// Property tests over the wire codec: arbitrary frames (including the
    /// v2 batch and envelope variants) round-trip exactly, and arbitrary
    /// bytes never panic the decoder.
    mod codec_props {
        use super::*;
        use crate::value::Value;
        use proptest::prelude::*;

        fn arb_value() -> impl Strategy<Value = Value> {
            prop_oneof![
                any::<i64>().prop_map(Value::Int),
                // Arbitrary bit patterns: NaN payloads must round-trip too
                // (Value compares bitwise).
                any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
                any::<bool>().prop_map(Value::Bool),
                "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
                proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::from),
            ]
        }

        fn arb_tuple() -> impl Strategy<Value = Tuple> {
            (
                "[a-z]{1,8}",
                proptest::collection::btree_map("[a-z]{1,6}", arb_value(), 0..5),
            )
                .prop_map(|(ty, fields)| {
                    let mut builder = Tuple::build(ty.as_str());
                    for (name, value) in fields {
                        builder = builder.field(name, value);
                    }
                    builder.done()
                })
        }

        fn arb_template() -> impl Strategy<Value = Template> {
            (
                "[a-z]{1,8}",
                proptest::collection::btree_map("[a-z]{1,6}", any::<i64>(), 0..4),
            )
                .prop_map(|(ty, fields)| {
                    let mut builder = Template::build(ty.as_str());
                    for (name, value) in fields {
                        builder = builder.eq(name, value);
                    }
                    builder.done()
                })
        }

        fn arb_opt_ms() -> impl Strategy<Value = Option<u64>> {
            prop_oneof![Just(None), any::<u64>().prop_map(Some)]
        }

        /// The operation set — everything an envelope may wrap.
        fn arb_op() -> impl Strategy<Value = Request> {
            prop_oneof![
                (arb_tuple(), arb_opt_ms()).prop_map(|(t, l)| Request::Write(t, l)),
                (arb_template(), arb_opt_ms()).prop_map(|(t, o)| Request::Read(t, o)),
                (arb_template(), arb_opt_ms()).prop_map(|(t, o)| Request::Take(t, o)),
                arb_template().prop_map(Request::Count),
                Just(Request::Close),
                Just(Request::IsClosed),
                (proptest::collection::vec(arb_tuple(), 0..6), arb_opt_ms())
                    .prop_map(|(ts, l)| Request::WriteAll(ts, l)),
                (arb_template(), any::<u64>(), arb_opt_ms())
                    .prop_map(|(t, max, o)| Request::TakeUpTo(t, max, o)),
            ]
        }

        fn arb_traced() -> impl Strategy<Value = Request> {
            (any::<u64>(), any::<u64>(), arb_op()).prop_map(|(trace_id, span_id, op)| {
                Request::Traced {
                    trace_id,
                    span_id,
                    inner: Box::new(op),
                }
            })
        }

        fn arb_request() -> impl Strategy<Value = Request> {
            prop_oneof![
                arb_op(),
                any::<u32>().prop_map(Request::Hello),
                arb_traced(),
                // Corr wraps an op or a trace envelope — the codec's legal
                // nesting, matched by what `call_pipelined` sends.
                (any::<u64>(), prop_oneof![arb_op(), arb_traced()]).prop_map(|(corr_id, inner)| {
                    Request::Corr {
                        corr_id,
                        inner: Box::new(inner),
                    }
                }),
            ]
        }

        fn arb_flat_response() -> impl Strategy<Value = Response> {
            prop_oneof![
                any::<u64>().prop_map(Response::Id),
                Just(Response::MaybeTuple(None)),
                arb_tuple().prop_map(|t| Response::MaybeTuple(Some(t))),
                any::<u64>().prop_map(Response::Count),
                any::<bool>().prop_map(Response::Bool),
                Just(Response::Unit),
                (1u8..10, "[a-z ]{0,24}").prop_map(|(code, detail)| Response::Err(code, detail)),
                any::<u32>().prop_map(Response::Proto),
                proptest::collection::vec(any::<u64>(), 0..8).prop_map(Response::Ids),
                proptest::collection::vec(arb_tuple(), 0..6).prop_map(Response::Tuples),
            ]
        }

        fn arb_response() -> impl Strategy<Value = Response> {
            prop_oneof![
                arb_flat_response(),
                (any::<u64>(), arb_flat_response()).prop_map(|(corr_id, inner)| Response::Corr {
                    corr_id,
                    inner: Box::new(inner),
                }),
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn requests_roundtrip(request in arb_request()) {
                let decoded = Request::from_bytes(&request.to_bytes()).unwrap();
                prop_assert_eq!(decoded, request);
            }

            #[test]
            fn responses_roundtrip(response in arb_response()) {
                let decoded = Response::from_bytes(&response.to_bytes()).unwrap();
                prop_assert_eq!(decoded, response);
            }

            #[test]
            fn request_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
                let _ = Request::from_bytes(&bytes);
            }

            #[test]
            fn response_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..192)) {
                let _ = Response::from_bytes(&bytes);
            }
        }
    }
}
