//! The tuple space proper: storage, associative matching, blocking
//! operations, leases, transactions and event dispatch.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{SpaceError, SpaceResult};
use crate::events::{EventCookie, Registration, SpaceEvent};
use crate::lease::Lease;
use crate::stats::{SpaceStats, StatsSnapshot};
use crate::template::Template;
use crate::tuple::Tuple;
use crate::txn::{Txn, TxnId};

/// Identifier of a stored entry (monotone per space, never reused).
pub type EntryId = u64;

/// Shared handle to a space.
pub type SpaceHandle = Arc<Space>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    /// Visible to everyone.
    Free,
    /// Written under a transaction; visible only to that transaction until
    /// commit.
    PendingWrite(TxnId),
    /// Taken under a transaction; invisible pending commit/abort.
    TakenBy(TxnId),
    /// Read under one or more transactions; readable by all, takeable by
    /// nobody else.
    ReadBy(Vec<TxnId>),
}

#[derive(Debug)]
struct Stored {
    id: EntryId,
    tuple: Tuple,
    expires: Option<Instant>,
    lock: LockState,
}

impl Stored {
    fn expired(&self, now: Instant) -> bool {
        self.expires.is_some_and(|e| e <= now)
    }

    fn visible_to_read(&self, reader: Option<TxnId>) -> bool {
        match &self.lock {
            LockState::Free | LockState::ReadBy(_) => true,
            LockState::PendingWrite(t) => reader == Some(*t),
            LockState::TakenBy(_) => false,
        }
    }

    fn takeable_by(&self, taker: Option<TxnId>) -> bool {
        match &self.lock {
            LockState::Free => true,
            LockState::PendingWrite(t) => taker == Some(*t),
            LockState::TakenBy(_) => false,
            LockState::ReadBy(readers) => match taker {
                Some(t) => readers.iter().all(|r| *r == t),
                None => readers.is_empty(),
            },
        }
    }
}

#[derive(Debug, Default)]
struct TxnRecord {
    writes: Vec<EntryId>,
    takes: Vec<EntryId>,
    reads: Vec<EntryId>,
}

#[derive(Debug, Default)]
struct Inner {
    closed: bool,
    next_id: EntryId,
    next_txn: u64,
    /// Entries bucketed by tuple type, FIFO within a bucket so matching is
    /// deterministic (oldest entry wins).
    by_type: BTreeMap<String, VecDeque<Stored>>,
    txns: HashMap<TxnId, TxnRecord>,
}

/// A shared, associative repository of [`Tuple`]s — the Rust JavaSpaces.
///
/// All operations are thread-safe; blocking `read`/`take` calls park on a
/// condition variable and are woken by writes, transaction commits/aborts,
/// and [`Space::close`].
pub struct Space {
    name: String,
    inner: Mutex<Inner>,
    cond: Condvar,
    registrations: Mutex<Vec<Arc<RegistrationSlot>>>,
    next_cookie: Mutex<u64>,
    stats: SpaceStats,
}

struct RegistrationSlot {
    reg: Mutex<Registration>,
    active: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space").field("name", &self.name).finish()
    }
}

impl Space {
    /// Creates a new, empty space.
    pub fn new(name: impl Into<String>) -> SpaceHandle {
        Arc::new(Space {
            name: name.into(),
            inner: Mutex::new(Inner::default()),
            cond: Condvar::new(),
            registrations: Mutex::new(Vec::new()),
            next_cookie: Mutex::new(1),
            stats: SpaceStats::default(),
        })
    }

    /// The space's name (used for federation registration).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Closes the space: all blocked operations and all future operations
    /// fail with [`SpaceError::Closed`]. Used to shut workers down.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        drop(inner);
        self.cond.notify_all();
    }

    /// True once [`Space::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }

    /// Writes a tuple with an infinite lease.
    pub fn write(&self, tuple: Tuple) -> SpaceResult<EntryId> {
        self.write_internal(tuple, Lease::Forever, None)
    }

    /// Writes a tuple under the given lease; the entry is reclaimed after
    /// the lease expires.
    pub fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        self.write_internal(tuple, lease, None)
    }

    /// Blocking, non-destructive associative lookup. Returns a copy of some
    /// tuple matching `template`, waiting up to `timeout` for one to arrive
    /// (`None` waits indefinitely). `Ok(None)` signals timeout.
    pub fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.read_internal(template, timeout, None)
    }

    /// Non-blocking read.
    pub fn read_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.read_internal(template, Some(Duration::ZERO), None)
    }

    /// Blocking destructive lookup: removes and returns a matching tuple.
    pub fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.take_internal(template, timeout, None)
    }

    /// Non-blocking take.
    pub fn take_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.take_internal(template, Some(Duration::ZERO), None)
    }

    /// Takes every currently matching tuple (non-blocking).
    pub fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.take_if_exists(template)? {
            out.push(t);
        }
        Ok(out)
    }

    /// Writes a batch of tuples under one lock acquisition (the
    /// JavaSpaces05 `write` batch operation). All become visible together;
    /// waiters are woken once and events fire once per tuple afterwards.
    pub fn write_all(&self, tuples: Vec<Tuple>) -> SpaceResult<Vec<EntryId>> {
        let mut ids = Vec::with_capacity(tuples.len());
        {
            let mut inner = self.inner.lock();
            if inner.closed {
                return Err(SpaceError::Closed);
            }
            let now = Instant::now();
            for tuple in &tuples {
                inner.next_id += 1;
                let id = inner.next_id;
                ids.push(id);
                SpaceStats::bump(&self.stats.writes);
                SpaceStats::add(&self.stats.bytes_written, tuple.size_hint() as u64);
                let stored = Stored {
                    id,
                    tuple: tuple.clone(),
                    expires: Lease::Forever.deadline_from(now),
                    lock: LockState::Free,
                };
                inner
                    .by_type
                    .entry(stored.tuple.type_name().to_owned())
                    .or_default()
                    .push_back(stored);
            }
        }
        self.cond.notify_all();
        self.fire_events(&tuples);
        Ok(ids)
    }

    /// Takes up to `max` matching tuples (the JavaSpaces05 `take` batch
    /// operation): blocks up to `timeout` for the *first* match, then
    /// drains whatever else currently matches without further waiting.
    pub fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        match self.take(template, timeout)? {
            None => return Ok(out),
            Some(first) => out.push(first),
        }
        while out.len() < max {
            match self.take_if_exists(template)? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(out)
    }

    /// Copies every currently matching tuple (non-blocking).
    pub fn read_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        let inner = self.inner.lock();
        if inner.closed {
            return Err(SpaceError::Closed);
        }
        let now = Instant::now();
        let mut out = Vec::new();
        for (ty, bucket) in &inner.by_type {
            if let Some(want) = template.type_name() {
                if want != ty {
                    continue;
                }
            }
            for stored in bucket {
                if !stored.expired(now)
                    && stored.visible_to_read(None)
                    && template.matches(&stored.tuple)
                {
                    out.push(stored.tuple.clone());
                }
            }
        }
        Ok(out)
    }

    /// Counts currently matching, visible tuples.
    pub fn count(&self, template: &Template) -> usize {
        self.read_all(template).map(|v| v.len()).unwrap_or(0)
    }

    /// Total number of live entries (all types), ignoring locks.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        let now = Instant::now();
        inner
            .by_type
            .values()
            .flat_map(|b| b.iter())
            .filter(|s| !s.expired(now))
            .count()
    }

    /// True when the space holds no live entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renews the lease on an entry.
    pub fn renew_lease(&self, id: EntryId, lease: Lease) -> SpaceResult<()> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SpaceError::Closed);
        }
        let now = Instant::now();
        for bucket in inner.by_type.values_mut() {
            if let Some(stored) = bucket.iter_mut().find(|s| s.id == id) {
                if stored.expired(now) {
                    return Err(SpaceError::LeaseExpired);
                }
                stored.expires = lease.deadline_from(now);
                return Ok(());
            }
        }
        Err(SpaceError::NoSuchEntry)
    }

    /// Cancels an entry by id (equivalent to taking it).
    pub fn cancel(&self, id: EntryId) -> SpaceResult<Tuple> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SpaceError::Closed);
        }
        let now = Instant::now();
        for bucket in inner.by_type.values_mut() {
            if let Some(pos) = bucket
                .iter()
                .position(|s| s.id == id && !s.expired(now) && s.takeable_by(None))
            {
                let stored = bucket.remove(pos).expect("position just found");
                return Ok(stored.tuple);
            }
        }
        Err(SpaceError::NoSuchEntry)
    }

    /// Purges expired entries immediately; returns how many were reclaimed.
    pub fn sweep(&self) -> usize {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        let mut removed = 0;
        for bucket in inner.by_type.values_mut() {
            let before = bucket.len();
            bucket.retain(|s| !s.expired(now));
            removed += before - bucket.len();
        }
        SpaceStats::add(&self.stats.expired, removed as u64);
        removed
    }

    /// Begins a transaction.
    pub fn txn(self: &Arc<Self>) -> SpaceResult<Txn> {
        let mut inner = self.inner.lock();
        if inner.closed {
            return Err(SpaceError::Closed);
        }
        inner.next_txn += 1;
        let id = TxnId(inner.next_txn);
        inner.txns.insert(id, TxnRecord::default());
        Ok(Txn::new(self.clone(), id))
    }

    /// Registers an event listener for writes matching `template`.
    pub fn notify(
        &self,
        template: Template,
        listener: Box<dyn Fn(SpaceEvent) + Send + Sync>,
    ) -> EventCookie {
        let cookie = {
            let mut next = self.next_cookie.lock();
            let c = EventCookie(*next);
            *next += 1;
            c
        };
        self.registrations.lock().push(Arc::new(RegistrationSlot {
            reg: Mutex::new(Registration {
                cookie,
                template,
                listener,
                seq: 0,
            }),
            active: std::sync::atomic::AtomicBool::new(true),
        }));
        cookie
    }

    /// Registers a channel-backed listener; events are sent into the
    /// returned receiver. The channel closes when the registration is
    /// cancelled and dropped.
    pub fn notify_channel(&self, template: Template) -> (EventCookie, mpsc::Receiver<SpaceEvent>) {
        let (tx, rx) = mpsc::channel();
        let cookie = self.notify(
            template,
            Box::new(move |ev| {
                let _ = tx.send(ev);
            }),
        );
        (cookie, rx)
    }

    /// Cancels an event registration.
    pub fn cancel_notify(&self, cookie: EventCookie) -> SpaceResult<()> {
        let mut regs = self.registrations.lock();
        let before = regs.len();
        regs.retain(|slot| {
            if slot.reg.lock().cookie == cookie {
                // Mark inactive so in-flight event snapshots skip it too.
                slot.active
                    .store(false, std::sync::atomic::Ordering::Relaxed);
                false
            } else {
                true
            }
        });
        if regs.len() == before {
            Err(SpaceError::NoSuchRegistration)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Internals shared with Txn.
    // ------------------------------------------------------------------

    pub(crate) fn write_internal(
        &self,
        tuple: Tuple,
        lease: Lease,
        txn: Option<TxnId>,
    ) -> SpaceResult<EntryId> {
        let size = tuple.size_hint() as u64;
        let (id, visible) = {
            let mut inner = self.inner.lock();
            if inner.closed {
                return Err(SpaceError::Closed);
            }
            inner.next_id += 1;
            let id = inner.next_id;
            let lock = match txn {
                Some(t) => {
                    let rec = inner.txns.get_mut(&t).ok_or(SpaceError::TxnInactive)?;
                    rec.writes.push(id);
                    LockState::PendingWrite(t)
                }
                None => LockState::Free,
            };
            let stored = Stored {
                id,
                tuple: tuple.clone(),
                expires: lease.deadline_from(Instant::now()),
                lock,
            };
            inner
                .by_type
                .entry(stored.tuple.type_name().to_owned())
                .or_default()
                .push_back(stored);
            SpaceStats::bump(&self.stats.writes);
            SpaceStats::add(&self.stats.bytes_written, size);
            (id, txn.is_none())
        };
        // Plain writes are instantly visible: wake waiters and fire events.
        // Transactional writes fire at commit instead.
        if visible {
            self.cond.notify_all();
            self.fire_events(std::slice::from_ref(&tuple));
        }
        Ok(id)
    }

    pub(crate) fn read_internal(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
    ) -> SpaceResult<Option<Tuple>> {
        self.wait_for(template, timeout, txn, false)
    }

    pub(crate) fn take_internal(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
    ) -> SpaceResult<Option<Tuple>> {
        self.wait_for(template, timeout, txn, true)
    }

    /// The single blocking matcher used by read and take.
    fn wait_for(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> SpaceResult<Option<Tuple>> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = self.inner.lock();
        let mut waited = false;
        loop {
            if inner.closed {
                return Err(SpaceError::Closed);
            }
            if let Some(t) = txn {
                if !inner.txns.contains_key(&t) {
                    return Err(SpaceError::TxnInactive);
                }
            }
            if let Some(tuple) = Self::try_match(&mut inner, template, txn, destructive) {
                SpaceStats::bump(if destructive {
                    &self.stats.takes
                } else {
                    &self.stats.reads
                });
                return Ok(Some(tuple));
            }
            // No match: park until something changes or the deadline hits.
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        SpaceStats::bump(&self.stats.misses);
                        return Ok(None);
                    }
                    if !waited {
                        SpaceStats::bump(&self.stats.blocked_waits);
                        waited = true;
                    }
                    if self.cond.wait_until(&mut inner, d).timed_out() {
                        // Re-check one final time before reporting a miss: a
                        // write may have landed exactly at the deadline.
                        if let Some(tuple) = Self::try_match(&mut inner, template, txn, destructive)
                        {
                            SpaceStats::bump(if destructive {
                                &self.stats.takes
                            } else {
                                &self.stats.reads
                            });
                            return Ok(Some(tuple));
                        }
                        if inner.closed {
                            return Err(SpaceError::Closed);
                        }
                        SpaceStats::bump(&self.stats.misses);
                        return Ok(None);
                    }
                }
                None => {
                    if !waited {
                        SpaceStats::bump(&self.stats.blocked_waits);
                        waited = true;
                    }
                    self.cond.wait(&mut inner);
                }
            }
        }
    }

    /// Scans for the oldest visible match; applies take/read locking.
    fn try_match(
        inner: &mut Inner,
        template: &Template,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> Option<Tuple> {
        let now = Instant::now();
        let type_filter = template.type_name().map(str::to_owned);
        let keys: Vec<String> = match &type_filter {
            Some(ty) => {
                if inner.by_type.contains_key(ty) {
                    vec![ty.clone()]
                } else {
                    Vec::new()
                }
            }
            None => inner.by_type.keys().cloned().collect(),
        };
        for key in keys {
            let bucket = inner.by_type.get_mut(&key).expect("key from map");
            // Lazily drop expired entries while scanning.
            bucket.retain(|s| !s.expired(now));
            let pos = bucket.iter().position(|s| {
                template.matches(&s.tuple)
                    && if destructive {
                        s.takeable_by(txn)
                    } else {
                        s.visible_to_read(txn)
                    }
            });
            let Some(pos) = pos else { continue };
            if destructive {
                match txn {
                    None => {
                        let stored = bucket.remove(pos).expect("position just found");
                        return Some(stored.tuple);
                    }
                    Some(t) => {
                        let stored = &mut bucket[pos];
                        let id = stored.id;
                        let tuple = stored.tuple.clone();
                        if stored.lock == LockState::PendingWrite(t) {
                            // Taking back your own uncommitted write: the
                            // entry simply disappears from the transaction.
                            bucket.remove(pos);
                            if let Some(rec) = inner.txns.get_mut(&t) {
                                rec.writes.retain(|w| *w != id);
                            }
                        } else {
                            stored.lock = LockState::TakenBy(t);
                            if let Some(rec) = inner.txns.get_mut(&t) {
                                rec.takes.push(id);
                            }
                        }
                        return Some(tuple);
                    }
                }
            } else {
                let stored = &mut bucket[pos];
                if let Some(t) = txn {
                    match &mut stored.lock {
                        LockState::Free => {
                            stored.lock = LockState::ReadBy(vec![t]);
                            let id = stored.id;
                            if let Some(rec) = inner.txns.get_mut(&t) {
                                rec.reads.push(id);
                            }
                        }
                        LockState::ReadBy(readers) => {
                            if !readers.contains(&t) {
                                readers.push(t);
                                let id = stored.id;
                                if let Some(rec) = inner.txns.get_mut(&t) {
                                    rec.reads.push(id);
                                }
                            }
                        }
                        // Reading your own pending write takes no lock.
                        LockState::PendingWrite(_) | LockState::TakenBy(_) => {}
                    }
                }
                return Some(stored.tuple.clone());
            }
        }
        None
    }

    pub(crate) fn finish_txn(&self, id: TxnId, commit: bool) -> SpaceResult<()> {
        let committed_tuples = {
            let mut inner = self.inner.lock();
            let rec = inner.txns.remove(&id).ok_or(SpaceError::TxnInactive)?;
            let mut fire: Vec<Tuple> = Vec::new();
            if commit {
                for bucket in inner.by_type.values_mut() {
                    for stored in bucket.iter_mut() {
                        match &mut stored.lock {
                            LockState::PendingWrite(t) if *t == id => {
                                stored.lock = LockState::Free;
                                fire.push(stored.tuple.clone());
                            }
                            LockState::ReadBy(readers) => {
                                readers.retain(|r| *r != id);
                                if readers.is_empty() {
                                    stored.lock = LockState::Free;
                                }
                            }
                            _ => {}
                        }
                    }
                    bucket.retain(|s| s.lock != LockState::TakenBy(id));
                }
                SpaceStats::bump(&self.stats.txns_committed);
            } else {
                for bucket in inner.by_type.values_mut() {
                    bucket.retain(|s| s.lock != LockState::PendingWrite(id));
                    for stored in bucket.iter_mut() {
                        match &mut stored.lock {
                            LockState::TakenBy(t) if *t == id => {
                                stored.lock = LockState::Free;
                            }
                            LockState::ReadBy(readers) => {
                                readers.retain(|r| *r != id);
                                if readers.is_empty() {
                                    stored.lock = LockState::Free;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                SpaceStats::bump(&self.stats.txns_aborted);
                let _ = rec;
            }
            fire
        };
        // Entries became visible (commit) or available again (abort): wake
        // all waiters either way.
        self.cond.notify_all();
        if !committed_tuples.is_empty() {
            self.fire_events(&committed_tuples);
        }
        Ok(())
    }

    fn fire_events(&self, tuples: &[Tuple]) {
        // Snapshot matching registrations without holding the main lock.
        let slots: Vec<Arc<RegistrationSlot>> = self.registrations.lock().clone();
        for slot in slots {
            if !slot.active.load(std::sync::atomic::Ordering::Relaxed) {
                continue;
            }
            let mut reg = slot.reg.lock();
            for tuple in tuples {
                if reg.template.matches(tuple) {
                    reg.seq += 1;
                    let ev = SpaceEvent {
                        cookie: reg.cookie,
                        seq: reg.seq,
                        tuple: tuple.clone(),
                    };
                    (reg.listener)(ev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use crate::tuple::Tuple;
    use std::thread;

    fn task(id: i64) -> Tuple {
        Tuple::build("task").field("id", id).done()
    }

    #[test]
    fn write_then_take() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let got = s.take_if_exists(&Template::of_type("task")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(1));
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_none());
    }

    #[test]
    fn read_does_not_remove() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_some());
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_some());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fifo_matching_order() {
        let s = Space::new("t");
        for i in 0..5 {
            s.write(task(i)).unwrap();
        }
        for i in 0..5 {
            let got = s.take_if_exists(&Template::of_type("task")).unwrap().unwrap();
            assert_eq!(got.get_int("id"), Some(i));
        }
    }

    #[test]
    fn blocking_take_waits_for_writer() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take(&Template::of_type("task"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        s.write(task(42)).unwrap();
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(42));
    }

    #[test]
    fn take_timeout_returns_none() {
        let s = Space::new("t");
        let got = s
            .take(&Template::of_type("task"), Some(Duration::from_millis(20)))
            .unwrap();
        assert!(got.is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn close_wakes_blocked_takers() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || s2.take(&Template::of_type("task"), None));
        thread::sleep(Duration::from_millis(30));
        s.close();
        assert_eq!(h.join().unwrap(), Err(SpaceError::Closed));
        assert!(s.write(task(1)).is_err());
    }

    #[test]
    fn lease_expiry_reclaims_entry() {
        let s = Space::new("t");
        s.write_leased(task(1), Lease::for_millis(10)).unwrap();
        thread::sleep(Duration::from_millis(25));
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_none());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn renew_extends_lease() {
        let s = Space::new("t");
        let id = s.write_leased(task(1), Lease::for_millis(40)).unwrap();
        s.renew_lease(id, Lease::forever()).unwrap();
        thread::sleep(Duration::from_millis(60));
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_some());
    }

    #[test]
    fn cancel_removes_by_id() {
        let s = Space::new("t");
        let id = s.write(task(7)).unwrap();
        let t = s.cancel(id).unwrap();
        assert_eq!(t.get_int("id"), Some(7));
        assert_eq!(s.cancel(id), Err(SpaceError::NoSuchEntry));
    }

    #[test]
    fn sweep_counts_expired() {
        let s = Space::new("t");
        s.write_leased(task(1), Lease::for_millis(5)).unwrap();
        s.write(task(2)).unwrap();
        thread::sleep(Duration::from_millis(15));
        assert_eq!(s.sweep(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn txn_write_invisible_until_commit() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_none());
        txn.commit().unwrap();
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_some());
    }

    #[test]
    fn txn_write_visible_to_self() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(txn
            .read(&Template::of_type("task"), Some(Duration::ZERO))
            .unwrap()
            .is_some());
        txn.abort().unwrap();
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_none());
    }

    #[test]
    fn txn_take_restored_on_abort() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        let got = txn.take_if_exists(&Template::of_type("task")).unwrap();
        assert!(got.is_some());
        // Invisible to others while taken.
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_none());
        txn.abort().unwrap();
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_some());
    }

    #[test]
    fn txn_take_removed_on_commit() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.take_if_exists(&Template::of_type("task")).unwrap();
        txn.commit().unwrap();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn txn_drop_aborts() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        {
            let txn = s.txn().unwrap();
            txn.take_if_exists(&Template::of_type("task")).unwrap();
            // Dropped without commit — simulated crash.
        }
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_some());
        assert_eq!(s.stats().txns_aborted, 1);
    }

    #[test]
    fn read_lock_blocks_other_take_but_not_read() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.read(&Template::of_type("task"), Some(Duration::ZERO))
            .unwrap()
            .unwrap();
        // Others can still read…
        assert!(s.read_if_exists(&Template::of_type("task")).unwrap().is_some());
        // …but not take.
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_none());
        txn.commit().unwrap();
        assert!(s.take_if_exists(&Template::of_type("task")).unwrap().is_some());
    }

    #[test]
    fn take_back_own_pending_write() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        let got = txn.take_if_exists(&Template::of_type("task")).unwrap();
        assert!(got.is_some());
        txn.commit().unwrap();
        // The write never became visible: taking your own pending write
        // cancels it.
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn commit_wakes_blocked_taker() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take(&Template::of_type("task"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        let txn = s.txn().unwrap();
        txn.write(task(5)).unwrap();
        txn.commit().unwrap();
        assert_eq!(h.join().unwrap().unwrap().get_int("id"), Some(5));
    }

    #[test]
    fn notify_fires_on_matching_write_only() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::build("task").eq("id", 2i64).done());
        s.write(task(1)).unwrap();
        s.write(task(2)).unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.tuple.get_int("id"), Some(2));
        assert_eq!(ev.seq, 1);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn notify_fires_on_commit_not_before() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::of_type("task"));
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(rx.try_recv().is_err());
        txn.commit().unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn cancel_notify_stops_events() {
        let s = Space::new("t");
        let (cookie, rx) = s.notify_channel(Template::of_type("task"));
        s.cancel_notify(cookie).unwrap();
        s.write(task(1)).unwrap();
        assert!(rx.try_recv().is_err());
        assert_eq!(
            s.cancel_notify(cookie),
            Err(SpaceError::NoSuchRegistration)
        );
    }

    #[test]
    fn many_concurrent_takers_each_get_distinct_task() {
        let s = Space::new("t");
        let n = 64;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s2 = s.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(t) = s2
                    .take(&Template::of_type("task"), Some(Duration::from_millis(200)))
                    .unwrap()
                {
                    got.push(t.get_int("id").unwrap());
                }
                got
            }));
        }
        for i in 0..n {
            s.write(task(i)).unwrap();
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn write_all_is_batched_and_ordered() {
        let s = Space::new("t");
        let ids = s.write_all((0..5).map(task).collect()).unwrap();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "contiguous ids");
        for i in 0..5 {
            let got = s.take_if_exists(&Template::of_type("task")).unwrap().unwrap();
            assert_eq!(got.get_int("id"), Some(i), "FIFO preserved");
        }
    }

    #[test]
    fn write_all_fires_events_per_tuple() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::of_type("task"));
        s.write_all(vec![task(1), task(2), task(3)]).unwrap();
        let mut seen = 0;
        while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn write_all_wakes_blocked_taker() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take_up_to(&Template::of_type("task"), 10, Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        s.write_all((0..4).map(task).collect()).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 4, "first blocks, rest drained");
    }

    #[test]
    fn take_up_to_caps_at_max() {
        let s = Space::new("t");
        s.write_all((0..10).map(task).collect()).unwrap();
        let got = s
            .take_up_to(&Template::of_type("task"), 3, Some(Duration::ZERO))
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(s.len(), 7);
        let none = s
            .take_up_to(&Template::of_type("task"), 0, Some(Duration::ZERO))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn take_up_to_timeout_empty() {
        let s = Space::new("t");
        let got = s
            .take_up_to(&Template::of_type("task"), 5, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn stats_track_operations() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        s.read_if_exists(&Template::of_type("task")).unwrap();
        s.take_if_exists(&Template::of_type("task")).unwrap();
        s.take_if_exists(&Template::of_type("task")).unwrap();
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 1);
        assert_eq!(st.takes, 1);
        assert_eq!(st.misses, 1);
        assert!(st.bytes_written > 0);
    }

    #[test]
    fn type_wildcard_template_scans_all_types() {
        let s = Space::new("t");
        s.write(Tuple::build("alpha").field("x", 1i64).done()).unwrap();
        s.write(Tuple::build("beta").field("x", 1i64).done()).unwrap();
        let all = s.read_all(&Template::any_type().eq("x", 1i64).done()).unwrap();
        assert_eq!(all.len(), 2);
    }
}
