//! Option contracts and the Black–Scholes closed form.

use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};

/// Call or put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionType {
    /// Right to buy at the strike.
    Call,
    /// Right to sell at the strike.
    Put,
}

/// Exercise style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptionStyle {
    /// Exercisable only at expiry.
    European,
    /// Exercisable at any decision date up to expiry.
    American,
}

/// A stock-option contract plus the market parameters that price it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptionSpec {
    /// Current price of the underlying security.
    pub spot: f64,
    /// Strike price.
    pub strike: f64,
    /// Continuously compounded risk-free interest rate.
    pub rate: f64,
    /// Dividend yield of the underlying.
    pub dividend: f64,
    /// Annualised volatility.
    pub volatility: f64,
    /// Time to expiration, in years.
    pub expiry: f64,
    /// Call or put.
    pub option_type: OptionType,
    /// European or American exercise.
    pub style: OptionStyle,
}

impl OptionSpec {
    /// The contract used throughout the evaluation: an at-the-money
    /// American call on a dividend-paying stock (dividends make early
    /// exercise of a call non-trivial, so high/low estimates differ).
    pub fn paper_default() -> OptionSpec {
        OptionSpec {
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            dividend: 0.10,
            volatility: 0.20,
            expiry: 1.0,
            option_type: OptionType::Call,
            style: OptionStyle::American,
        }
    }

    /// Intrinsic value of immediate exercise at underlying price `s`.
    pub fn payoff(&self, s: f64) -> f64 {
        match self.option_type {
            OptionType::Call => (s - self.strike).max(0.0),
            OptionType::Put => (self.strike - s).max(0.0),
        }
    }
}

impl Payload for OptionSpec {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(self.spot);
        w.put_f64(self.strike);
        w.put_f64(self.rate);
        w.put_f64(self.dividend);
        w.put_f64(self.volatility);
        w.put_f64(self.expiry);
        w.put_u8(match self.option_type {
            OptionType::Call => 0,
            OptionType::Put => 1,
        });
        w.put_u8(match self.style {
            OptionStyle::European => 0,
            OptionStyle::American => 1,
        });
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        Ok(OptionSpec {
            spot: r.get_f64()?,
            strike: r.get_f64()?,
            rate: r.get_f64()?,
            dividend: r.get_f64()?,
            volatility: r.get_f64()?,
            expiry: r.get_f64()?,
            option_type: match r.get_u8()? {
                0 => OptionType::Call,
                1 => OptionType::Put,
                _ => return Err(PayloadError::Corrupt("option type")),
            },
            style: match r.get_u8()? {
                0 => OptionStyle::European,
                1 => OptionStyle::American,
                _ => return Err(PayloadError::Corrupt("option style")),
            },
        })
    }
}

/// The standard normal CDF (Abramowitz–Stegun 7.1.26 via `erf`), accurate
/// to ~1.5e-7 — plenty for oracle comparisons.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Black–Scholes(-Merton) price of a *European* option with continuous
/// dividend yield. The MC estimator must converge to this.
pub fn black_scholes_price(spec: &OptionSpec) -> f64 {
    let OptionSpec {
        spot: s,
        strike: k,
        rate: r,
        dividend: q,
        volatility: sigma,
        expiry: t,
        ..
    } = *spec;
    if t <= 0.0 {
        return spec.payoff(s);
    }
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r - q + 0.5 * sigma * sigma) * t) / (sigma * sqrt_t);
    let d2 = d1 - sigma * sqrt_t;
    let df_r = (-r * t).exp();
    let df_q = (-q * t).exp();
    match spec.option_type {
        OptionType::Call => s * df_q * norm_cdf(d1) - k * df_r * norm_cdf(d2),
        OptionType::Put => k * df_r * norm_cdf(-d2) - s * df_q * norm_cdf(-d1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn european(option_type: OptionType) -> OptionSpec {
        OptionSpec {
            style: OptionStyle::European,
            option_type,
            dividend: 0.0,
            ..OptionSpec::paper_default()
        }
    }

    #[test]
    fn norm_cdf_reference_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(norm_cdf(8.0) > 0.999_999);
        assert!(norm_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn black_scholes_known_value() {
        // Hull's classic example: S=42, K=40, r=10%, sigma=20%, T=0.5.
        let spec = OptionSpec {
            spot: 42.0,
            strike: 40.0,
            rate: 0.10,
            dividend: 0.0,
            volatility: 0.20,
            expiry: 0.5,
            option_type: OptionType::Call,
            style: OptionStyle::European,
        };
        assert!((black_scholes_price(&spec) - 4.76).abs() < 0.01);
        let put = OptionSpec {
            option_type: OptionType::Put,
            ..spec
        };
        assert!((black_scholes_price(&put) - 0.81).abs() < 0.01);
    }

    #[test]
    fn put_call_parity() {
        let call = european(OptionType::Call);
        let put = european(OptionType::Put);
        let c = black_scholes_price(&call);
        let p = black_scholes_price(&put);
        let parity = c
            - p
            - (call.spot * (-call.dividend * call.expiry).exp()
                - call.strike * (-call.rate * call.expiry).exp());
        assert!(parity.abs() < 1e-10, "parity violation {parity}");
    }

    #[test]
    fn expired_option_is_intrinsic() {
        let mut spec = european(OptionType::Call);
        spec.expiry = 0.0;
        spec.spot = 120.0;
        assert_eq!(black_scholes_price(&spec), 20.0);
    }

    #[test]
    fn payoff_sides() {
        let call = european(OptionType::Call);
        assert_eq!(call.payoff(130.0), 30.0);
        assert_eq!(call.payoff(90.0), 0.0);
        let put = european(OptionType::Put);
        assert_eq!(put.payoff(90.0), 10.0);
        assert_eq!(put.payoff(130.0), 0.0);
    }

    #[test]
    fn spec_payload_roundtrip() {
        let spec = OptionSpec::paper_default();
        let decoded = OptionSpec::from_bytes(&spec.to_bytes()).unwrap();
        assert_eq!(decoded, spec);
    }
}
