//! The rule-base protocol (paper §4.4, Fig. 4).
//!
//! The interaction between the network management module and the worker
//! module:
//!
//! 1. the server listens for client connections;
//! 2. the SNMP client on a worker connects and identifies itself;
//! 3. the server assigns a client id and adds it to its worker list;
//! 4. the server polls the worker over SNMP (see [`crate::monitor`]);
//! 5. the inference engine decides a signal for the client;
//! 6. the signal is sent to the client through the server;
//! 7. the client delivers the signal to the executing worker application;
//! 8. the worker acknowledges with its new state, and monitoring continues.
//!
//! Messages travel over a [`Duplex`] — a bidirectional, message-oriented
//! link with an in-process implementation ([`duplex_pair`]) and a real TCP
//! implementation ([`tcp`]) using length-prefixed frames (the paper used
//! Java sockets here).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::signal::{Signal, WorkerState};

/// Identifier the management module assigns to each registered worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u64);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker#{}", self.0)
    }
}

/// A rule-base protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleMessage {
    /// Client → server: a worker announces itself (step 2).
    Register {
        /// The worker's host name.
        worker_name: String,
    },
    /// Server → client: registration accepted, id assigned (step 3).
    Registered {
        /// The assigned id.
        worker_id: WorkerId,
    },
    /// Server → client: a management signal (step 7).
    Signal {
        /// The signal to act on.
        signal: Signal,
    },
    /// Client → server: signal acted upon (step 8).
    Ack {
        /// The signal being acknowledged.
        signal: Signal,
        /// The worker's state after acting.
        new_state: WorkerState,
    },
    /// Client → server: the worker is leaving the cluster.
    Bye,
}

fn state_code(state: WorkerState) -> u8 {
    match state {
        WorkerState::Stopped => 0,
        WorkerState::Running => 1,
        WorkerState::Paused => 2,
    }
}

fn state_from_code(code: u8) -> Option<WorkerState> {
    match code {
        0 => Some(WorkerState::Stopped),
        1 => Some(WorkerState::Running),
        2 => Some(WorkerState::Paused),
        _ => None,
    }
}

impl Payload for RuleMessage {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RuleMessage::Register { worker_name } => {
                w.put_u8(1);
                w.put_str(worker_name);
            }
            RuleMessage::Registered { worker_id } => {
                w.put_u8(2);
                w.put_u64(worker_id.0);
            }
            RuleMessage::Signal { signal } => {
                w.put_u8(3);
                w.put_u8(signal.code());
            }
            RuleMessage::Ack { signal, new_state } => {
                w.put_u8(4);
                w.put_u8(signal.code());
                w.put_u8(state_code(*new_state));
            }
            RuleMessage::Bye => w.put_u8(5),
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            1 => Ok(RuleMessage::Register {
                worker_name: r.get_str()?,
            }),
            2 => Ok(RuleMessage::Registered {
                worker_id: WorkerId(r.get_u64()?),
            }),
            3 => Ok(RuleMessage::Signal {
                signal: Signal::from_code(r.get_u8()?)
                    .ok_or(PayloadError::Corrupt("signal code"))?,
            }),
            4 => Ok(RuleMessage::Ack {
                signal: Signal::from_code(r.get_u8()?)
                    .ok_or(PayloadError::Corrupt("signal code"))?,
                new_state: state_from_code(r.get_u8()?)
                    .ok_or(PayloadError::Corrupt("state code"))?,
            }),
            5 => Ok(RuleMessage::Bye),
            _ => Err(PayloadError::Corrupt("message tag")),
        }
    }
}

/// A bidirectional, message-oriented link.
#[derive(Debug, Clone)]
pub struct Duplex {
    tx: Sender<RuleMessage>,
    rx: Receiver<RuleMessage>,
}

impl Duplex {
    /// Sends a message; returns false if the peer is gone.
    pub fn send(&self, msg: RuleMessage) -> bool {
        self.tx.send(msg).is_ok()
    }

    /// Receives with a timeout; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<RuleMessage> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) => Some(msg),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<RuleMessage> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive; `None` when the peer hung up.
    pub fn recv(&self) -> Option<RuleMessage> {
        self.rx.recv().ok()
    }
}

/// Creates a cross-wired pair of in-process duplexes.
pub fn duplex_pair() -> (Duplex, Duplex) {
    let (a_tx, b_rx) = unbounded();
    let (b_tx, a_rx) = unbounded();
    (Duplex { tx: a_tx, rx: a_rx }, Duplex { tx: b_tx, rx: b_rx })
}

/// Client-side handshake: register over `duplex` and await the assigned id.
pub fn client_register(duplex: &Duplex, worker_name: &str, timeout: Duration) -> Option<WorkerId> {
    duplex.send(RuleMessage::Register {
        worker_name: worker_name.to_owned(),
    });
    match duplex.recv_timeout(timeout)? {
        RuleMessage::Registered { worker_id } => Some(worker_id),
        _ => None,
    }
}

/// Callback invoked when a worker acknowledges a signal or says goodbye.
pub type AckCallback = Arc<dyn Fn(WorkerId, RuleMessage) + Send + Sync>;

struct WorkerLink {
    name: String,
    duplex: Duplex,
}

/// The management-side endpoint of the rule-base protocol: the worker
/// registry plus signal fan-out.
pub struct RuleBaseServer {
    inner: Mutex<ServerInner>,
    on_message: AckCallback,
}

struct ServerInner {
    next_id: u64,
    workers: HashMap<WorkerId, WorkerLink>,
}

impl fmt::Debug for RuleBaseServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RuleBaseServer")
            .field("workers", &self.inner.lock().workers.len())
            .finish()
    }
}

impl RuleBaseServer {
    /// Creates a server. `on_message` receives every Ack/Bye from workers
    /// (the monitoring agent wires this to the inference engine).
    pub fn new(on_message: AckCallback) -> Arc<RuleBaseServer> {
        Arc::new(RuleBaseServer {
            inner: Mutex::new(ServerInner {
                next_id: 0,
                workers: HashMap::new(),
            }),
            on_message,
        })
    }

    /// Accepts one client connection: performs the Register/Registered
    /// handshake and spawns a reader pump for its acks. Returns the
    /// assigned id, or `None` if the client spoke out of protocol.
    pub fn accept(self: &Arc<Self>, duplex: Duplex, timeout: Duration) -> Option<WorkerId> {
        let name = match duplex.recv_timeout(timeout)? {
            RuleMessage::Register { worker_name } => worker_name,
            _ => return None,
        };
        let id = {
            let mut inner = self.inner.lock();
            inner.next_id += 1;
            let id = WorkerId(inner.next_id);
            inner.workers.insert(
                id,
                WorkerLink {
                    name,
                    duplex: duplex.clone(),
                },
            );
            id
        };
        duplex.send(RuleMessage::Registered { worker_id: id });
        // Reader pump: forward worker messages to the callback until the
        // worker hangs up or says Bye.
        let server = self.clone();
        std::thread::spawn(move || loop {
            match duplex.recv() {
                Some(RuleMessage::Bye) | None => {
                    (server.on_message)(id, RuleMessage::Bye);
                    server.inner.lock().workers.remove(&id);
                    break;
                }
                Some(msg) => (server.on_message)(id, msg),
            }
        });
        Some(id)
    }

    /// Sends a signal to a worker (step 6 of the protocol).
    pub fn send_signal(&self, id: WorkerId, signal: Signal) -> bool {
        let inner = self.inner.lock();
        match inner.workers.get(&id) {
            Some(link) => link.duplex.send(RuleMessage::Signal { signal }),
            None => false,
        }
    }

    /// The registered workers: `(id, name)` pairs.
    pub fn workers(&self) -> Vec<(WorkerId, String)> {
        let inner = self.inner.lock();
        let mut list: Vec<_> = inner
            .workers
            .iter()
            .map(|(id, link)| (*id, link.name.clone()))
            .collect();
        list.sort_by_key(|(id, _)| *id);
        list
    }
}

/// Rule-base protocol over real TCP loopback sockets with length-prefixed
/// frames — the deployment transport (the paper used Java sockets).
pub mod tcp {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn write_frame(stream: &mut TcpStream, msg: &RuleMessage) -> std::io::Result<()> {
        let bytes = msg.to_bytes();
        stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
        stream.write_all(&bytes)?;
        stream.flush()
    }

    fn read_frame(stream: &mut TcpStream) -> std::io::Result<RuleMessage> {
        let mut len_buf = [0u8; 4];
        stream.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > 1 << 16 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "frame too large",
            ));
        }
        let mut body = vec![0u8; len];
        stream.read_exact(&mut body)?;
        RuleMessage::from_bytes(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Turns a connected stream into a [`Duplex`] by spawning pump threads.
    fn duplex_over(stream: TcpStream) -> std::io::Result<Duplex> {
        let (local, remote_facing) = duplex_pair();
        let mut write_stream = stream.try_clone()?;
        let mut read_stream = stream;
        // Writer pump: local sends → socket.
        let writer_rx = remote_facing.rx.clone();
        std::thread::spawn(move || {
            while let Ok(msg) = writer_rx.recv() {
                if write_frame(&mut write_stream, &msg).is_err() {
                    break;
                }
                if msg == RuleMessage::Bye {
                    break;
                }
            }
            let _ = write_stream.shutdown(std::net::Shutdown::Write);
        });
        // Reader pump: socket → local receives.
        let reader_tx = remote_facing.tx.clone();
        std::thread::spawn(move || {
            while let Ok(msg) = read_frame(&mut read_stream) {
                if reader_tx.send(msg).is_err() {
                    break;
                }
            }
        });
        Ok(local)
    }

    /// Accepts rule-base clients over TCP, handing each accepted [`Duplex`]
    /// to the provided server.
    #[derive(Debug)]
    pub struct RuleBaseTcpListener {
        addr: SocketAddr,
        stop: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl RuleBaseTcpListener {
        /// Binds an ephemeral loopback port and serves `server`.
        pub fn spawn(server: Arc<RuleBaseServer>) -> std::io::Result<RuleBaseTcpListener> {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let addr = listener.local_addr()?;
            let stop = Arc::new(AtomicBool::new(false));
            let stop2 = stop.clone();
            let thread = std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    if let Ok(duplex) = duplex_over(stream) {
                        let _ = server.accept(duplex, Duration::from_secs(2));
                    }
                }
            });
            Ok(RuleBaseTcpListener {
                addr,
                stop,
                thread: Some(thread),
            })
        }

        /// The address workers connect to.
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }
    }

    impl Drop for RuleBaseTcpListener {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    /// Connects a worker-side duplex to a listening management module.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Duplex> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        duplex_over(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn message_codec_roundtrip() {
        let msgs = vec![
            RuleMessage::Register {
                worker_name: "w01".into(),
            },
            RuleMessage::Registered {
                worker_id: WorkerId(7),
            },
            RuleMessage::Signal {
                signal: Signal::Pause,
            },
            RuleMessage::Ack {
                signal: Signal::Stop,
                new_state: WorkerState::Stopped,
            },
            RuleMessage::Bye,
        ];
        for msg in msgs {
            assert_eq!(RuleMessage::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_messages_rejected() {
        assert!(RuleMessage::from_bytes(&[9]).is_err());
        assert!(RuleMessage::from_bytes(&[3, 99]).is_err());
        assert!(RuleMessage::from_bytes(&[4, 1, 77]).is_err());
        assert!(RuleMessage::from_bytes(&[]).is_err());
    }

    #[test]
    fn duplex_pair_cross_wired() {
        let (a, b) = duplex_pair();
        a.send(RuleMessage::Bye);
        assert_eq!(b.try_recv(), Some(RuleMessage::Bye));
        b.send(RuleMessage::Signal {
            signal: Signal::Start,
        });
        assert_eq!(
            a.recv_timeout(Duration::from_millis(100)),
            Some(RuleMessage::Signal {
                signal: Signal::Start
            })
        );
        assert_eq!(a.try_recv(), None);
    }

    fn counting_server() -> (Arc<RuleBaseServer>, Arc<AtomicUsize>) {
        let acks = Arc::new(AtomicUsize::new(0));
        let acks2 = acks.clone();
        let server = RuleBaseServer::new(Arc::new(move |_, msg| {
            if matches!(msg, RuleMessage::Ack { .. }) {
                acks2.fetch_add(1, Ordering::SeqCst);
            }
        }));
        (server, acks)
    }

    #[test]
    fn register_signal_ack_flow() {
        let (server, acks) = counting_server();
        let (client_side, server_side) = duplex_pair();
        // Client registers in a thread (accept blocks on the handshake).
        let reg = std::thread::spawn(move || {
            client_register(&client_side, "w01", Duration::from_secs(2)).map(|id| (client_side, id))
        });
        let id = server.accept(server_side, Duration::from_secs(2)).unwrap();
        let (client_side, client_id) = reg.join().unwrap().unwrap();
        assert_eq!(id, client_id);
        assert_eq!(server.workers(), vec![(id, "w01".to_owned())]);

        assert!(server.send_signal(id, Signal::Start));
        assert_eq!(
            client_side.recv_timeout(Duration::from_secs(1)),
            Some(RuleMessage::Signal {
                signal: Signal::Start
            })
        );
        client_side.send(RuleMessage::Ack {
            signal: Signal::Start,
            new_state: WorkerState::Running,
        });
        let begun = std::time::Instant::now();
        while acks.load(Ordering::SeqCst) == 0 && begun.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(acks.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn bye_unregisters() {
        let (server, _) = counting_server();
        let (client_side, server_side) = duplex_pair();
        let reg = std::thread::spawn(move || {
            client_register(&client_side, "w02", Duration::from_secs(2)).map(|id| (client_side, id))
        });
        let id = server.accept(server_side, Duration::from_secs(2)).unwrap();
        let (client_side, _) = reg.join().unwrap().unwrap();
        assert_eq!(server.workers().len(), 1);
        client_side.send(RuleMessage::Bye);
        let begun = std::time::Instant::now();
        while !server.workers().is_empty() && begun.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.workers().is_empty());
        assert!(!server.send_signal(id, Signal::Stop));
    }

    #[test]
    fn tcp_register_signal_ack() {
        let (server, acks) = counting_server();
        let listener = tcp::RuleBaseTcpListener::spawn(server.clone()).unwrap();
        let duplex = tcp::connect(listener.addr()).unwrap();
        let id = client_register(&duplex, "tcp-worker", Duration::from_secs(2)).unwrap();
        // Give the server a beat to finish registering.
        let begun = std::time::Instant::now();
        while server.workers().is_empty() && begun.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(server.send_signal(id, Signal::Start));
        assert_eq!(
            duplex.recv_timeout(Duration::from_secs(2)),
            Some(RuleMessage::Signal {
                signal: Signal::Start
            })
        );
        duplex.send(RuleMessage::Ack {
            signal: Signal::Start,
            new_state: WorkerState::Running,
        });
        let begun = std::time::Instant::now();
        while acks.load(Ordering::SeqCst) == 0 && begun.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(acks.load(Ordering::SeqCst), 1);
    }
}
