//! Micro-benchmarks of the telemetry substrate itself — the point is to
//! prove the instrumentation is cheap enough to leave in hot paths.
//!
//! The contract: with no subscriber installed, `span!`/`event!` cost a
//! relaxed atomic load and a branch (single-digit nanoseconds); counters
//! and histograms are a relaxed fetch_add.

use criterion::{criterion_group, criterion_main, Criterion};

use acc_telemetry::{event, registry, span, Histogram, Timed};

fn bench_disabled_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/disabled");
    // No subscriber is installed in this process, so these measure the
    // permanent cost instrumented code pays in production hot paths.
    group.bench_function("event", |b| {
        b.iter(|| event!("bench.event", task_id = 42u64, job = "bench"));
    });
    group.bench_function("span", |b| {
        b.iter(|| {
            let _span = span!("bench.span", task_id = 42u64);
        });
    });
    group.bench_function("timed_stopwatch", |b| {
        acc_telemetry::set_timing(false);
        let h = Histogram::new();
        b.iter(|| {
            let t = Timed::start();
            t.observe(&h);
        });
    });
    group.finish();
}

fn bench_recording(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/recording");
    group.bench_function("counter_inc", |b| {
        let counter = registry().counter("bench.counter");
        b.iter(|| counter.inc());
    });
    group.bench_function("histogram_observe", |b| {
        let h = Histogram::new();
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(2_654_435_761).wrapping_rem(1_000_000);
            h.observe(v);
        });
    });
    group.bench_function("render_text_50_series", |b| {
        // Render cost over a realistically sized registry (the acceptance
        // run exposes ~45 series).
        let r = acc_telemetry::Registry::new();
        let names: Vec<&'static str> = (0..50)
            .map(|i| &*Box::leak(format!("bench.series.{i}").into_boxed_str()))
            .collect();
        for (i, name) in names.iter().enumerate() {
            if i % 2 == 0 {
                r.counter(name).add(i as u64);
            } else {
                r.histogram(name).observe(i as u64 * 17);
            }
        }
        b.iter(|| r.render_text());
    });
    group.finish();
}

/// Median per-iteration nanoseconds over `rounds` timed batches.
fn median_ns(mut f: impl FnMut(), rounds: usize, per_round: u64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = std::time::Instant::now();
            for _ in 0..per_round {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_round as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The flight recorder's cost contract, measured with the recorder
/// actually installed. Registered after the disabled-path group so those
/// benches still see a quiet process.
fn bench_flight_recorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry/flight");
    acc_telemetry::flight::install();
    group.bench_function("event_recorded", |b| {
        b.iter(|| event!("bench.flight.event", task_id = 42u64));
    });
    group.bench_function("span_recorded", |b| {
        b.iter(|| {
            let _span = span!("bench.flight.span", task_id = 42u64);
        });
    });
    group.finish();

    // Budget asserts — only under `cargo bench` (the shim's test mode runs
    // each body once, where a single timing sample would be meaningless).
    if std::env::args().any(|a| a == "--bench") {
        let with_flight = median_ns(
            || event!("bench.flight.budget", task_id = 42u64),
            25,
            10_000,
        );
        assert!(
            with_flight < 100.0,
            "flight-recorded event! took {with_flight:.1} ns (budget 100 ns)"
        );
        acc_telemetry::flight::uninstall();
        let disabled = median_ns(
            || event!("bench.flight.budget", task_id = 42u64),
            25,
            10_000,
        );
        assert!(
            disabled < 15.0,
            "disabled event! took {disabled:.1} ns (budget 15 ns)"
        );
        println!("flight budget: recorded {with_flight:.1} ns, disabled {disabled:.1} ns");
    }
    acc_telemetry::flight::uninstall();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_disabled_tracing, bench_recording, bench_flight_recorder
);
criterion_main!(benches);
