//! The simulator's global telemetry series (`sim.*` names).
//!
//! The simulator runs in virtual time, so wall-clock stopwatches would
//! measure nothing but host speed. Instead the event loop records
//! *virtual* durations — the same quantities the thread runtime measures
//! with `Instant` — directly into the shared registry, under a `sim.`
//! prefix so real and simulated series never mix.

use std::sync::{Arc, OnceLock};

use acc_telemetry::{registry, Counter, Histogram};

/// Simulator-layer series, recorded in virtual microseconds.
pub(crate) struct SimSeries {
    /// Completed simulation runs.
    pub runs: Arc<Counter>,
    /// Events popped off the virtual-time queue.
    pub events: Arc<Counter>,
    /// Tasks completed across all simulated workers.
    pub tasks_completed: Arc<Counter>,
    /// Signals delivered to simulated workers.
    pub signals_delivered: Arc<Counter>,
    /// Per-task service time (take + compute + write), virtual µs.
    pub task_service_vus: Arc<Histogram>,
    /// Signal reaction time (client send → worker act), virtual µs.
    pub reaction_vus: Arc<Histogram>,
    /// End-to-end parallel time per run, virtual µs.
    pub parallel_vus: Arc<Histogram>,
}

/// The lazily registered simulator series (one set per process).
pub(crate) fn series() -> &'static SimSeries {
    static SERIES: OnceLock<SimSeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        SimSeries {
            runs: r.counter("sim.runs"),
            events: r.counter("sim.events"),
            tasks_completed: r.counter("sim.tasks.completed"),
            signals_delivered: r.counter("sim.signals.delivered"),
            task_service_vus: r.histogram("sim.task.service_vus"),
            reaction_vus: r.histogram("sim.signal.reaction_vus"),
            parallel_vus: r.histogram("sim.parallel.vus"),
        }
    })
}
