//! A network-accessible space: TCP server and remote client.
//!
//! JavaSpaces is "a shared, **network-accessible** repository for Java
//! objects" — masters and workers on different machines reach the same
//! space. [`SpaceServer`] serves an in-process [`Space`] over TCP with
//! length-prefixed frames; [`RemoteSpace`] is the client-side proxy and
//! implements [`TupleStore`], so the framework's master and workers work
//! against it unchanged.
//!
//! **Trust model:** the protocol is unauthenticated — any connector can
//! read, take, or close the space, matching the paper's era (JavaSpaces
//! relied on the deployment network's perimeter; its community-string-like
//! controls lived in Jini security policies, out of scope here). Bind to
//! loopback or a trusted segment.
//!
//! Protocol: one synchronous request/response per frame per connection.
//! Blocking `read`/`take` block on the *server* (each connection gets its
//! own service thread), exactly like a JavaSpaces proxy blocking on the
//! remote call.
//!
//! ```
//! use acc_tuplespace::{RemoteSpace, Space, SpaceServer, Template, Tuple, TupleStore};
//!
//! let space = Space::new("shared");
//! let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
//! let proxy = RemoteSpace::connect(server.addr()).unwrap();
//!
//! proxy.write(Tuple::build("task").field("id", 1i64).done()).unwrap();
//! let got = space.take_if_exists(&Template::of_type("task")).unwrap();
//! assert_eq!(got.unwrap().get_int("id"), Some(1));
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use acc_telemetry::TraceContext;
use parking_lot::Mutex;

use crate::error::{SpaceError, SpaceResult};
use crate::lease::Lease;
use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::space::{EntryId, Space};
use crate::store::TupleStore;
use crate::template::Template;
use crate::tuple::Tuple;

const MAX_FRAME: usize = 16 << 20;

/// Current wire-protocol version, exchanged via [`Request::Hello`].
/// Version 1 adds the `Hello` handshake and the `Traced` request
/// envelope carrying a distributed [`TraceContext`]. Version-0 peers
/// (the seed protocol) never see either: a v0 server drops the
/// connection on the unknown `Hello` tag, which the client takes as
/// "speak v0" and reconnects plain.
pub const PROTO_VERSION: u32 = 1;

#[derive(Debug, PartialEq)]
enum Request {
    /// Write with optional lease (`None` = forever, `Some(ms)`).
    Write(Tuple, Option<u64>),
    /// Read with optional timeout in ms (`None` = wait forever).
    Read(Template, Option<u64>),
    /// Take with optional timeout in ms.
    Take(Template, Option<u64>),
    /// Count matching tuples.
    Count(Template),
    /// Close the space.
    Close,
    /// Is the space closed?
    IsClosed,
    /// Version handshake: client sends its protocol version, server
    /// answers [`Response::Proto`]. (v1+)
    Hello(u32),
    /// A basic request wrapped with the sender's trace context, so the
    /// server-side handler span joins the client's trace. (v1+)
    Traced {
        trace_id: u64,
        span_id: u64,
        inner: Box<Request>,
    },
}

impl Payload for Request {
    fn encode(&self, w: &mut WireWriter) {
        let put_opt = |w: &mut WireWriter, v: &Option<u64>| match v {
            Some(ms) => {
                w.put_bool(true);
                w.put_u64(*ms);
            }
            None => w.put_bool(false),
        };
        match self {
            Request::Write(tuple, lease) => {
                w.put_u8(1);
                tuple.encode(w);
                put_opt(w, lease);
            }
            Request::Read(tmpl, timeout) => {
                w.put_u8(2);
                tmpl.encode(w);
                put_opt(w, timeout);
            }
            Request::Take(tmpl, timeout) => {
                w.put_u8(3);
                tmpl.encode(w);
                put_opt(w, timeout);
            }
            Request::Count(tmpl) => {
                w.put_u8(4);
                tmpl.encode(w);
            }
            Request::Close => w.put_u8(5),
            Request::IsClosed => w.put_u8(6),
            Request::Hello(version) => {
                w.put_u8(7);
                w.put_u32(*version);
            }
            Request::Traced {
                trace_id,
                span_id,
                inner,
            } => {
                w.put_u8(8);
                w.put_u64(*trace_id);
                w.put_u64(*span_id);
                inner.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            7 => Ok(Request::Hello(r.get_u32()?)),
            8 => {
                let trace_id = r.get_u64()?;
                let span_id = r.get_u64()?;
                // The envelope may only wrap a *basic* request — decoding
                // the inner tag through `decode` again would let a hostile
                // frame nest envelopes ~1M deep inside MAX_FRAME and blow
                // the service thread's stack.
                let inner = Request::decode_basic(r.get_u8()?, r)?;
                Ok(Request::Traced {
                    trace_id,
                    span_id,
                    inner: Box::new(inner),
                })
            }
            tag => Request::decode_basic(tag, r),
        }
    }
}

impl Request {
    /// Decodes the version-0 request set (tags 1–6) — everything except
    /// the handshake and the trace envelope.
    fn decode_basic(tag: u8, r: &mut WireReader) -> Result<Request, PayloadError> {
        let get_opt = |r: &mut WireReader| -> Result<Option<u64>, PayloadError> {
            if r.get_bool()? {
                Ok(Some(r.get_u64()?))
            } else {
                Ok(None)
            }
        };
        match tag {
            1 => {
                let tuple = Tuple::decode(r)?;
                let lease = get_opt(r)?;
                Ok(Request::Write(tuple, lease))
            }
            2 => {
                let tmpl = Template::decode(r)?;
                let timeout = get_opt(r)?;
                Ok(Request::Read(tmpl, timeout))
            }
            3 => {
                let tmpl = Template::decode(r)?;
                let timeout = get_opt(r)?;
                Ok(Request::Take(tmpl, timeout))
            }
            4 => Ok(Request::Count(Template::decode(r)?)),
            5 => Ok(Request::Close),
            6 => Ok(Request::IsClosed),
            _ => Err(PayloadError::Corrupt("request tag")),
        }
    }

    /// The operation name a [`Request::Traced`] envelope's server-side
    /// span reports.
    fn op_name(&self) -> &'static str {
        match self {
            Request::Write(..) => "write",
            Request::Read(..) => "read",
            Request::Take(..) => "take",
            Request::Count(..) => "count",
            Request::Close => "close",
            Request::IsClosed => "is_closed",
            Request::Hello(..) => "hello",
            Request::Traced { .. } => "traced",
        }
    }
}

#[derive(Debug, PartialEq)]
enum Response {
    Id(EntryId),
    MaybeTuple(Option<Tuple>),
    Count(u64),
    Bool(bool),
    Unit,
    /// An error code plus a detail string (empty except for `Storage`).
    Err(u8, String),
    /// The server's protocol version, answering [`Request::Hello`]. (v1+)
    Proto(u32),
}

fn error_encode(e: &SpaceError) -> Response {
    let code = match e {
        SpaceError::Closed => 1,
        SpaceError::TxnInactive => 2,
        SpaceError::NoSuchEntry => 3,
        SpaceError::LeaseExpired => 4,
        SpaceError::NoSuchRegistration => 5,
        SpaceError::EntryLocked => 6,
        SpaceError::Storage(_) => 7,
    };
    let detail = match e {
        SpaceError::Storage(msg) => msg.clone(),
        _ => String::new(),
    };
    Response::Err(code, detail)
}

fn error_from(code: u8, detail: String) -> SpaceError {
    match code {
        1 => SpaceError::Closed,
        2 => SpaceError::TxnInactive,
        3 => SpaceError::NoSuchEntry,
        4 => SpaceError::LeaseExpired,
        6 => SpaceError::EntryLocked,
        7 => SpaceError::Storage(detail),
        _ => SpaceError::NoSuchRegistration,
    }
}

impl Payload for Response {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Response::Id(id) => {
                w.put_u8(1);
                w.put_u64(*id);
            }
            Response::MaybeTuple(None) => w.put_u8(2),
            Response::MaybeTuple(Some(tuple)) => {
                w.put_u8(3);
                tuple.encode(w);
            }
            Response::Count(n) => {
                w.put_u8(4);
                w.put_u64(*n);
            }
            Response::Bool(b) => {
                w.put_u8(5);
                w.put_bool(*b);
            }
            Response::Unit => w.put_u8(6),
            Response::Err(code, detail) => {
                w.put_u8(7);
                w.put_u8(*code);
                w.put_str(detail);
            }
            Response::Proto(version) => {
                w.put_u8(8);
                w.put_u32(*version);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            1 => Ok(Response::Id(r.get_u64()?)),
            2 => Ok(Response::MaybeTuple(None)),
            3 => Ok(Response::MaybeTuple(Some(Tuple::decode(r)?))),
            4 => Ok(Response::Count(r.get_u64()?)),
            5 => Ok(Response::Bool(r.get_bool()?)),
            6 => Ok(Response::Unit),
            7 => Ok(Response::Err(r.get_u8()?, r.get_str()?)),
            8 => Ok(Response::Proto(r.get_u32()?)),
            _ => Err(PayloadError::Corrupt("response tag")),
        }
    }
}

fn write_frame(stream: &mut TcpStream, payload: &impl Payload) -> std::io::Result<()> {
    let bytes = payload.to_bytes();
    stream.write_all(&(bytes.len() as u32).to_le_bytes())?;
    stream.write_all(&bytes)?;
    stream.flush()
}

fn read_frame_bytes(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Resource limits for a [`SpaceServer`]. Each accepted connection owns one
/// service thread, so an unbounded accept loop lets one misbehaving client
/// pool exhaust the server; these knobs bound both the thread count and how
/// long a silent connection may pin its thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Max idle time between requests on a connection before it is dropped
    /// (`None` = wait forever). Does not limit blocking `read`/`take`
    /// service time — while those wait on the space, the socket is idle on
    /// the *client's* side, not the server's.
    pub read_timeout: Option<Duration>,
    /// Max time a response write may block before the connection is
    /// dropped (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Max concurrently served connections; connections accepted over this
    /// limit are dropped immediately.
    pub max_connections: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_connections: 128,
        }
    }
}

type ConnRegistry = Arc<Mutex<std::collections::HashMap<u64, TcpStream>>>;

/// Serves one space over TCP loopback/network.
#[derive(Debug)]
pub struct SpaceServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    /// Live served connections, so drop can actively hang up on clients
    /// (service threads are detached; shutting their sockets down is what
    /// unblocks and ends them).
    conns: ConnRegistry,
    observer: Option<acc_telemetry::HttpServer>,
}

impl SpaceServer {
    /// Binds an ephemeral port on the given address (`"127.0.0.1:0"` for
    /// loopback) and starts serving with [`ServerOptions::default`].
    pub fn spawn(space: Arc<Space>, bind: &str) -> std::io::Result<SpaceServer> {
        SpaceServer::spawn_with(space, bind, ServerOptions::default())
    }

    /// Like [`SpaceServer::spawn_with`], plus a scrape endpoint
    /// (`/metrics`, `/metrics.json`, `/healthz`, `/spans`) on a second
    /// bind — the server-side half of the observability plane. `/healthz`
    /// checks that the served space is open and its journal flushes.
    pub fn spawn_observed(
        space: Arc<Space>,
        bind: &str,
        opts: ServerOptions,
        observe_bind: &str,
    ) -> std::io::Result<SpaceServer> {
        let health = acc_telemetry::HealthChecks::new();
        let space_open = space.clone();
        health.register("space", move || {
            if space_open.is_closed() {
                Err("space closed".into())
            } else {
                Ok("open".into())
            }
        });
        let space_wal = space.clone();
        health.register("wal", move || match space_wal.flush_journal() {
            Ok(()) => Ok("flushing".into()),
            Err(e) => Err(e.to_string()),
        });
        let observer = acc_telemetry::serve(observe_bind, health)?;
        let mut server = SpaceServer::spawn_with(space, bind, opts)?;
        server.observer = Some(observer);
        Ok(server)
    }

    /// The scrape endpoint's address, when mounted via
    /// [`SpaceServer::spawn_observed`].
    pub fn observe_addr(&self) -> Option<SocketAddr> {
        self.observer.as_ref().map(|o| o.addr())
    }

    /// Like [`SpaceServer::spawn`] with explicit resource limits.
    pub fn spawn_with(
        space: Arc<Space>,
        bind: &str,
        opts: ServerOptions,
    ) -> std::io::Result<SpaceServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let active = Arc::new(AtomicUsize::new(0));
        let conns: ConnRegistry = Arc::new(Mutex::new(std::collections::HashMap::new()));
        let conns2 = conns.clone();
        let accept_thread = std::thread::spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                if active.fetch_add(1, Ordering::SeqCst) >= opts.max_connections {
                    // Over the cap: release the slot and drop the socket.
                    active.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(opts.read_timeout);
                let _ = stream.set_write_timeout(opts.write_timeout);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns2.lock().insert(conn_id, clone);
                }
                let space = space.clone();
                let active = active.clone();
                let conns3 = conns2.clone();
                std::thread::spawn(move || {
                    /// Releases the connection slot and registry entry
                    /// however the thread exits.
                    struct Slot(Arc<AtomicUsize>, ConnRegistry, u64);
                    impl Drop for Slot {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::SeqCst);
                            self.1.lock().remove(&self.2);
                        }
                    }
                    let _slot = Slot(active, conns3, conn_id);
                    while let Ok(bytes) = read_frame_bytes(&mut stream) {
                        let Ok(request) = Request::from_bytes(&bytes) else {
                            break;
                        };
                        let response = serve(&space, request);
                        if write_frame(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        Ok(SpaceServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conns,
            observer: None,
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for SpaceServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Actively hang up on served clients: service threads are
        // detached and may be blocked in a read; shutting the sockets
        // down unblocks them so clients see Closed, not a stale server.
        for (_, conn) in self.conns.lock().drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

fn serve(space: &Arc<Space>, request: Request) -> Response {
    match request {
        Request::Hello(_client_version) => Response::Proto(PROTO_VERSION),
        Request::Traced {
            trace_id,
            span_id,
            inner,
        } => {
            // Adopt the client's context so the handler span (and any
            // space instrumentation under it) joins the client's trace.
            let _ctx = (trace_id != 0 && span_id != 0)
                .then(|| TraceContext { trace_id, span_id }.attach());
            let _span = acc_telemetry::span!("space.serve", op = inner.op_name());
            serve_basic(space, *inner)
        }
        basic => serve_basic(space, basic),
    }
}

fn serve_basic(space: &Arc<Space>, request: Request) -> Response {
    fn map<T>(result: SpaceResult<T>, ok: impl FnOnce(T) -> Response) -> Response {
        match result {
            Ok(v) => ok(v),
            Err(e) => error_encode(&e),
        }
    }
    match request {
        Request::Write(tuple, lease) => {
            let lease = match lease {
                Some(ms) => Lease::for_millis(ms),
                None => Lease::Forever,
            };
            map(space.write_leased(tuple, lease), Response::Id)
        }
        Request::Read(tmpl, timeout) => map(
            Space::read(space, &tmpl, timeout.map(Duration::from_millis)),
            Response::MaybeTuple,
        ),
        Request::Take(tmpl, timeout) => map(
            Space::take(space, &tmpl, timeout.map(Duration::from_millis)),
            Response::MaybeTuple,
        ),
        Request::Count(tmpl) => Response::Count(Space::count(space, &tmpl) as u64),
        Request::Close => {
            Space::close(space);
            Response::Unit
        }
        Request::IsClosed => Response::Bool(Space::is_closed(space)),
        // Envelopes never nest (the codec enforces it); answer the
        // version either way rather than kill the connection.
        Request::Hello(..) | Request::Traced { .. } => Response::Proto(PROTO_VERSION),
    }
}

/// Client-side proxy to a [`SpaceServer`] — the "downloaded space proxy".
/// One TCP connection, one request in flight at a time (clone-free; open
/// one proxy per worker, as each worker owns its own connection).
#[derive(Debug)]
pub struct RemoteSpace {
    stream: Mutex<TcpStream>,
    /// What the server answered to `Hello` — 0 for a version-0 (seed
    /// protocol) server, which must never be sent v1 frames.
    peer_version: u32,
}

impl RemoteSpace {
    /// Connects to a space server and probes its protocol version: a
    /// `Hello` is sent first, and a server that hangs up on it (a v0
    /// server breaks the connection on any undecodable request) gets a
    /// plain reconnect with every v1 feature disabled.
    pub fn connect(addr: SocketAddr) -> std::io::Result<RemoteSpace> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        match RemoteSpace::probe(&mut stream) {
            Ok(version) => Ok(RemoteSpace {
                stream: Mutex::new(stream),
                peer_version: version,
            }),
            Err(_) => {
                // Old peer: reconnect and speak version 0 only.
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(RemoteSpace {
                    stream: Mutex::new(stream),
                    peer_version: 0,
                })
            }
        }
    }

    fn probe(stream: &mut TcpStream) -> std::io::Result<u32> {
        write_frame(stream, &Request::Hello(PROTO_VERSION))?;
        let bytes = read_frame_bytes(stream)?;
        match Response::from_bytes(&bytes) {
            Ok(Response::Proto(version)) => Ok(version),
            _ => Ok(0),
        }
    }

    /// The protocol version the connected server answered with (0 = a
    /// pre-handshake server).
    pub fn peer_version(&self) -> u32 {
        self.peer_version
    }

    fn call(&self, request: Request) -> SpaceResult<Response> {
        let mut stream = self.stream.lock();
        write_frame(&mut stream, &request).map_err(|_| SpaceError::Closed)?;
        let bytes = read_frame_bytes(&mut stream).map_err(|_| SpaceError::Closed)?;
        Response::from_bytes(&bytes).map_err(|_| SpaceError::Closed)
    }

    /// Opens a client-side span over the operation and, when tracing is
    /// on and the peer speaks v1, wraps the request in a [`Request::Traced`]
    /// envelope carrying that span's context — which is how the server's
    /// handler span ends up in the caller's trace.
    fn call_traced(&self, span_name: &'static str, request: Request) -> SpaceResult<Response> {
        let _span = acc_telemetry::span!(span_name);
        let request = match TraceContext::current_if_enabled() {
            Some(ctx) if self.peer_version >= 1 => Request::Traced {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                inner: Box::new(request),
            },
            _ => request,
        };
        self.call(request)
    }

    fn expect_tuple(
        &self,
        span_name: &'static str,
        request: Request,
    ) -> SpaceResult<Option<Tuple>> {
        match self.call_traced(span_name, request)? {
            Response::MaybeTuple(t) => Ok(t),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            _ => Err(SpaceError::Closed),
        }
    }
}

impl TupleStore for RemoteSpace {
    fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        let lease_ms = match lease {
            Lease::Forever => None,
            Lease::Duration(d) => Some(d.as_millis() as u64),
        };
        match self.call_traced("remote.write", Request::Write(tuple, lease_ms))? {
            Response::Id(id) => Ok(id),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            _ => Err(SpaceError::Closed),
        }
    }

    fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.expect_tuple(
            "remote.read",
            Request::Read(template.clone(), timeout.map(|d| d.as_millis() as u64)),
        )
    }

    fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.expect_tuple(
            "remote.take",
            Request::Take(template.clone(), timeout.map(|d| d.as_millis() as u64)),
        )
    }

    fn count(&self, template: &Template) -> SpaceResult<usize> {
        match self.call_traced("remote.count", Request::Count(template.clone()))? {
            Response::Count(n) => Ok(n as usize),
            Response::Err(code, detail) => Err(error_from(code, detail)),
            _ => Err(SpaceError::Closed),
        }
    }

    fn close(&self) {
        let _ = self.call(Request::Close);
    }

    fn is_closed(&self) -> bool {
        matches!(
            self.call(Request::IsClosed),
            Ok(Response::Bool(true)) | Err(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreHandle;

    fn tuple(id: i64) -> Tuple {
        Tuple::build("t").field("id", id).done()
    }

    fn rig() -> (Arc<Space>, SpaceServer, RemoteSpace) {
        let space = Space::new("served");
        let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        (space, server, remote)
    }

    #[test]
    fn request_response_codecs_roundtrip() {
        let requests = vec![
            Request::Write(tuple(1), Some(5000)),
            Request::Write(tuple(2), None),
            Request::Read(Template::of_type("t"), Some(100)),
            Request::Take(Template::any_type().done(), None),
            Request::Count(Template::of_type("t")),
            Request::Close,
            Request::IsClosed,
            Request::Hello(PROTO_VERSION),
            Request::Traced {
                trace_id: 0xdead_beef_cafe_f00d,
                span_id: 42,
                inner: Box::new(Request::Take(Template::of_type("t"), Some(250))),
            },
        ];
        for r in requests {
            assert_eq!(Request::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        let responses = vec![
            Response::Id(7),
            Response::MaybeTuple(None),
            Response::MaybeTuple(Some(tuple(3))),
            Response::Count(12),
            Response::Bool(true),
            Response::Unit,
            Response::Err(1, String::new()),
            Response::Err(7, "disk full".into()),
            Response::Proto(PROTO_VERSION),
        ];
        for r in responses {
            assert_eq!(Response::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }

    #[test]
    fn nested_trace_envelopes_are_rejected_not_recursed() {
        // Hand-build Traced(Traced(IsClosed)): the codec must refuse the
        // inner envelope rather than recurse (stack-overflow guard).
        let mut w = WireWriter::new();
        w.put_u8(8);
        w.put_u64(1);
        w.put_u64(2);
        w.put_u8(8); // inner tag: another envelope
        w.put_u64(3);
        w.put_u64(4);
        w.put_u8(6);
        assert!(Request::from_bytes(&w.finish()).is_err());
        // An envelope wrapping a Hello is equally invalid.
        let mut w = WireWriter::new();
        w.put_u8(8);
        w.put_u64(1);
        w.put_u64(2);
        w.put_u8(7);
        w.put_u32(1);
        assert!(Request::from_bytes(&w.finish()).is_err());
    }

    #[test]
    fn connect_negotiates_protocol_version() {
        let (_space, _server, remote) = rig();
        assert_eq!(remote.peer_version(), PROTO_VERSION);
    }

    #[test]
    fn connect_falls_back_to_v0_when_peer_rejects_hello() {
        // A "v0 server": accepts, reads one frame, hangs up — exactly how
        // the seed server reacted to an undecodable request tag.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let old_server = std::thread::spawn(move || {
            let mut seen_frames = 0usize;
            for stream in listener.incoming().take(2) {
                let Ok(mut stream) = stream else { continue };
                if read_frame_bytes(&mut stream).is_ok() {
                    seen_frames += 1;
                }
                // Drop the connection without answering: v0 behaviour
                // for a frame it cannot decode.
            }
            seen_frames
        });
        let remote = RemoteSpace::connect(addr).unwrap();
        assert_eq!(remote.peer_version(), 0);
        // The client's next op goes over the *second* (plain) connection
        // and carries no envelope; our fake server just hangs up, which
        // surfaces as Closed — but the probe must not have errored out
        // the constructor.
        assert!(remote.write(tuple(1)).is_err());
        assert!(old_server.join().unwrap() >= 1);
    }

    #[test]
    fn traced_envelope_serves_like_plain_request() {
        let space = Space::new("enveloped");
        let env = Request::Traced {
            trace_id: 9,
            span_id: 11,
            inner: Box::new(Request::Write(tuple(5), None)),
        };
        let Response::Id(_) = serve(&space, env) else {
            panic!("enveloped write must behave like a plain write");
        };
        assert_eq!(
            serve(
                &space,
                Request::Traced {
                    trace_id: 9,
                    span_id: 12,
                    inner: Box::new(Request::Count(Template::of_type("t"))),
                }
            ),
            Response::Count(1)
        );
        // Hello gets the version back.
        assert_eq!(
            serve(&space, Request::Hello(0)),
            Response::Proto(PROTO_VERSION)
        );
    }

    #[test]
    fn observed_server_scrapes_metrics_and_health() {
        use std::io::{Read as _, Write as _};
        let space = Space::new("observed");
        let server = SpaceServer::spawn_observed(
            space.clone(),
            "127.0.0.1:0",
            ServerOptions::default(),
            "127.0.0.1:0",
        )
        .unwrap();
        let observe = server.observe_addr().expect("observer mounted");
        let get = |path: &str| {
            let mut s = TcpStream::connect(observe).unwrap();
            s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let health = get("/healthz");
        assert!(health.contains("200"), "{health}");
        assert!(health.contains("space: ok"), "{health}");
        assert!(health.contains("wal: ok"), "{health}");
        let metrics = get("/metrics");
        assert!(metrics.contains("# TYPE"), "{metrics}");
        // Closing the space flips /healthz to 503.
        space.close();
        let health = get("/healthz");
        assert!(health.contains("503"), "{health}");
        assert!(health.contains("space: FAIL"), "{health}");
    }

    #[test]
    fn remote_write_take_roundtrip() {
        let (_space, _server, remote) = rig();
        remote.write(tuple(1)).unwrap();
        remote.write(tuple(2)).unwrap();
        assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 2);
        let got = remote.take_if_exists(&Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(1));
    }

    #[test]
    fn remote_sees_local_writes_and_vice_versa() {
        let (space, _server, remote) = rig();
        space.write(tuple(10)).unwrap();
        let got = remote.take_if_exists(&Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(10));
        remote.write(tuple(11)).unwrap();
        let got = Space::take_if_exists(&space, &Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(11));
    }

    #[test]
    fn remote_blocking_take_waits_for_writer() {
        let (space, _server, remote) = rig();
        let handle = std::thread::spawn(move || {
            remote
                .take(&Template::of_type("t"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(40));
        space.write(tuple(77)).unwrap();
        let got = handle.join().unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(77));
    }

    #[test]
    fn remote_timeout_returns_none() {
        let (_space, _server, remote) = rig();
        let got = remote
            .take(&Template::of_type("t"), Some(Duration::from_millis(30)))
            .unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn remote_close_propagates() {
        let (space, _server, remote) = rig();
        assert!(!remote.is_closed());
        remote.close();
        assert!(space.is_closed());
        assert!(remote.is_closed());
        assert_eq!(remote.write(tuple(1)), Err(SpaceError::Closed));
    }

    #[test]
    fn leased_remote_writes_expire() {
        let (_space, _server, remote) = rig();
        remote
            .write_leased(tuple(1), Lease::for_millis(10))
            .unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(remote.count(&Template::of_type("t")).unwrap(), 0);
    }

    #[test]
    fn two_remote_workers_share_distinct_tasks() {
        let (space, server, _unused) = rig();
        for i in 0..40 {
            space.write(tuple(i)).unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..2 {
            let remote = RemoteSpace::connect(server.addr()).unwrap();
            handles.push(std::thread::spawn(move || {
                let store: StoreHandle = Arc::new(remote);
                let mut got = Vec::new();
                while let Ok(Some(t)) =
                    store.take(&Template::of_type("t"), Some(Duration::from_millis(100)))
                {
                    got.push(t.get_int("id").unwrap());
                }
                got
            }));
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn server_drop_disconnects_clients() {
        let (_space, server, remote) = rig();
        drop(server);
        std::thread::sleep(Duration::from_millis(20));
        // New requests fail as Closed.
        assert!(remote.write(tuple(1)).is_err());
    }

    #[test]
    fn connection_cap_drops_excess_connections() {
        let space = Space::new("capped");
        let server = SpaceServer::spawn_with(
            space,
            "127.0.0.1:0",
            ServerOptions {
                max_connections: 1,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let first = RemoteSpace::connect(server.addr()).unwrap();
        // Prove the first connection holds the only slot.
        first.write(tuple(1)).unwrap();
        // The second connection is accepted at TCP level but dropped by the
        // server before service; its first request fails.
        let second = RemoteSpace::connect(server.addr()).unwrap();
        assert_eq!(second.write(tuple(2)), Err(SpaceError::Closed));
        // Releasing the first connection frees the slot for a new client.
        drop(first);
        let mut ok = false;
        for _ in 0..50 {
            std::thread::sleep(Duration::from_millis(10));
            let third = RemoteSpace::connect(server.addr()).unwrap();
            if third.write(tuple(3)).is_ok() {
                ok = true;
                break;
            }
        }
        assert!(ok, "slot was never released");
    }

    #[test]
    fn idle_connection_is_dropped_after_read_timeout() {
        let space = Space::new("timed");
        let server = SpaceServer::spawn_with(
            space,
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(40)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        remote.write(tuple(1)).unwrap();
        // Stay silent past the idle limit: the server hangs up on us.
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(remote.write(tuple(2)), Err(SpaceError::Closed));
    }

    #[test]
    fn active_requests_survive_read_timeout() {
        // The idle timeout bounds silence *between* requests; a blocking
        // take that waits longer than the timeout must still be served.
        let space = Space::new("busy");
        let server = SpaceServer::spawn_with(
            space.clone(),
            "127.0.0.1:0",
            ServerOptions {
                read_timeout: Some(Duration::from_millis(40)),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        let remote = RemoteSpace::connect(server.addr()).unwrap();
        let handle = std::thread::spawn(move || {
            remote
                .take(&Template::of_type("t"), Some(Duration::from_millis(400)))
                .unwrap()
        });
        std::thread::sleep(Duration::from_millis(200));
        space.write(tuple(9)).unwrap();
        assert_eq!(handle.join().unwrap().unwrap().get_int("id"), Some(9));
    }

    #[test]
    fn storage_error_crosses_the_wire_with_its_message() {
        let e = SpaceError::Storage("disk on fire".into());
        let resp = error_encode(&e);
        let decoded = Response::from_bytes(&resp.to_bytes()).unwrap();
        let Response::Err(code, detail) = decoded else {
            panic!("expected error response");
        };
        assert_eq!(error_from(code, detail), e);
    }
}
