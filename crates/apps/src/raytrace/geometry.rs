//! Rays, surfaces and intersection tests (ray casting).

use super::math::Vec3;

/// A half-line: origin plus direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Start point.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// A ray through `origin` toward `dir` (normalized here).
    pub fn new(origin: Vec3, dir: Vec3) -> Ray {
        Ray {
            origin,
            dir: dir.normalized(),
        }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// Phong material parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Base color.
    pub color: Vec3,
    /// Ambient coefficient.
    pub ambient: f64,
    /// Diffuse coefficient.
    pub diffuse: f64,
    /// Specular coefficient.
    pub specular: f64,
    /// Phong shininess exponent.
    pub shininess: f64,
    /// Fraction of light mirrored (drives recursion).
    pub reflectivity: f64,
}

impl Material {
    /// Matte colored surface.
    pub fn matte(color: Vec3) -> Material {
        Material {
            color,
            ambient: 0.1,
            diffuse: 0.9,
            specular: 0.1,
            shininess: 8.0,
            reflectivity: 0.0,
        }
    }

    /// Shiny surface with some mirror reflection.
    pub fn shiny(color: Vec3, reflectivity: f64) -> Material {
        Material {
            color,
            ambient: 0.1,
            diffuse: 0.6,
            specular: 0.8,
            shininess: 64.0,
            reflectivity,
        }
    }
}

/// A ray/surface intersection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HitRecord {
    /// Ray parameter of the hit.
    pub t: f64,
    /// Hit point.
    pub point: Vec3,
    /// Outward unit normal at the hit point.
    pub normal: Vec3,
    /// Surface material.
    pub material: Material,
}

/// Anything a ray can hit.
pub trait Surface: Send + Sync {
    /// The nearest intersection with `ray` at parameter `t > t_min`, if any.
    fn hit(&self, ray: &Ray, t_min: f64) -> Option<HitRecord>;
}

/// A sphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sphere {
    /// Center point.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Surface material.
    pub material: Material,
}

impl Surface for Sphere {
    fn hit(&self, ray: &Ray, t_min: f64) -> Option<HitRecord> {
        let oc = ray.origin - self.center;
        let b = oc.dot(ray.dir);
        let c = oc.dot(oc) - self.radius * self.radius;
        let disc = b * b - c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        let t = [-b - sqrt_disc, -b + sqrt_disc]
            .into_iter()
            .find(|&t| t > t_min)?;
        let point = ray.at(t);
        Some(HitRecord {
            t,
            point,
            normal: (point - self.center).normalized(),
            material: self.material,
        })
    }
}

/// An infinite plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plane {
    /// A point on the plane.
    pub point: Vec3,
    /// Unit normal.
    pub normal: Vec3,
    /// Surface material.
    pub material: Material,
    /// Checkerboard tint: if `Some(other)`, squares alternate between
    /// `material.color` and `other` (classic ray-tracer floor).
    pub checker: Option<Vec3>,
}

impl Surface for Plane {
    fn hit(&self, ray: &Ray, t_min: f64) -> Option<HitRecord> {
        let denom = self.normal.dot(ray.dir);
        if denom.abs() < 1e-12 {
            return None;
        }
        let t = (self.point - ray.origin).dot(self.normal) / denom;
        if t <= t_min {
            return None;
        }
        let point = ray.at(t);
        let mut material = self.material;
        if let Some(other) = self.checker {
            let u = point.x.floor() as i64 + point.z.floor() as i64;
            if u.rem_euclid(2) == 1 {
                material.color = other;
            }
        }
        Some(HitRecord {
            t,
            point,
            normal: if denom < 0.0 {
                self.normal
            } else {
                -self.normal
            },
            material,
        })
    }
}

/// A triangle (Möller–Trumbore intersection).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
    /// Surface material.
    pub material: Material,
}

impl Surface for Triangle {
    fn hit(&self, ray: &Ray, t_min: f64) -> Option<HitRecord> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = ray.dir.cross(e2);
        let det = e1.dot(p);
        if det.abs() < 1e-12 {
            return None; // parallel to the triangle plane
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.dir.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if t <= t_min {
            return None;
        }
        let geometric_normal = e1.cross(e2).normalized();
        // Orient the normal against the incoming ray.
        let normal = if geometric_normal.dot(ray.dir) < 0.0 {
            geometric_normal
        } else {
            -geometric_normal
        };
        Some(HitRecord {
            t,
            point: ray.at(t),
            normal,
            material: self.material,
        })
    }
}

/// A scene object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Shape {
    /// A sphere.
    Sphere(Sphere),
    /// A plane.
    Plane(Plane),
    /// A triangle.
    Triangle(Triangle),
}

impl Surface for Shape {
    fn hit(&self, ray: &Ray, t_min: f64) -> Option<HitRecord> {
        match self {
            Shape::Sphere(s) => s.hit(ray, t_min),
            Shape::Plane(p) => p.hit(ray, t_min),
            Shape::Triangle(t) => t.hit(ray, t_min),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_sphere() -> Sphere {
        Sphere {
            center: Vec3::new(0.0, 0.0, -5.0),
            radius: 1.0,
            material: Material::matte(Vec3::ONE),
        }
    }

    #[test]
    fn ray_hits_sphere_front_face() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let hit = unit_sphere().hit(&ray, 1e-9).unwrap();
        assert!((hit.t - 4.0).abs() < 1e-12);
        assert_eq!(hit.normal, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn ray_misses_sphere() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0));
        assert!(unit_sphere().hit(&ray, 1e-9).is_none());
    }

    #[test]
    fn ray_inside_sphere_hits_back_face() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, -1.0));
        let hit = unit_sphere().hit(&ray, 1e-9).unwrap();
        assert!((hit.t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn t_min_skips_near_hit() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let hit = unit_sphere().hit(&ray, 4.5).unwrap();
        assert!((hit.t - 6.0).abs() < 1e-12, "takes the far root");
    }

    #[test]
    fn plane_hit_and_parallel_miss() {
        let plane = Plane {
            point: Vec3::new(0.0, -1.0, 0.0),
            normal: Vec3::new(0.0, 1.0, 0.0),
            material: Material::matte(Vec3::ONE),
            checker: None,
        };
        let down = Ray::new(Vec3::ZERO, Vec3::new(0.0, -1.0, 0.0));
        let hit = plane.hit(&down, 1e-9).unwrap();
        assert!((hit.t - 1.0).abs() < 1e-12);
        assert_eq!(hit.normal, Vec3::new(0.0, 1.0, 0.0));
        let level = Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!(plane.hit(&level, 1e-9).is_none());
    }

    fn unit_triangle() -> Triangle {
        Triangle {
            a: Vec3::new(-1.0, -1.0, -3.0),
            b: Vec3::new(1.0, -1.0, -3.0),
            c: Vec3::new(0.0, 1.0, -3.0),
            material: Material::matte(Vec3::ONE),
        }
    }

    #[test]
    fn ray_hits_triangle_interior() {
        let ray = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0));
        let hit = unit_triangle().hit(&ray, 1e-9).unwrap();
        assert!((hit.t - 3.0).abs() < 1e-12);
        // Normal faces the camera.
        assert!(hit.normal.dot(ray.dir) < 0.0);
    }

    #[test]
    fn ray_misses_triangle_outside_edges() {
        for origin in [
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(-2.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
        ] {
            let ray = Ray::new(origin, Vec3::new(0.0, 0.0, -1.0));
            assert!(unit_triangle().hit(&ray, 1e-9).is_none(), "{origin:?}");
        }
    }

    #[test]
    fn ray_parallel_to_triangle_misses() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::new(1.0, 0.0, 0.0));
        // The ray lies in the triangle's plane: treated as a miss.
        assert!(unit_triangle().hit(&ray, 1e-9).is_none());
    }

    #[test]
    fn triangle_hit_from_behind_flips_normal() {
        let ray = Ray::new(Vec3::new(0.0, 0.0, -6.0), Vec3::new(0.0, 0.0, 1.0));
        let hit = unit_triangle().hit(&ray, 1e-9).unwrap();
        assert!(hit.normal.dot(ray.dir) < 0.0, "normal faces the ray origin");
    }

    #[test]
    fn checkerboard_alternates() {
        let plane = Plane {
            point: Vec3::ZERO,
            normal: Vec3::new(0.0, 1.0, 0.0),
            material: Material::matte(Vec3::ONE),
            checker: Some(Vec3::ZERO),
        };
        let hit_a = plane
            .hit(
                &Ray::new(Vec3::new(0.5, 1.0, 0.5), Vec3::new(0.0, -1.0, 0.0)),
                1e-9,
            )
            .unwrap();
        let hit_b = plane
            .hit(
                &Ray::new(Vec3::new(1.5, 1.0, 0.5), Vec3::new(0.0, -1.0, 0.0)),
                1e-9,
            )
            .unwrap();
        assert_ne!(hit_a.material.color, hit_b.material.color);
    }
}
