//! The manager side: sessions, polling and sample history.
//!
//! The framework's monitoring agent is, in SNMP terms, a *manager*: it keeps
//! a session per registered worker and periodically polls the worker's CPU
//! load OID, feeding the samples to the inference engine (paper §4.4). The
//! [`Poller`] here is that loop; the inference engine plugs in as the sample
//! callback.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use acc_telemetry::{registry, Counter, Histogram};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Message, Pdu, PduType, SnmpError, SnmpValue, VERSION_2C};
use crate::transport::Transport;

/// Global `snmp.*` series, registered on first use.
struct SnmpSeries {
    /// Manager→agent requests issued (any PDU type).
    requests: Arc<Counter>,
    /// Exchanges that failed (transport, codec or agent error).
    errors: Arc<Counter>,
    /// Poll ticks whose GET failed (the worker was unreachable).
    missed_polls: Arc<Counter>,
    /// Round-trip time of one manager↔agent exchange, µs.
    rtt_us: Arc<Histogram>,
}

fn series() -> &'static SnmpSeries {
    static SERIES: OnceLock<SnmpSeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        SnmpSeries {
            requests: r.counter("snmp.poll.requests"),
            errors: r.counter("snmp.poll.errors"),
            missed_polls: r.counter("snmp.poll.missed"),
            rtt_us: r.histogram("snmp.poll.rtt_us"),
        }
    })
}

/// Creates sessions that share a community string and request-id sequence.
#[derive(Debug)]
pub struct Manager {
    community: String,
    next_request_id: Arc<AtomicI64>,
}

impl Manager {
    /// Creates a manager using `community` for all sessions.
    pub fn new(community: impl Into<String>) -> Manager {
        Manager {
            community: community.into(),
            next_request_id: Arc::new(AtomicI64::new(1)),
        }
    }

    /// Opens a session over the given transport.
    pub fn session(&self, transport: Box<dyn Transport>) -> Session {
        Session {
            community: self.community.clone(),
            next_request_id: self.next_request_id.clone(),
            transport: Mutex::new(transport),
        }
    }
}

/// One manager↔agent conversation.
pub struct Session {
    community: String,
    next_request_id: Arc<AtomicI64>,
    transport: Mutex<Box<dyn Transport>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("community", &self.community)
            .finish()
    }
}

impl Session {
    /// The single choke point every manager request goes through — GETs,
    /// GETNEXTs and SETs all record their round trip here.
    fn exchange(&self, pdu_type: PduType, pdu: Pdu) -> Result<Pdu, SnmpError> {
        let s = series();
        s.requests.inc();
        let started = Instant::now();
        let result = self.exchange_inner(pdu_type, pdu);
        s.rtt_us.observe_duration(started.elapsed());
        if result.is_err() {
            s.errors.inc();
        }
        result
    }

    fn exchange_inner(&self, pdu_type: PduType, pdu: Pdu) -> Result<Pdu, SnmpError> {
        let _span = acc_telemetry::span!("snmp.request");
        let request_id = pdu.request_id;
        // SNMPv2c has no extension header, so the trace context rides as a
        // suffix on the community string (see `community_with_context`).
        let community = match acc_telemetry::TraceContext::current_if_enabled() {
            Some(ctx) => crate::pdu::community_with_context(&self.community, &ctx),
            None => self.community.clone(),
        };
        let msg = Message {
            version: VERSION_2C,
            community,
            pdu_type,
            pdu,
        };
        let bytes = crate::codec::encode_message(&msg);
        let resp_bytes = self.transport.lock().request(&bytes)?;
        let resp = crate::codec::decode_message(&resp_bytes)?;
        if resp.pdu.request_id != request_id {
            return Err(SnmpError::RequestIdMismatch);
        }
        if resp.pdu.error_status != ErrorStatus::NoError {
            return Err(SnmpError::Agent(resp.pdu.error_status));
        }
        Ok(resp.pdu)
    }

    fn fresh_id(&self) -> i64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// GETs a single variable.
    pub fn get(&self, oid: &Oid) -> Result<SnmpValue, SnmpError> {
        let pdu = self.exchange(
            PduType::Get,
            Pdu::request(self.fresh_id(), std::slice::from_ref(oid)),
        )?;
        match pdu.varbinds.into_iter().next() {
            Some((_, SnmpValue::NoSuchObject)) | None => Err(SnmpError::NoSuchObject),
            Some((_, value)) => Ok(value),
        }
    }

    /// GETs several variables in one round trip.
    pub fn get_many(&self, oids: &[Oid]) -> Result<Vec<(Oid, SnmpValue)>, SnmpError> {
        let pdu = self.exchange(PduType::Get, Pdu::request(self.fresh_id(), oids))?;
        Ok(pdu.varbinds)
    }

    /// GETNEXT relative to `oid`.
    pub fn get_next(&self, oid: &Oid) -> Result<Option<(Oid, SnmpValue)>, SnmpError> {
        let pdu = self.exchange(
            PduType::GetNext,
            Pdu::request(self.fresh_id(), std::slice::from_ref(oid)),
        )?;
        match pdu.varbinds.into_iter().next() {
            None => Ok(None),
            Some((_, SnmpValue::EndOfMibView)) => Ok(None),
            Some(pair) => Ok(Some(pair)),
        }
    }

    /// Walks the subtree rooted at `prefix`.
    pub fn walk(&self, prefix: &Oid) -> Result<Vec<(Oid, SnmpValue)>, SnmpError> {
        let mut out = Vec::new();
        let mut cursor = prefix.clone();
        while let Some((oid, value)) = self.get_next(&cursor)? {
            if !prefix.is_prefix_of(&oid) {
                break;
            }
            cursor = oid.clone();
            out.push((oid, value));
        }
        Ok(out)
    }

    /// SETs a variable.
    pub fn set(&self, oid: &Oid, value: SnmpValue) -> Result<(), SnmpError> {
        self.exchange(
            PduType::Set,
            Pdu {
                request_id: self.fresh_id(),
                error_status: ErrorStatus::NoError,
                error_index: 0,
                varbinds: vec![(oid.clone(), value)],
            },
        )?;
        Ok(())
    }
}

/// One polled measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// When the sample was taken.
    pub at: Instant,
    /// The gauge value (e.g. CPU load percent).
    pub value: u64,
}

/// A bounded history of samples with simple statistics.
#[derive(Debug, Clone)]
pub struct PollHistory {
    samples: std::collections::VecDeque<Sample>,
    capacity: usize,
}

impl PollHistory {
    /// History retaining the last `capacity` samples.
    pub fn new(capacity: usize) -> PollHistory {
        PollHistory {
            samples: std::collections::VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Records one sample.
    pub fn push(&mut self, sample: Sample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Most recent sample.
    pub fn latest(&self) -> Option<Sample> {
        self.samples.back().copied()
    }

    /// Mean over the retained window.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().map(|s| s.value as f64).sum::<f64>() / self.samples.len() as f64)
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A background loop polling one gauge OID at a fixed interval.
#[derive(Debug)]
pub struct Poller {
    stop: Arc<AtomicBool>,
    wake: Sender<()>,
    history: Arc<Mutex<PollHistory>>,
    thread: Option<JoinHandle<()>>,
}

impl Poller {
    /// Spawns the polling loop. Each successful sample is recorded in the
    /// history and passed to `on_sample`; transport errors are counted as
    /// missed polls and the loop keeps going (a flaky worker is not fatal).
    pub fn spawn(
        session: Session,
        oid: Oid,
        interval: Duration,
        history_capacity: usize,
        on_sample: impl Fn(Sample) + Send + 'static,
    ) -> Poller {
        let stop = Arc::new(AtomicBool::new(false));
        let history = Arc::new(Mutex::new(PollHistory::new(history_capacity)));
        let (wake_tx, wake_rx) = bounded::<()>(1);
        let stop2 = stop.clone();
        let history2 = history.clone();
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match session.get(&oid) {
                    Ok(value) => {
                        if let Some(v) = value.as_u64() {
                            let sample = Sample {
                                at: Instant::now(),
                                value: v,
                            };
                            history2.lock().push(sample);
                            on_sample(sample);
                        }
                    }
                    Err(_) => series().missed_polls.inc(),
                }
                // Sleep until the next tick, but wake immediately on stop.
                let _ = wake_rx.recv_timeout(interval);
            }
        });
        Poller {
            stop,
            wake: wake_tx,
            history,
            thread: Some(thread),
        }
    }

    /// The recorded sample history.
    pub fn history(&self) -> PollHistory {
        self.history.lock().clone()
    }

    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.wake.try_send(());
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{host_resources_mib, Agent};
    use crate::oid::oids;
    use crate::transport::InProcTransport;
    use std::sync::atomic::AtomicU64;

    fn session_with_load(load: Arc<AtomicU64>) -> Session {
        let load2 = load.clone();
        let agent = Arc::new(Agent::new(
            "public",
            host_resources_mib(
                "n".into(),
                2048,
                move || load2.load(Ordering::Relaxed),
                || 512,
                || 0,
            ),
        ));
        Manager::new("public").session(Box::new(InProcTransport::new(agent)))
    }

    #[test]
    fn get_and_get_many() {
        let s = session_with_load(Arc::new(AtomicU64::new(55)));
        assert_eq!(
            s.get(&oids::hr_processor_load_1()).unwrap(),
            SnmpValue::Gauge(55)
        );
        let many = s
            .get_many(&[oids::hr_processor_load_1(), oids::hr_memory_size()])
            .unwrap();
        assert_eq!(many.len(), 2);
        assert_eq!(many[1].1, SnmpValue::Int(2048));
    }

    #[test]
    fn get_missing_is_error() {
        let s = session_with_load(Arc::new(AtomicU64::new(0)));
        assert_eq!(
            s.get(&Oid::parse("9.9.9").unwrap()),
            Err(SnmpError::NoSuchObject)
        );
    }

    #[test]
    fn walk_subtree() {
        let s = session_with_load(Arc::new(AtomicU64::new(0)));
        // Walk the whole standard MIB-2 subtree.
        let walked = s.walk(&Oid::parse("1.3.6.1.2.1").unwrap()).unwrap();
        assert!(walked.len() >= 4);
        // Walk a narrow subtree: only hrProcessorLoad.
        let narrow = s.walk(&oids::hr_processor_load()).unwrap();
        assert_eq!(narrow.len(), 1);
        assert_eq!(narrow[0].0, oids::hr_processor_load_1());
    }

    #[test]
    fn poller_records_history_and_calls_back() {
        let load = Arc::new(AtomicU64::new(10));
        let s = session_with_load(load.clone());
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let poller = Poller::spawn(
            s,
            oids::hr_processor_load_1(),
            Duration::from_millis(5),
            16,
            move |sample| {
                seen2.store(sample.value, Ordering::Relaxed);
            },
        );
        std::thread::sleep(Duration::from_millis(30));
        load.store(90, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(30));
        let history = poller.history();
        poller.stop();
        assert!(history.len() >= 2);
        assert_eq!(seen.load(Ordering::Relaxed), 90);
        assert_eq!(history.latest().unwrap().value, 90);
        let mean = history.mean().unwrap();
        assert!(mean > 10.0 && mean < 90.0, "mean {mean}");
    }

    #[test]
    fn history_capacity_bounds() {
        let mut h = PollHistory::new(3);
        let t = Instant::now();
        for i in 0..10 {
            h.push(Sample { at: t, value: i });
        }
        assert_eq!(h.len(), 3);
        let values: Vec<u64> = h.samples().map(|s| s.value).collect();
        assert_eq!(values, vec![7, 8, 9]);
    }

    #[test]
    fn history_empty_stats() {
        let h = PollHistory::new(4);
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.latest(), None);
    }
}
