//! Space-grid demo: the same option-pricing job as `remote_workers`, but
//! the tuple space is *partitioned over four shard servers* and every
//! worker reaches it through a `PartitionedSpace` — hash-routed writes,
//! scatter-gather reads, per-shard health.
//!
//! Run with: `cargo run --release --example space_grid`
//!
//! In production each shard would be its own process (`ACC_SHARDS`
//! carries the comma-separated list); here they share the process so the
//! demo is self-contained and the transcript reproducible. Set
//! `ACC_OBSERVE=127.0.0.1:9137` and pass `--hold-ms 60000` to curl the
//! `/healthz` grid check and `/cluster` shard table while it holds.
//!
//! Accepts `--shards <n>` (default 4) and `--workers <n>` (default 3).

use std::time::Duration;

use adaptive_spaces::apps::pricing::{price_sequential, OptionSpec, PricingApp};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{ClusterBuilder, FrameworkConfig};
use adaptive_spaces::space::{Space, SpaceHandle, SpaceServer};

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hold_ms = flag(&args, "--hold-ms");
    let n_shards = flag(&args, "--shards").unwrap_or(4) as usize;
    let n_workers = flag(&args, "--workers").unwrap_or(3) as usize;

    // Host the shards: one space + one TCP server each, ephemeral ports.
    let mut shards: Vec<(SpaceHandle, SpaceServer)> = Vec::new();
    for i in 0..n_shards {
        let space = Space::new(format!("shard-{i}"));
        let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").expect("bind shard");
        println!("shard-{i} serving at {}", server.addr());
        shards.push((space, server));
    }
    let shard_list: Vec<String> = shards.iter().map(|(_, s)| s.addr().to_string()).collect();

    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config).shards(shard_list).build();
    let grid = cluster.grid().expect("grid configured").clone();
    println!(
        "grid: {} shards, {} healthy",
        grid.shard_count(),
        grid.healthy_count()
    );

    let mut app = PricingApp::new(OptionSpec::paper_default(), 20, 50);
    cluster.install(&app);
    for i in 0..n_workers {
        cluster.add_worker(NodeSpec::new(format!("gw-{i}"), 800, 256));
    }

    let report = cluster.run(&mut app);
    println!();
    println!(
        "run complete: {}/{} results in {:.1} ms",
        report.results_collected, report.times.tasks, report.times.parallel_ms
    );
    let parallel = app.result();
    let sequential = price_sequential(&PricingApp::new(OptionSpec::paper_default(), 20, 50));
    assert_eq!(parallel, sequential, "grid run is bit-identical");
    println!(
        "price bracket: high {:.4} / low {:.4} (identical to sequential)",
        parallel.high, parallel.low
    );

    // Per-shard traffic: hash routing spread the job over every shard.
    println!("shard traffic:");
    for (i, (space, server)) in shards.iter().enumerate() {
        let stats = space.stats();
        println!(
            "  shard-{i} {}  writes {:>4}  takes {:>4}",
            server.addr(),
            stats.writes,
            stats.takes
        );
    }

    if let Some(ms) = hold_ms {
        match cluster.observe_addr() {
            Some(addr) => println!("holding for {ms} ms; observability endpoint at http://{addr}"),
            None => println!("holding for {ms} ms (set ACC_OBSERVE=127.0.0.1:0 for an endpoint)"),
        }
        std::thread::sleep(Duration::from_millis(ms));
    }
    cluster.shutdown();
}
