//! The `wal.*` / `snapshot.*` / `recovery.*` telemetry series, registered
//! in the workspace-wide [`acc_telemetry::registry`] like every other
//! layer's series.

use std::sync::{Arc, OnceLock};

use acc_telemetry::{registry, Counter, Histogram};

pub(crate) struct DurabilitySeries {
    pub appends: Arc<Counter>,
    pub append_bytes: Arc<Counter>,
    /// Full append latency including any policy-driven fsync (timing-gated).
    pub append_us: Arc<Histogram>,
    pub fsyncs: Arc<Counter>,
    /// fsync syscall latency (timing-gated).
    pub fsync_us: Arc<Histogram>,
    pub rotations: Arc<Counter>,
    pub snapshot_writes: Arc<Counter>,
    pub snapshot_bytes: Arc<Counter>,
    /// Snapshot write+rename latency (timing-gated).
    pub snapshot_us: Arc<Histogram>,
    pub compacted_segments: Arc<Counter>,
    pub replay_records: Arc<Counter>,
    /// Bytes the recovery scan dropped as a torn tail.
    pub torn_bytes: Arc<Counter>,
}

pub(crate) fn series() -> &'static DurabilitySeries {
    static SERIES: OnceLock<DurabilitySeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        DurabilitySeries {
            appends: r.counter("wal.append.count"),
            append_bytes: r.counter("wal.append.bytes"),
            append_us: r.histogram("wal.append.us"),
            fsyncs: r.counter("wal.fsync.count"),
            fsync_us: r.histogram("wal.fsync.us"),
            rotations: r.counter("wal.segment.rotations"),
            snapshot_writes: r.counter("snapshot.write.count"),
            snapshot_bytes: r.counter("snapshot.write.bytes"),
            snapshot_us: r.histogram("snapshot.write.us"),
            compacted_segments: r.counter("snapshot.compacted_segments"),
            replay_records: r.counter("recovery.wal.records"),
            torn_bytes: r.counter("recovery.wal.torn_bytes"),
        }
    })
}
