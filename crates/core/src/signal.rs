//! Signals and the worker state machine (paper Fig. 5).
//!
//! The rule-base defines four signals — Start, Stop, Pause, Resume — and
//! three worker states — Running, Paused, Stopped. The transition function
//! here is pure and shared verbatim by the thread runtime and the
//! discrete-event simulator, so both enforce identical semantics:
//!
//! * `Stopped --Start--> Running` (requires remote class loading);
//! * `Running --Stop--> Stopped` (worker thread killed; classes must be
//!   reloaded on the next Start);
//! * `Running --Pause--> Paused` (classes stay in memory);
//! * `Paused --Resume--> Running` (no class-loading cost — the point of the
//!   Paused state);
//! * `Paused --Stop--> Stopped` (a transient load increase turned out to be
//!   sustained).

use std::fmt;

/// A management signal sent to a worker by the network management module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Begin participating: load classes remotely, then compute.
    Start,
    /// Back off permanently: finish the current task, clean up, exit.
    Stop,
    /// Back off temporarily: finish the current task, keep state in memory.
    Pause,
    /// Load has dropped again: resume the interrupted worker thread.
    Resume,
}

impl Signal {
    /// Wire code for the rule-base protocol.
    pub fn code(self) -> u8 {
        match self {
            Signal::Start => 1,
            Signal::Stop => 2,
            Signal::Pause => 3,
            Signal::Resume => 4,
        }
    }

    /// Inverse of [`Signal::code`].
    pub fn from_code(code: u8) -> Option<Signal> {
        match code {
            1 => Some(Signal::Start),
            2 => Some(Signal::Stop),
            3 => Some(Signal::Pause),
            4 => Some(Signal::Resume),
            _ => None,
        }
    }

    /// All signals, for exhaustive tests.
    pub fn all() -> [Signal; 4] {
        [Signal::Start, Signal::Stop, Signal::Pause, Signal::Resume]
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Start => "Start",
            Signal::Stop => "Stop",
            Signal::Pause => "Pause",
            Signal::Resume => "Resume",
        };
        write!(f, "{s}")
    }
}

/// A worker's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkerState {
    /// Not participating; classes not loaded.
    Stopped,
    /// Computing tasks (or waiting for one).
    Running,
    /// Temporarily backed off; classes still loaded.
    Paused,
}

impl WorkerState {
    /// The transition function of Fig. 5. Returns the successor state, or
    /// `None` when the signal is invalid in this state (e.g. Resume while
    /// Running) — invalid signals are ignored by workers.
    pub fn apply(self, signal: Signal) -> Option<WorkerState> {
        match (self, signal) {
            (WorkerState::Stopped, Signal::Start) => Some(WorkerState::Running),
            (WorkerState::Running, Signal::Stop) => Some(WorkerState::Stopped),
            (WorkerState::Running, Signal::Pause) => Some(WorkerState::Paused),
            (WorkerState::Paused, Signal::Resume) => Some(WorkerState::Running),
            (WorkerState::Paused, Signal::Stop) => Some(WorkerState::Stopped),
            _ => None,
        }
    }

    /// Does entering `self` via `signal` require remote class loading?
    /// Only a Start from Stopped does; Resume explicitly avoids it.
    pub fn requires_class_load(signal: Signal) -> bool {
        signal == Signal::Start
    }
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkerState::Stopped => "Stopped",
            WorkerState::Running => "Running",
            WorkerState::Paused => "Paused",
        };
        write!(f, "{s}")
    }
}

/// One entry of a worker's signal log: the data behind the paper's
/// "reaction time" plots (Figs. 9b/10b/11b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalLogEntry {
    /// The signal delivered.
    pub signal: Signal,
    /// Milliseconds (experiment clock) when the worker-side client received
    /// the signal — "Client Signal" time.
    pub client_signal_ms: u64,
    /// Milliseconds when the worker finished acting on it (task drained,
    /// state switched, classes loaded if needed) — "Worker Signal" time.
    pub worker_signal_ms: u64,
    /// State after the transition.
    pub new_state: WorkerState,
}

impl SignalLogEntry {
    /// The reaction latency the paper plots.
    pub fn reaction_ms(&self) -> u64 {
        self.worker_signal_ms.saturating_sub(self.client_signal_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_codes_roundtrip() {
        for s in Signal::all() {
            assert_eq!(Signal::from_code(s.code()), Some(s));
        }
        assert_eq!(Signal::from_code(0), None);
        assert_eq!(Signal::from_code(9), None);
    }

    #[test]
    fn paper_transitions_accepted() {
        assert_eq!(
            WorkerState::Stopped.apply(Signal::Start),
            Some(WorkerState::Running)
        );
        assert_eq!(
            WorkerState::Running.apply(Signal::Stop),
            Some(WorkerState::Stopped)
        );
        assert_eq!(
            WorkerState::Running.apply(Signal::Pause),
            Some(WorkerState::Paused)
        );
        assert_eq!(
            WorkerState::Paused.apply(Signal::Resume),
            Some(WorkerState::Running)
        );
        assert_eq!(
            WorkerState::Paused.apply(Signal::Stop),
            Some(WorkerState::Stopped)
        );
    }

    #[test]
    fn invalid_transitions_rejected() {
        assert_eq!(WorkerState::Stopped.apply(Signal::Stop), None);
        assert_eq!(WorkerState::Stopped.apply(Signal::Pause), None);
        assert_eq!(WorkerState::Stopped.apply(Signal::Resume), None);
        assert_eq!(WorkerState::Running.apply(Signal::Start), None);
        assert_eq!(WorkerState::Running.apply(Signal::Resume), None);
        assert_eq!(WorkerState::Paused.apply(Signal::Start), None);
        assert_eq!(WorkerState::Paused.apply(Signal::Pause), None);
    }

    #[test]
    fn only_start_loads_classes() {
        assert!(WorkerState::requires_class_load(Signal::Start));
        assert!(!WorkerState::requires_class_load(Signal::Resume));
        assert!(!WorkerState::requires_class_load(Signal::Pause));
        assert!(!WorkerState::requires_class_load(Signal::Stop));
    }

    #[test]
    fn reaction_time() {
        let e = SignalLogEntry {
            signal: Signal::Pause,
            client_signal_ms: 100,
            worker_signal_ms: 130,
            new_state: WorkerState::Paused,
        };
        assert_eq!(e.reaction_ms(), 30);
    }
}
