//! Render the benchmark scene in parallel on the adaptive cluster (paper
//! §5.1.2) and write the image as a PPM file.
//!
//! The 600×600 plane is rendered in 24 strip tasks of 25 scan lines. The
//! result is checked byte-for-byte against the sequential renderer.
//!
//! Run with: `cargo run --release --example ray_tracing`
//! (add an integer argument to change the image size, e.g. `-- 200`)

use std::time::Duration;

use adaptive_spaces::apps::raytrace::{benchmark_scene, render_sequential, RayTraceApp};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{ClusterBuilder, FrameworkConfig};

fn main() {
    // Full paper size is 600; default smaller so the example is snappy.
    let size: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(200);
    // Largest strip height ≤ size/8 that divides the image height, so any
    // size works (prime sizes fall back to 1-row strips).
    let strip = (1..=size.max(1) / 8 + 1)
        .rev()
        .find(|d| size % d == 0)
        .unwrap_or(1);

    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config).build();
    let mut app = RayTraceApp::new(benchmark_scene(), size, size, strip);
    println!(
        "rendering {size}x{size} in {} strips of {strip} scan lines",
        app.strips()
    );

    cluster.install(&app);
    for i in 0..4 {
        cluster.add_worker(NodeSpec::new(format!("render-{i}"), 800, 256));
    }
    let report = cluster.run(&mut app);
    let image = app.image().expect("all strips collected");

    // Byte-identical to the sequential baseline.
    let reference = render_sequential(&benchmark_scene(), size, size);
    assert_eq!(image.pixels, reference.pixels, "parallel == sequential");

    let path = std::env::temp_dir().join("adaptive_spaces_render.ppm");
    std::fs::write(&path, image.to_ppm()).expect("write PPM");
    println!("wrote {}", path.display());
    println!(
        "parallel time {:.1} ms, max worker time {:.1} ms, planning {:.1} ms",
        report.times.parallel_ms, report.times.max_worker_ms, report.times.task_planning_ms
    );
    for worker in cluster.workers() {
        println!("  {}: {} strips", worker.name(), worker.tasks_done());
    }
    cluster.shutdown();
}
