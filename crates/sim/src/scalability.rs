//! Experiment 1 — scalability analysis (paper §5.2.1, Figures 6–8).
//!
//! For each worker count, one simulated run reports the paper's four
//! series: Max Worker Time, Parallel Time, Task Planning Time and Task
//! Aggregation Time.

use crate::cluster::{simulate, SimConfig};
use crate::model::AppProfile;

/// One point of a scalability figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityRow {
    /// Number of workers.
    pub workers: usize,
    /// Max Worker Time, ms.
    pub max_worker_ms: f64,
    /// Parallel Time, ms.
    pub parallel_ms: f64,
    /// Task Planning Time, ms.
    pub task_planning_ms: f64,
    /// Task Aggregation Time, ms.
    pub task_aggregation_ms: f64,
}

/// Sweeps worker counts `1..=max_workers` (the full testbed when `None`).
pub fn run_scalability(profile: &AppProfile, max_workers: Option<usize>) -> Vec<ScalabilityRow> {
    let cap = max_workers.unwrap_or(profile.testbed.worker_count());
    (1..=cap)
        .map(|n| {
            let out = simulate(SimConfig::new(profile.clone(), n));
            assert!(out.complete, "scalability runs must complete");
            ScalabilityRow {
                workers: n,
                max_worker_ms: out.times.max_worker_ms,
                parallel_ms: out.times.parallel_ms,
                task_planning_ms: out.times.task_planning_ms,
                task_aggregation_ms: out.times.task_aggregation_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_pricing_shape() {
        let rows = run_scalability(&AppProfile::option_pricing(), None);
        assert_eq!(rows.len(), 13);
        // Initial speedup: parallel time falls sharply to 4 workers.
        assert!(rows[3].parallel_ms < rows[0].parallel_ms / 2.5);
        // Beyond ~4 workers planning dominates and the curve flattens:
        // going 6 → 13 workers buys almost nothing.
        let gain_late = rows[5].parallel_ms / rows[12].parallel_ms;
        assert!(gain_late < 1.3, "late gain {gain_late}");
        // Task planning is constant and dominates parallel time late.
        assert!(rows[12].task_planning_ms > 0.6 * rows[12].parallel_ms);
        // Max worker time decreases with workers until the master-bound
        // regime, where workers idle-wait for the planner and spans
        // flatten near the planning time.
        assert!(rows[12].max_worker_ms < rows[0].max_worker_ms / 3.0);
        assert!(rows[3].max_worker_ms < rows[0].max_worker_ms / 2.5);
    }

    #[test]
    fn fig7_raytracing_shape() {
        let rows = run_scalability(&AppProfile::ray_tracing(), None);
        assert_eq!(rows.len(), 5);
        // Near-linear scaling: 5 workers ≥ 3.5× speedup.
        let speedup = rows[0].parallel_ms / rows[4].parallel_ms;
        assert!(speedup > 3.5, "speedup {speedup}");
        // Parallel time is dominated by max worker time at every point.
        for row in &rows {
            assert!(row.max_worker_ms > 0.75 * row.parallel_ms, "{row:?}");
        }
        // Task planning flat ≈500 ms across the sweep.
        for row in &rows {
            assert!((row.task_planning_ms - 500.0).abs() < 100.0);
        }
        // Aggregation follows max worker time (master waits for the last
        // task).
        for row in &rows {
            assert!(row.task_aggregation_ms > 0.7 * row.max_worker_ms);
        }
    }

    #[test]
    fn fig8_prefetch_shape() {
        let rows = run_scalability(&AppProfile::prefetch(), None);
        assert_eq!(rows.len(), 5);
        // Scales up to ~4 workers, then flattens.
        assert!(rows[3].parallel_ms <= rows[0].parallel_ms);
        let late_gain = rows[3].parallel_ms / rows[4].parallel_ms;
        assert!(late_gain < 1.1, "late gain {late_gain}");
        // Aggregation dominates parallel time.
        for row in &rows[2..] {
            assert!(
                row.task_aggregation_ms > 0.5 * row.parallel_ms,
                "aggregation must dominate: {row:?}"
            );
        }
        // Planning is small.
        assert!(rows[0].task_planning_ms < 200.0);
    }
}
