//! Acceptance test for the cluster federation plane: a master and two
//! remote workers, heartbeats flowing through the space, `/cluster`
//! reporting both workers with history and compute histograms, and an
//! artificially slowed worker flagged as a straggler and excluded through
//! the monitor's `DecisionInput` hook.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, Signal, TaskEntry, TaskExecutor,
    TaskSpec,
};
use adaptive_spaces::space::Payload;

/// Adds one to each input. The executor sleeps per task, much longer on
/// any worker whose thread name marks it slow — worker threads are named
/// `acc-worker-<node>`, so the node name selects the behaviour and the
/// same executor binary serves both workers, like a degraded machine
/// running identical code.
struct SkewedApp {
    n: u64,
    total: u64,
}

impl Application for SkewedApp {
    fn job_name(&self) -> String {
        "skewed".into()
    }
    fn bundle_name(&self) -> String {
        "skewed-bundle".into()
    }
    fn bundle_kb(&self) -> usize {
        1
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        struct Exec;
        impl TaskExecutor for Exec {
            fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                let slow = std::thread::current()
                    .name()
                    .is_some_and(|n| n.contains("slow"));
                std::thread::sleep(Duration::from_millis(if slow { 60 } else { 8 }));
                let x: u64 = task.input()?;
                Ok((x + 1).to_bytes())
            }
        }
        Arc::new(Exec)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        Ok(())
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

/// Pulls `"key":<int>` out of the worker's JSON object — enough of a
/// parser for the fields this test asserts on.
fn json_int_after(json: &str, anchor: &str, key: &str) -> Option<i64> {
    let at = json.find(anchor)?;
    let rest = &json[at..];
    let kat = rest.find(&format!("\"{key}\":"))?;
    let num = &rest[kat + key.len() + 3..];
    let end = num
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

#[test]
fn federation_reports_both_workers_and_excludes_the_straggler() {
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        task_poll_timeout: Duration::from_millis(10),
        class_load_base: Duration::from_millis(1),
        class_load_per_kb: Duration::ZERO,
        task_prefetch: 1,
        metrics_interval: Duration::from_millis(25),
        // The slow worker computes at ~7.5x the fast one, so 3x the
        // median flags it with plenty of margin — while a scheduling
        // hiccup on the fast worker (p99 a few ms over its own median)
        // stays well under the threshold and can't stop both workers.
        straggler_k: 3.0,
        straggler_min_samples: 3,
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config)
        .space_name("observed-space")
        .observe("127.0.0.1:0")
        .build();
    let addr = cluster.observe_addr().expect("observer endpoint mounted");
    let mut app = SkewedApp { n: 150, total: 0 };
    cluster.install(&app);
    let fast = cluster
        .add_remote_worker(NodeSpec::new("fast-0", 800, 256))
        .expect("fast worker connects");
    let slow = cluster
        .add_remote_worker(NodeSpec::new("slow-1", 800, 256))
        .expect("slow worker connects");

    // Heartbeats federate through the space: both workers must show up in
    // /cluster.json with at least 3 history samples each, before any task
    // has even run.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let json = http_get(addr, "/cluster.json");
        let fast_hist = json_int_after(&json, "\"fast-0\"", "history_samples").unwrap_or(0);
        let slow_hist = json_int_after(&json, "\"slow-1\"", "history_samples").unwrap_or(0);
        if fast_hist >= 3 && slow_hist >= 3 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "workers never federated 3 heartbeats: {json}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let report = cluster.run(&mut app);
    assert!(report.complete, "failures: {:?}", report.failures);
    assert_eq!(report.results_collected, 150);
    assert_eq!(app.total, (1..=150u64).sum::<u64>());

    // Task-level attribution: both workers carry a non-empty compute
    // histogram in the federation view.
    let json = http_get(addr, "/cluster.json");
    for worker in ["fast-0", "slow-1"] {
        let count = json_int_after(&json, &format!("\"{worker}\""), "count").unwrap_or(0);
        assert!(count > 0, "{worker} has no compute samples: {json}");
    }
    // The text rendering covers both workers too.
    let text = http_get(addr, "/cluster");
    assert!(text.contains("fast-0") && text.contains("slow-1"), "{text}");
    assert!(text.contains("space:observed-space"), "{text}");

    // The slowed worker's compute p99 is far beyond 2x the cluster
    // median: it must be flagged.
    let observer = cluster.cluster_observer();
    assert_eq!(observer.stragglers(), vec!["slow-1".to_owned()]);
    assert!(json.contains("\"stragglers\":[\"slow-1\"]"), "{json}");

    // ... and excluded through the DecisionInput hook: the monitor keeps
    // polling, reads the straggler's load as saturated, and the inference
    // engine orders a Stop with the straggler flag on the decision.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let excluded = cluster
            .monitor()
            .decisions()
            .iter()
            .any(|d| d.worker == slow && d.straggler && d.signal == Some(Signal::Stop));
        if excluded {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "straggler was never stopped: {:?}",
            cluster.monitor().decisions()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // The fast worker is never flagged.
    assert!(cluster
        .monitor()
        .decisions()
        .iter()
        .all(|d| d.worker != fast || !d.straggler));

    cluster.shutdown();
}
