//! Space operation counters, folded into the workspace telemetry registry.
//!
//! Every space keeps its own [`SpaceStats`] atomics (so tests and callers
//! can assert on one space's traffic via [`SpaceStats::snapshot`]), and
//! every recording *also* bumps the process-wide series in
//! [`acc_telemetry::registry`] under `space.*` names — the unified view
//! the rest of the stack (bench harness, examples, Prometheus-style
//! exposition) reads. Latency histograms live only in the registry:
//! latencies are a property of the deployment, not of one space handle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use acc_telemetry::{registry, Counter, Histogram};

/// The global `space.*` series every [`SpaceStats`] records into.
pub(crate) struct SpaceSeries {
    writes: Arc<Counter>,
    reads: Arc<Counter>,
    takes: Arc<Counter>,
    misses: Arc<Counter>,
    blocked_waits: Arc<Counter>,
    expired: Arc<Counter>,
    txns_committed: Arc<Counter>,
    txns_aborted: Arc<Counter>,
    bytes_written: Arc<Counter>,
    shard_contention: Arc<Counter>,
    index_hits: Arc<Counter>,
    index_misses: Arc<Counter>,
    /// Events delivered to notify listeners.
    pub events_dispatched: Arc<Counter>,
    /// Full write-op latency (timing-gated).
    pub write_us: Arc<Histogram>,
    /// Full read-op latency, including any blocking (timing-gated).
    pub read_us: Arc<Histogram>,
    /// Full take-op latency, including any blocking (timing-gated).
    pub take_us: Arc<Histogram>,
    /// Time read ops spent parked waiting for a match (always recorded).
    pub read_wait_us: Arc<Histogram>,
    /// Time take ops spent parked waiting for a match (always recorded).
    pub take_wait_us: Arc<Histogram>,
    /// Transaction commit/abort fix-up latency (timing-gated).
    pub txn_finish_us: Arc<Histogram>,
}

/// The lazily registered global series (one set per process).
pub(crate) fn series() -> &'static SpaceSeries {
    static SERIES: OnceLock<SpaceSeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        SpaceSeries {
            writes: r.counter("space.write.count"),
            reads: r.counter("space.read.count"),
            takes: r.counter("space.take.count"),
            misses: r.counter("space.miss.count"),
            blocked_waits: r.counter("space.blocked_waits"),
            expired: r.counter("space.expired.count"),
            txns_committed: r.counter("space.txn.commit"),
            txns_aborted: r.counter("space.txn.abort"),
            bytes_written: r.counter("space.bytes_written"),
            shard_contention: r.counter("space.shard_contention"),
            index_hits: r.counter("space.index.hits"),
            index_misses: r.counter("space.index.misses"),
            events_dispatched: r.counter("space.events.dispatched"),
            write_us: r.histogram("space.write.us"),
            read_us: r.histogram("space.read.us"),
            take_us: r.histogram("space.take.us"),
            read_wait_us: r.histogram("space.read.wait_us"),
            take_wait_us: r.histogram("space.take.wait_us"),
            txn_finish_us: r.histogram("space.txn.finish_us"),
        }
    })
}

/// Monotone counters describing traffic through a space. All methods use
/// relaxed atomics: the counters are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct SpaceStats {
    writes: AtomicU64,
    reads: AtomicU64,
    takes: AtomicU64,
    misses: AtomicU64,
    blocked_waits: AtomicU64,
    expired: AtomicU64,
    txns_committed: AtomicU64,
    txns_aborted: AtomicU64,
    bytes_written: AtomicU64,
    shard_contention: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
}

/// A point-in-time copy of [`SpaceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Entries written (including transactional writes at commit time).
    pub writes: u64,
    /// Successful non-destructive reads.
    pub reads: u64,
    /// Successful takes.
    pub takes: u64,
    /// Read/take attempts that returned empty (timeout or if-exists miss).
    pub misses: u64,
    /// Number of times an operation blocked waiting for a match.
    pub blocked_waits: u64,
    /// Entries reclaimed by lease expiry.
    pub expired: u64,
    /// Transactions committed.
    pub txns_committed: u64,
    /// Transactions aborted.
    pub txns_aborted: u64,
    /// Total approximate bytes written into the space.
    pub bytes_written: u64,
    /// Shard lock acquisitions that found the lock already held.
    pub shard_contention: u64,
    /// Match attempts answered through the per-field exact-match index.
    pub index_hits: u64,
    /// Match attempts that had to fall back to a linear shard scan.
    pub index_misses: u64,
}

#[inline]
fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl SpaceStats {
    /// Records one write of `bytes` approximate payload bytes.
    #[inline]
    pub(crate) fn record_write(&self, bytes: u64) {
        bump(&self.writes);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        let s = series();
        s.writes.inc();
        s.bytes_written.add(bytes);
    }

    /// Records one successful non-destructive read.
    #[inline]
    pub(crate) fn record_read(&self) {
        bump(&self.reads);
        series().reads.inc();
    }

    /// Records one successful take.
    #[inline]
    pub(crate) fn record_take(&self) {
        bump(&self.takes);
        series().takes.inc();
    }

    /// Records one empty read/take attempt.
    #[inline]
    pub(crate) fn record_miss(&self) {
        bump(&self.misses);
        series().misses.inc();
    }

    /// Records one operation blocking for a match.
    #[inline]
    pub(crate) fn record_blocked_wait(&self) {
        bump(&self.blocked_waits);
        series().blocked_waits.inc();
    }

    /// Records `n` entries reclaimed by lease expiry.
    #[inline]
    pub(crate) fn record_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
        series().expired.add(n);
    }

    /// Records a transaction finishing.
    #[inline]
    pub(crate) fn record_txn_finished(&self, commit: bool) {
        if commit {
            bump(&self.txns_committed);
            series().txns_committed.inc();
        } else {
            bump(&self.txns_aborted);
            series().txns_aborted.inc();
        }
    }

    /// Records a contended shard-lock acquisition.
    #[inline]
    pub(crate) fn record_contention(&self) {
        bump(&self.shard_contention);
        series().shard_contention.inc();
    }

    /// Records whether a match attempt was answered by the field index.
    #[inline]
    pub(crate) fn record_index_probe(&self, hit: bool) {
        if hit {
            bump(&self.index_hits);
            series().index_hits.inc();
        } else {
            bump(&self.index_misses);
            series().index_misses.inc();
        }
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            takes: self.takes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            blocked_waits: self.blocked_waits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            txns_committed: self.txns_committed.load(Ordering::Relaxed),
            txns_aborted: self.txns_aborted.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            shard_contention: self.shard_contention.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_bump() {
        let s = SpaceStats::default();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        s.record_write(128);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 128);
        assert_eq!(snap.takes, 0);
    }

    #[test]
    fn recordings_fold_into_global_registry() {
        let before = acc_telemetry::registry().snapshot();
        let s = SpaceStats::default();
        s.record_take();
        s.record_index_probe(true);
        let after = acc_telemetry::registry().snapshot();
        assert!(
            after.counters["space.take.count"]
                > *before.counters.get("space.take.count").unwrap_or(&0)
        );
        assert!(
            after.counters["space.index.hits"]
                > *before.counters.get("space.index.hits").unwrap_or(&0)
        );
    }
}
