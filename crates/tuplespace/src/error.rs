//! Error types for space operations.

use std::fmt;

/// Result alias for space operations.
pub type SpaceResult<T> = Result<T, SpaceError>;

/// Errors returned by [`crate::Space`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// The space has been closed; all blocked operations are woken with this
    /// error so workers can shut down cleanly.
    Closed,
    /// The transaction has already committed or aborted.
    TxnInactive,
    /// The referenced entry does not exist (already taken, cancelled, or its
    /// lease expired).
    NoSuchEntry,
    /// A lease operation referenced an expired lease.
    LeaseExpired,
    /// The referenced entry exists but is locked by an active transaction
    /// (pending write, taken, or read-locked) and cannot be cancelled.
    EntryLocked,
    /// The event registration cookie is unknown.
    NoSuchRegistration,
    /// A durability operation (journal, snapshot, recovery) failed at the
    /// storage layer; the message carries the underlying I/O error.
    Storage(String),
    /// A remote operation failed at the transport layer (connection reset,
    /// timeout, refused reconnect). Unlike [`SpaceError::Closed`] this does
    /// **not** mean the space shut down — the server may still be alive and
    /// a later call (which reconnects) can succeed. Callers in retry loops
    /// should treat this as transient.
    Transport(String),
    /// The remote peer answered with a frame that decodes but does not
    /// match the request (wrong response variant, bad correlation id). This
    /// indicates a protocol bug or a hostile peer, never a clean shutdown.
    Protocol(String),
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::Closed => write!(f, "space is closed"),
            SpaceError::TxnInactive => write!(f, "transaction is no longer active"),
            SpaceError::NoSuchEntry => write!(f, "no such entry"),
            SpaceError::LeaseExpired => write!(f, "lease has expired"),
            SpaceError::EntryLocked => write!(f, "entry is locked by a transaction"),
            SpaceError::NoSuchRegistration => write!(f, "no such event registration"),
            SpaceError::Storage(msg) => write!(f, "storage error: {msg}"),
            SpaceError::Transport(msg) => write!(f, "transport error: {msg}"),
            SpaceError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for SpaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(SpaceError::Closed.to_string(), "space is closed");
        assert_eq!(
            SpaceError::TxnInactive.to_string(),
            "transaction is no longer active"
        );
        assert_eq!(SpaceError::NoSuchEntry.to_string(), "no such entry");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SpaceError::Closed, SpaceError::Closed);
        assert_ne!(SpaceError::Closed, SpaceError::NoSuchEntry);
    }
}
