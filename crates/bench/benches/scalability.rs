//! Figures 6–8: the scalability sweeps, as Criterion benchmarks.
//!
//! Each benchmark simulates one full application run at a given worker
//! count; the Criterion estimate tracks the simulator's own cost while the
//! printed summary (run `repro -- fig6 fig7 fig8`) carries the
//! virtual-time series the paper plots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acc_sim::cluster::{simulate, SimConfig};
use acc_sim::AppProfile;

fn bench_profile(c: &mut Criterion, profile: AppProfile, figure: &str) {
    let mut group = c.benchmark_group(format!("{figure}/{}", profile.name));
    let counts: Vec<usize> = match profile.testbed.worker_count() {
        13 => vec![1, 2, 4, 8, 13],
        n => (1..=n).collect(),
    };
    for n in counts {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let out = simulate(SimConfig::new(profile.clone(), n));
                assert!(out.complete);
                out.times.parallel_ms
            });
        });
    }
    group.finish();
}

fn fig6(c: &mut Criterion) {
    bench_profile(c, AppProfile::option_pricing(), "fig6");
}

fn fig7(c: &mut Criterion) {
    bench_profile(c, AppProfile::ray_tracing(), "fig7");
}

fn fig8(c: &mut Criterion) {
    bench_profile(c, AppProfile::prefetch(), "fig8");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig6, fig7, fig8);
criterion_main!(benches);
