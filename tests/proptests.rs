//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use adaptive_spaces::apps::prefetch::{LinkGraph, LruCache, PageRank, StochasticMatrix};
use adaptive_spaces::framework::{Signal, WorkerState};
use adaptive_spaces::snmp::codec::{decode_message, encode_message};
use adaptive_spaces::snmp::{ErrorStatus, Message, Oid, Pdu, PduType, SnmpValue, VERSION_2C};
use adaptive_spaces::space::{
    decode_frame, Bytes, Lease, NameInterner, Payload, Space, Template, Tuple, Value, WalOptions,
    WireReader,
};

// ---------------------------------------------------------------------
// Tuple space: model-based conservation of entries.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write(i64),
    Take,
    TakeSpecific(i64),
    Read,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..20).prop_map(Op::Write),
        Just(Op::Take),
        (0i64..20).prop_map(Op::TakeSpecific),
        Just(Op::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn space_conserves_entries(ops in proptest::collection::vec(op_strategy(), 0..120)) {
        let space = Space::new("prop");
        // Model: multiset of ids currently in the space.
        let mut model: Vec<i64> = Vec::new();
        let all = Template::of_type("t");
        for op in ops {
            match op {
                Op::Write(id) => {
                    space.write(Tuple::build("t").field("id", id).done()).unwrap();
                    model.push(id);
                }
                Op::Take => {
                    let got = space.take_if_exists(&all).unwrap();
                    match got {
                        Some(tuple) => {
                            let id = tuple.get_int("id").unwrap();
                            let pos = model.iter().position(|&m| m == id);
                            prop_assert!(pos.is_some(), "took an id not in the model");
                            model.remove(pos.unwrap());
                        }
                        None => prop_assert!(model.is_empty()),
                    }
                }
                Op::TakeSpecific(id) => {
                    let tmpl = Template::build("t").eq("id", id).done();
                    let got = space.take_if_exists(&tmpl).unwrap();
                    match got {
                        Some(tuple) => {
                            prop_assert_eq!(tuple.get_int("id"), Some(id));
                            let pos = model.iter().position(|&m| m == id);
                            prop_assert!(pos.is_some());
                            model.remove(pos.unwrap());
                        }
                        None => prop_assert!(!model.contains(&id)),
                    }
                }
                Op::Read => {
                    let got = space.read_if_exists(&all).unwrap();
                    prop_assert_eq!(got.is_some(), !model.is_empty());
                }
            }
            prop_assert_eq!(space.len(), model.len());
        }
    }

    #[test]
    fn txn_abort_is_a_no_op(
        ids in proptest::collection::vec(0i64..50, 1..30),
        take_count in 0usize..10,
        write_count in 0usize..10,
    ) {
        let space = Space::new("prop");
        for &id in &ids {
            space.write(Tuple::build("t").field("id", id).done()).unwrap();
        }
        let before: usize = space.len();
        let txn = space.txn().unwrap();
        for _ in 0..take_count {
            let _ = txn.take_if_exists(&Template::of_type("t")).unwrap();
        }
        for i in 0..write_count {
            txn.write(Tuple::build("t").field("id", 1000 + i as i64).done()).unwrap();
        }
        txn.abort().unwrap();
        prop_assert_eq!(space.len(), before, "abort must restore everything");
    }

    #[test]
    fn template_from_subset_always_matches(
        fields in proptest::collection::btree_map("[a-z]{1,6}", -100i64..100, 1..8),
        subset_mask in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let mut builder = Tuple::build("t");
        for (name, value) in &fields {
            builder = builder.field(name.clone(), *value);
        }
        let tuple = builder.done();
        let mut tmpl = Template::build("t");
        for (i, (name, value)) in fields.iter().enumerate() {
            if *subset_mask.get(i).unwrap_or(&false) {
                tmpl = tmpl.eq(name.clone(), *value);
            }
        }
        prop_assert!(tmpl.done().matches(&tuple));
    }

    #[test]
    fn template_with_extra_field_never_matches(
        fields in proptest::collection::btree_map("[a-z]{1,6}", -100i64..100, 1..8),
    ) {
        let mut builder = Tuple::build("t");
        for (name, value) in &fields {
            builder = builder.field(name.clone(), *value);
        }
        let tuple = builder.done();
        let tmpl = Template::build("t").eq("ZZ_not_a_field", 1i64).done();
        prop_assert!(!tmpl.matches(&tuple));
    }
}

// ---------------------------------------------------------------------
// Durability: snapshot round-trip and crash at a random kill point.
// ---------------------------------------------------------------------

fn prop_dir(label: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("acc-prop-{}-{label}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn leaf_value_strategy() -> impl Strategy<Value = Value> {
    // Arbitrary float bit patterns are fine: Value compares bitwise, so
    // even NaN payloads must round-trip exactly.
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::from),
    ]
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        leaf_value_strategy(),
        proptest::collection::vec(leaf_value_strategy(), 0..4).prop_map(Value::List),
    ]
}

fn tuple_strategy() -> impl Strategy<Value = Tuple> {
    proptest::collection::btree_map("[a-z]{1,8}", value_strategy(), 1..6).prop_map(|fields| {
        let mut builder = Tuple::build("prop");
        for (name, value) in fields {
            builder = builder.field(name, value);
        }
        builder.done()
    })
}

/// `None` = forever; `Some(ms)` = a lease comfortably beyond test runtime.
fn lease_strategy() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![Just(None), (60_000u64..600_000).prop_map(Some)]
}

fn entry_strategy() -> impl Strategy<Value = (Tuple, Option<u64>)> {
    lease_strategy().prop_flat_map(|lease| tuple_strategy().prop_map(move |t| (t, lease)))
}

#[derive(Debug, Clone)]
enum DurableOp {
    Write(i64),
    Take,
    TakeSpecific(i64),
    TxnSwap(i64),
    TxnAbort(i64),
}

fn durable_op_strategy() -> impl Strategy<Value = DurableOp> {
    prop_oneof![
        (0i64..20).prop_map(DurableOp::Write),
        Just(DurableOp::Take),
        (0i64..20).prop_map(DurableOp::TakeSpecific),
        (100i64..120).prop_map(DurableOp::TxnSwap),
        (200i64..220).prop_map(DurableOp::TxnAbort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Arbitrary tuples under arbitrary leases survive snapshot encode →
    // compact → decode byte-identically.
    #[test]
    fn snapshot_roundtrips_arbitrary_tuples(
        entries in proptest::collection::vec(entry_strategy(), 1..16),
    ) {
        let dir = prop_dir("snap");
        let live = {
            let space = Space::durable("prop", &dir, WalOptions::default()).unwrap();
            for (tuple, lease_ms) in &entries {
                let lease = match lease_ms {
                    None => Lease::Forever,
                    Some(ms) => Lease::for_millis(*ms),
                };
                space.write_leased(tuple.clone(), lease).unwrap();
            }
            // Checkpoint so recovery exercises the snapshot codec (the WAL
            // tail past the cut is empty).
            space.checkpoint().unwrap();
            space.dump()
        };
        let recovered = Space::recover(&dir).unwrap().dump();
        prop_assert_eq!(live, recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Run a random op sequence, crash at a random kill point (log
    // truncated at an op boundary or mid-frame), recover: the replayed
    // state equals the live state recorded at that boundary.
    #[test]
    fn crash_at_random_kill_point_recovers_a_recorded_state(
        ops in proptest::collection::vec(durable_op_strategy(), 1..40),
        kill in any::<usize>(),
        torn_extra in 0u64..8,
    ) {
        let dir = prop_dir("crash");
        let all = Template::of_type("t");
        let mut boundaries: Vec<(u64, Vec<(u64, Tuple)>)> = Vec::new();
        {
            let space = Space::durable("prop", &dir, WalOptions::default()).unwrap();
            let wal_len = || {
                std::fs::read_dir(&dir)
                    .unwrap()
                    .map(|e| e.unwrap())
                    .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
                    .map(|e| e.metadata().unwrap().len())
                    .sum::<u64>()
            };
            boundaries.push((wal_len(), space.dump()));
            for op in &ops {
                match op {
                    DurableOp::Write(id) => {
                        space.write(Tuple::build("t").field("id", *id).done()).unwrap();
                    }
                    DurableOp::Take => {
                        let _ = space.take_if_exists(&all).unwrap();
                    }
                    DurableOp::TakeSpecific(id) => {
                        let tmpl = Template::build("t").eq("id", *id).done();
                        let _ = space.take_if_exists(&tmpl).unwrap();
                    }
                    DurableOp::TxnSwap(id) => {
                        let txn = space.txn().unwrap();
                        txn.write(Tuple::build("t").field("id", *id).done()).unwrap();
                        let _ = txn.take_if_exists(&all).unwrap();
                        txn.commit().unwrap();
                    }
                    DurableOp::TxnAbort(id) => {
                        let txn = space.txn().unwrap();
                        txn.write(Tuple::build("t").field("id", *id).done()).unwrap();
                        let _ = txn.take_if_exists(&all).unwrap();
                        txn.abort().unwrap();
                    }
                }
                boundaries.push((wal_len(), space.dump()));
            }
        }
        let (len, expected) = &boundaries[kill % boundaries.len()];
        let kill_dir = prop_dir("crash-kill");
        std::fs::create_dir_all(&kill_dir).unwrap();
        let mut segments = Vec::new();
        for entry in std::fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            let copied = kill_dir.join(entry.file_name());
            std::fs::copy(entry.path(), &copied).unwrap();
            if entry.file_name().to_string_lossy().starts_with("wal-") {
                segments.push(copied);
            }
        }
        prop_assert_eq!(segments.len(), 1, "ops stay within one segment");
        // Truncate to the boundary plus up to 7 torn bytes. Every frame is
        // at least 8 bytes (the header alone), so the extra bytes can never
        // amount to a complete later frame — recovery must round down to
        // exactly this boundary's state.
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&segments[0])
            .unwrap();
        let cur = file.metadata().unwrap().len();
        file.set_len((*len + torn_extra).min(cur)).unwrap();
        drop(file);
        let recovered = Space::recover(&kill_dir).unwrap().dump();
        prop_assert_eq!(&recovered, expected, "kill at log length {}", len);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&kill_dir);
    }
}

// ---------------------------------------------------------------------
// SNMP codec.
// ---------------------------------------------------------------------

fn snmp_value_strategy() -> impl Strategy<Value = SnmpValue> {
    prop_oneof![
        any::<i64>().prop_map(SnmpValue::Int),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(SnmpValue::Str),
        proptest::collection::vec(0u32..100_000, 2..8).prop_map(|mut arcs| {
            // First two arcs are constrained by BER encoding.
            arcs[0] %= 3;
            arcs[1] %= 40;
            SnmpValue::Oid(Oid::from_arcs(arcs))
        }),
        Just(SnmpValue::Null),
        any::<u64>().prop_map(SnmpValue::Counter),
        any::<u64>().prop_map(SnmpValue::Gauge),
        any::<u64>().prop_map(SnmpValue::TimeTicks),
        Just(SnmpValue::NoSuchObject),
        Just(SnmpValue::EndOfMibView),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn snmp_messages_roundtrip(
        request_id in any::<i64>(),
        community in "[a-zA-Z0-9]{0,16}",
        values in proptest::collection::vec(snmp_value_strategy(), 0..6),
    ) {
        let msg = Message {
            version: VERSION_2C,
            community,
            pdu_type: PduType::Response,
            pdu: Pdu {
                request_id,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                varbinds: values
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (Oid::from_arcs(vec![1, 3, 6, 1, i as u32 + 1]), v))
                    .collect(),
            },
        };
        let bytes = encode_message(&msg);
        prop_assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn snmp_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_message(&bytes);
    }
}

// ---------------------------------------------------------------------
// Worker state machine.
// ---------------------------------------------------------------------

fn signal_strategy() -> impl Strategy<Value = Signal> {
    prop_oneof![
        Just(Signal::Start),
        Just(Signal::Stop),
        Just(Signal::Pause),
        Just(Signal::Resume),
    ]
}

proptest! {
    #[test]
    fn state_machine_never_reaches_undefined_states(
        signals in proptest::collection::vec(signal_strategy(), 0..64),
    ) {
        let mut state = WorkerState::Stopped;
        let mut loaded = false;
        for signal in signals {
            if let Some(next) = state.apply(signal) {
                // Invariants of Fig. 5.
                match signal {
                    Signal::Start => {
                        prop_assert_eq!(state, WorkerState::Stopped);
                        prop_assert_eq!(next, WorkerState::Running);
                        loaded = true;
                    }
                    Signal::Stop => {
                        prop_assert_eq!(next, WorkerState::Stopped);
                        loaded = false;
                    }
                    Signal::Pause => {
                        prop_assert_eq!(state, WorkerState::Running);
                        prop_assert_eq!(next, WorkerState::Paused);
                        prop_assert!(loaded, "paused implies classes loaded");
                    }
                    Signal::Resume => {
                        prop_assert_eq!(state, WorkerState::Paused);
                        prop_assert_eq!(next, WorkerState::Running);
                        prop_assert!(loaded, "resume must not need class loading");
                    }
                }
                state = next;
            }
        }
        // Whatever happened, Running/Paused imply loaded classes.
        if state != WorkerState::Stopped {
            prop_assert!(loaded);
        }
    }
}

// ---------------------------------------------------------------------
// PageRank and LRU cache invariants.
// ---------------------------------------------------------------------

fn graph_strategy() -> impl Strategy<Value = LinkGraph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(0u32..n as u32, 0..6), n).prop_map(
            move |mut successors| {
                for (j, succ) in successors.iter_mut().enumerate() {
                    succ.retain(|&s| s as usize != j);
                    succ.sort_unstable();
                    succ.dedup();
                }
                LinkGraph { n, successors }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pagerank_is_a_probability_distribution(graph in graph_strategy()) {
        let matrix = StochasticMatrix::from_graph(&graph);
        prop_assert!(matrix.is_column_stochastic(1e-9));
        let (ranks, iters) = PageRank::default().compute(&matrix);
        prop_assert!(iters >= 1);
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(ranks.iter().all(|&r| r > 0.0 && r < 1.0 + 1e-9));
    }

    #[test]
    fn lru_never_exceeds_capacity(
        capacity in 1usize..16,
        requests in proptest::collection::vec(0u32..64, 0..200),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut total = 0u64;
        for page in requests {
            cache.request(page);
            total += 1;
            prop_assert!(cache.hits() + cache.misses() == total);
            // A just-requested page is always resident.
            prop_assert!(cache.contains(page));
        }
        prop_assert!(cache.hit_rate() >= 0.0 && cache.hit_rate() <= 1.0);
    }

    #[test]
    fn lru_immediate_rerequest_hits(page in 0u32..100) {
        let mut cache = LruCache::new(4);
        cache.request(page);
        prop_assert!(cache.request(page), "second request must hit");
    }
}

// ---------------------------------------------------------------------
// TaskTiming wire format: round-trip plus hostile-input robustness.
// ---------------------------------------------------------------------

use adaptive_spaces::cluster::TaskTiming;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn task_timing_round_trips(
        wait_us in any::<u64>(),
        xfer_us in any::<u64>(),
        compute_us in any::<u64>(),
        write_us in any::<u64>(),
    ) {
        let timing = TaskTiming { wait_us, xfer_us, compute_us, write_us };
        let bytes = timing.to_bytes();
        prop_assert_eq!(bytes.len(), 33);
        prop_assert_eq!(TaskTiming::from_bytes(&bytes), Some(timing));
        // Trailing garbage is tolerated (forward compat): the known
        // prefix still decodes to the same value.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0xAB; 7]);
        prop_assert_eq!(TaskTiming::from_bytes(&padded), Some(timing));
    }

    #[test]
    fn task_timing_rejects_truncation(
        timing_words in proptest::collection::vec(any::<u64>(), 4),
        cut in 0usize..33,
    ) {
        let timing = TaskTiming {
            wait_us: timing_words[0],
            xfer_us: timing_words[1],
            compute_us: timing_words[2],
            write_us: timing_words[3],
        };
        let bytes = timing.to_bytes();
        prop_assert_eq!(TaskTiming::from_bytes(&bytes[..cut]), None);
    }

    #[test]
    fn task_timing_rejects_unknown_version(
        raw_version in 0u8..255,
        body in proptest::collection::vec(any::<u8>(), 32..64),
    ) {
        // Version byte 1 is the only one the decoder understands; any
        // other leading byte must be refused no matter the payload.
        let version = if raw_version == 1 { 255 } else { raw_version };
        let mut bytes = vec![version];
        bytes.extend_from_slice(&body);
        prop_assert_eq!(TaskTiming::from_bytes(&bytes), None);
    }

    #[test]
    fn task_timing_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let _ = TaskTiming::from_bytes(&bytes);
    }
}

// ---------------------------------------------------------------------
// Wire decode: the borrowed (zero-copy, interned) decoder must be
// observationally identical to the copying decoder it replaced.
// ---------------------------------------------------------------------

/// Values with genuinely nested lists (lists of lists), on top of the
/// leaf coverage — including non-UTF-8 blobs from `leaf_value_strategy`.
fn deep_value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        value_strategy(),
        proptest::collection::vec(value_strategy(), 0..3).prop_map(Value::List),
    ]
}

fn wire_tuple_strategy() -> impl Strategy<Value = Tuple> {
    (
        "[a-z.]{1,12}",
        proptest::collection::btree_map("[a-z_]{1,8}", deep_value_strategy(), 0..8),
    )
        .prop_map(|(ty, fields)| {
            let mut builder = Tuple::build(ty.as_str());
            for (name, value) in fields {
                builder = builder.field(name, value);
            }
            builder.done()
        })
}

/// The decoder as it was before the zero-copy rework: an owned `String`
/// per name, a copied `Vec<u8>` per blob, no interning. The reference
/// implementation the borrowed decoder is checked against.
fn legacy_copying_decode(frame: Bytes) -> Tuple {
    fn legacy_value(r: &mut WireReader) -> Value {
        match r.get_u8().unwrap() {
            0 => Value::Int(r.get_i64().unwrap()),
            1 => Value::Float(r.get_f64().unwrap()),
            2 => Value::Bool(r.get_bool().unwrap()),
            3 => Value::Str(r.get_str().unwrap()),
            4 => Value::from(r.get_blob().unwrap()),
            5 => {
                let n = r.get_u32().unwrap() as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(legacy_value(r));
                }
                Value::List(items)
            }
            _ => panic!("bad value tag"),
        }
    }
    let mut r = WireReader::new(frame);
    let type_name = r.get_str().unwrap();
    let n = r.get_u32().unwrap() as usize;
    let mut builder = Tuple::build(type_name);
    for _ in 0..n {
        let name = r.get_str().unwrap();
        let value = legacy_value(&mut r);
        builder = builder.field(name, value);
    }
    builder.done()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn borrowed_decode_matches_copying_decode(tuple in wire_tuple_strategy()) {
        let frame = Bytes::from(tuple.to_bytes());
        let mut interner = NameInterner::new();
        let borrowed: Tuple = decode_frame(frame.clone(), &mut interner).unwrap();
        let copied = legacy_copying_decode(frame.clone());
        prop_assert_eq!(&borrowed, &copied);
        prop_assert_eq!(&borrowed, &tuple);
        // Re-encoding the borrowed decode reproduces the frame exactly —
        // sharing the frame's allocation never leaks into the encoding.
        prop_assert_eq!(borrowed.to_bytes(), frame.as_ref());
        // A second decode through the now-warm name cache agrees too.
        let again: Tuple = decode_frame(frame, &mut interner).unwrap();
        prop_assert_eq!(again, tuple);
    }
}
