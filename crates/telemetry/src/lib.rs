//! # acc-telemetry
//!
//! Workspace-wide observability substrate:
//!
//! * [`registry`] — the unified metrics registry: monotone [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket log-scale latency [`Histogram`]s,
//!   registered by static name, with [`Registry::snapshot`], a
//!   Prometheus-style text exposition and a JSON dump for the bench
//!   harness;
//! * [`trace`] — the structured-tracing facade: [`span!`]/[`event!`]
//!   with key–value fields, thread-local span depth, and pluggable
//!   [`Subscriber`]s (no-op default, stderr writer, ring-buffer capture
//!   for tests);
//! * [`context`] — distributed trace propagation: a thread-local
//!   [`TraceContext`] every span inherits, serialisable across process
//!   boundaries, plus the [`TraceAssembler`] that stitches per-process
//!   dumps into one cross-process tree;
//! * [`flight`] — the always-on bounded flight recorder (last N records
//!   per thread), dumped on demand or from a panic hook, with tail-based
//!   trace retention for slow or errored tasks;
//! * [`profile`] — per-job waterfall profiles: phase totals, the
//!   reconstructed critical path, and a one-word bound verdict with its
//!   evidence;
//! * [`ring`] — bounded time-series history: fixed-depth rings of
//!   `(timestamp, value)` samples with windowed min/max/mean/p99
//!   queries, feeding the cluster federation plane and the adaptive
//!   decision input;
//! * [`http`] — the std-only scrape endpoint serving `/metrics`,
//!   `/metrics.json`, `/healthz`, `/spans` and any extra routes a
//!   component mounts (the framework adds `/cluster`).
//!
//! Both halves are built to be left in hot paths permanently:
//!
//! * counters and histograms record through relaxed atomics — no locks,
//!   no allocation;
//! * with no subscriber installed, `span!`/`event!` cost one relaxed
//!   atomic load and a branch (single-digit nanoseconds) and build no
//!   fields;
//! * operation-latency *timing* (the two `Instant::now` calls around an
//!   op) is gated separately by [`set_timing`], so the tuple space's
//!   sub-microsecond write path pays nothing until a deployment opts in
//!   (the framework's `ClusterBuilder` does).
//!
//! Like the `shim-*` crates, this crate depends on nothing outside `std`.
//!
//! # Naming conventions
//!
//! Series names are dotted paths, `layer.operation.measure`, with the
//! unit as the last suffix where one applies: `space.take.wait_us`,
//! `snmp.poll.rtt_us`, `worker.transition`, `federation.lease.granted`.

#![warn(missing_docs)]

pub mod context;
pub mod flight;
pub mod histogram;
pub mod http;
pub mod profile;
pub mod registry;
pub mod ring;
pub mod trace;

pub use context::{ContextGuard, SpanRecord, TraceAssembler, TraceContext};
pub use histogram::{Histogram, HistogramSnapshot};
pub use http::{serve, serve_routed, HealthChecks, HealthResult, HttpOptions, HttpServer, Routes};
pub use profile::{BoundVerdict, CriticalPath, JobProfile, PathSegment, PhaseTotals, ShardPhase};
pub use registry::{
    json_escape, json_unescape, refresh_process_series, registry, Counter, Gauge, Registry,
    Snapshot,
};
pub use ring::{HistoryRing, RingSample, RingStats, DEFAULT_DEPTH};
pub use trace::{
    init_from_env, install, uninstall, RingBufferSubscriber, StderrSubscriber, Subscriber,
    TraceEvent, TraceKind,
};

/// Serialises tests (here and across modules) that mutate process-global
/// trace state: subscriber installation and the flight-recorder bit.
#[cfg(test)]
pub(crate) static TEST_EXCLUSIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TIMING: AtomicBool = AtomicBool::new(false);

/// True when operation-latency timing is on (see [`set_timing`]).
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Globally enables or disables operation-latency timing. Off by default
/// so micro-benchmarks of uninstrumented paths pay nothing; the framework
/// turns it on when a cluster is built.
pub fn set_timing(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// A conditionally started stopwatch for operation-latency histograms:
/// holds a start `Instant` only while [`timing_enabled`] — otherwise both
/// `start` and `observe` are a load and a branch.
#[derive(Debug)]
pub struct Timed(Option<Instant>);

impl Timed {
    /// Starts the stopwatch if timing is enabled.
    #[inline]
    pub fn start() -> Timed {
        Timed(timing_enabled().then(Instant::now))
    }

    /// Records the elapsed microseconds into `histogram` (no-op when the
    /// stopwatch never started).
    #[inline]
    pub fn observe(&self, histogram: &Histogram) {
        if let Some(start) = self.0 {
            histogram.observe(start.elapsed().as_micros() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_is_inert_when_disabled() {
        set_timing(false);
        let h = Histogram::new();
        let t = Timed::start();
        t.observe(&h);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn timed_records_when_enabled() {
        set_timing(true);
        let h = Histogram::new();
        let t = Timed::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.observe(&h);
        set_timing(false);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 1_000, "slept 2 ms, saw {} us", snap.max);
    }
}
