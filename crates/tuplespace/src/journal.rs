//! The space's durability journal: the op-log record format and the
//! [`SpaceJournal`] handle a durable [`crate::Space`] carries.
//!
//! Every state-changing operation that survived a crash must be derivable
//! from `snapshot + WAL tail`, so the journal records exactly the committed
//! mutations: plain writes, destructive takes, cancels, lease renewals and
//! transaction commits (a transaction's ops hit the journal only at commit,
//! as one atomic record). Expiry is *not* journaled — lease deadlines are
//! recorded as absolute wall-clock times and recovery re-evaluates them, so
//! an entry whose lease ran out while the process was down stays dead.
//!
//! Journaling failures are fail-stop: an operation that was acknowledged
//! but not journaled would silently break the recovery contract, so a WAL
//! I/O error panics instead of letting the space continue un-durably.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use acc_durability::{Wal, WalOptions, WalReplay};
use parking_lot::Mutex;

use crate::lease::Lease;
use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::space::EntryId;
use crate::tuple::Tuple;

/// Current wall-clock time as milliseconds since the UNIX epoch.
pub(crate) fn wall_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

/// Absolute wall-clock deadline (ms since epoch) a lease granted *now*
/// expires at; `None` for forever. This is what goes into the journal — an
/// absolute time survives the process, a monotonic `Instant` does not.
pub(crate) fn wall_deadline(lease: &Lease) -> Option<u64> {
    match lease {
        Lease::Forever => None,
        Lease::Duration(d) => Some(wall_now_ms().saturating_add(d.as_millis() as u64)),
    }
}

/// Converts a live entry's monotonic expiry into an absolute wall-clock
/// deadline for snapshotting.
pub(crate) fn wall_from_instant(expires: Option<Instant>) -> Option<u64> {
    expires.map(|e| {
        let now = Instant::now();
        let wall = wall_now_ms();
        if e <= now {
            wall
        } else {
            wall.saturating_add((e - now).as_millis() as u64)
        }
    })
}

/// Converts a journaled wall-clock deadline back into a monotonic expiry,
/// relative to a consistent `(Instant, wall ms)` clock pair read once at
/// recovery time. Returns `None` (meaning: already expired) for deadlines
/// at or before `wall_now`.
pub(crate) fn instant_from_wall(
    deadline_ms: u64,
    inst_now: Instant,
    wall_now: u64,
) -> Option<Instant> {
    if deadline_ms <= wall_now {
        None
    } else {
        Some(inst_now + Duration::from_millis(deadline_ms - wall_now))
    }
}

fn put_deadline(w: &mut WireWriter, deadline_ms: Option<u64>) {
    match deadline_ms {
        Some(ms) => {
            w.put_bool(true);
            w.put_u64(ms);
        }
        None => w.put_bool(false),
    }
}

fn get_deadline(r: &mut WireReader) -> Result<Option<u64>, PayloadError> {
    Ok(if r.get_bool()? {
        Some(r.get_u64()?)
    } else {
        None
    })
}

/// One journaled mutation. Deadlines are absolute wall-clock milliseconds
/// since the UNIX epoch.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Op {
    /// A plain (non-transactional) write became visible.
    Write {
        id: EntryId,
        deadline_ms: Option<u64>,
        tuple: Tuple,
    },
    /// A plain take removed the entry.
    Take { id: EntryId },
    /// [`crate::Space::cancel`] removed the entry.
    Cancel { id: EntryId },
    /// [`crate::Space::renew_lease`] moved the entry's deadline.
    Renew {
        id: EntryId,
        deadline_ms: Option<u64>,
    },
    /// A transaction committed: its pending writes became visible and its
    /// take-locked entries were removed, atomically.
    TxnCommit {
        writes: Vec<(EntryId, Option<u64>, Tuple)>,
        takes: Vec<EntryId>,
    },
}

impl Payload for Op {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Op::Write {
                id,
                deadline_ms,
                tuple,
            } => {
                w.put_u8(1);
                w.put_u64(*id);
                put_deadline(w, *deadline_ms);
                tuple.encode(w);
            }
            Op::Take { id } => {
                w.put_u8(2);
                w.put_u64(*id);
            }
            Op::Cancel { id } => {
                w.put_u8(3);
                w.put_u64(*id);
            }
            Op::Renew { id, deadline_ms } => {
                w.put_u8(4);
                w.put_u64(*id);
                put_deadline(w, *deadline_ms);
            }
            Op::TxnCommit { writes, takes } => {
                w.put_u8(5);
                w.put_u32(writes.len() as u32);
                for (id, deadline_ms, tuple) in writes {
                    w.put_u64(*id);
                    put_deadline(w, *deadline_ms);
                    tuple.encode(w);
                }
                w.put_u32(takes.len() as u32);
                for id in takes {
                    w.put_u64(*id);
                }
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            1 => Ok(Op::Write {
                id: r.get_u64()?,
                deadline_ms: get_deadline(r)?,
                tuple: Tuple::decode(r)?,
            }),
            2 => Ok(Op::Take { id: r.get_u64()? }),
            3 => Ok(Op::Cancel { id: r.get_u64()? }),
            4 => Ok(Op::Renew {
                id: r.get_u64()?,
                deadline_ms: get_deadline(r)?,
            }),
            5 => {
                let nw = r.get_u32()? as usize;
                if nw > 1 << 20 {
                    return Err(PayloadError::Corrupt("txn write count"));
                }
                let mut writes = Vec::with_capacity(nw.min(1024));
                for _ in 0..nw {
                    let id = r.get_u64()?;
                    let deadline_ms = get_deadline(r)?;
                    writes.push((id, deadline_ms, Tuple::decode(r)?));
                }
                let nt = r.get_u32()? as usize;
                if nt > 1 << 20 {
                    return Err(PayloadError::Corrupt("txn take count"));
                }
                let mut takes = Vec::with_capacity(nt.min(1024));
                for _ in 0..nt {
                    takes.push(r.get_u64()?);
                }
                Ok(Op::TxnCommit { writes, takes })
            }
            _ => Err(PayloadError::Corrupt("op tag")),
        }
    }
}

/// The journal a durable space carries: a WAL plus the commit gate that
/// keeps multi-shard transaction commits atomic with respect to snapshots.
///
/// Lock ordering: `commit_gate` is acquired *before* any shard lock (it
/// brackets whole commit/checkpoint sequences); the WAL's internal mutex is
/// a leaf acquired *under* shard locks (plain ops journal inside their
/// shard-lock critical section).
pub(crate) struct SpaceJournal {
    wal: Wal,
    dir: PathBuf,
    /// Held by `finish_txn(commit)` across its journal-append *and* its
    /// in-memory apply, and by `checkpoint` while it captures the cut LSN.
    /// This guarantees the cut never lands between a commit record and its
    /// application, so `snapshot + WAL[cut..]` always reproduces the state.
    pub(crate) commit_gate: Mutex<()>,
}

impl SpaceJournal {
    /// Opens (or creates) the journal in `dir`, truncating any torn tail.
    pub(crate) fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> io::Result<SpaceJournal> {
        let dir = dir.into();
        let wal = Wal::open(&dir, opts)?;
        Ok(SpaceJournal {
            wal,
            dir,
            commit_gate: Mutex::new(()),
        })
    }

    /// Appends one op. Panics on I/O failure (fail-stop; see module docs).
    pub(crate) fn append(&self, op: &Op) -> u64 {
        self.wal
            .append(&op.to_bytes())
            .expect("WAL append failed; cannot acknowledge an un-journaled op")
    }

    /// Forces the WAL to stable storage regardless of sync policy.
    pub(crate) fn sync(&self) -> io::Result<()> {
        self.wal.sync()
    }

    /// The LSN the next journaled op will get.
    pub(crate) fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// Writes a snapshot covering everything below `cut_lsn`, then drops
    /// the WAL segments the snapshot made redundant.
    pub(crate) fn write_snapshot(&self, cut_lsn: u64, body: &[u8]) -> io::Result<()> {
        acc_durability::write_snapshot(&self.dir, cut_lsn, body)?;
        self.wal.compact(cut_lsn)?;
        Ok(())
    }

    /// Loads the newest valid snapshot in `dir`, if any.
    pub(crate) fn load_snapshot(dir: &Path) -> io::Result<Option<(u64, Vec<u8>)>> {
        acc_durability::load_latest_snapshot(dir)
    }

    /// Replays the committed WAL records in `dir`.
    pub(crate) fn replay(dir: &Path) -> io::Result<WalReplay> {
        Wal::replay(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sample_tuple() -> Tuple {
        Tuple::build("acc.task")
            .field("id", 3i64)
            .field("body", Value::from(vec![1u8, 2, 3]))
            .done()
    }

    #[test]
    fn op_roundtrip_all_variants() {
        let ops = [
            Op::Write {
                id: 7,
                deadline_ms: Some(123_456),
                tuple: sample_tuple(),
            },
            Op::Write {
                id: 8,
                deadline_ms: None,
                tuple: sample_tuple(),
            },
            Op::Take { id: 9 },
            Op::Cancel { id: 10 },
            Op::Renew {
                id: 11,
                deadline_ms: Some(999),
            },
            Op::Renew {
                id: 12,
                deadline_ms: None,
            },
            Op::TxnCommit {
                writes: vec![(13, None, sample_tuple()), (14, Some(42), sample_tuple())],
                takes: vec![1, 2, 3],
            },
            Op::TxnCommit {
                writes: vec![],
                takes: vec![],
            },
        ];
        for op in ops {
            assert_eq!(Op::from_bytes(&op.to_bytes()).unwrap(), op);
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(Op::from_bytes(&[9]).is_err());
    }

    #[test]
    fn wall_deadline_is_in_the_future() {
        let before = wall_now_ms();
        let dl = wall_deadline(&Lease::for_millis(10_000)).unwrap();
        assert!(dl >= before + 10_000);
        assert_eq!(wall_deadline(&Lease::Forever), None);
    }

    #[test]
    fn instant_wall_conversions_roundtrip() {
        let inst_now = Instant::now();
        let wall_now = wall_now_ms();
        // A deadline 5 s out survives the round trip within clock jitter.
        let expires = Some(inst_now + Duration::from_secs(5));
        let wall = wall_from_instant(expires).unwrap();
        assert!(wall >= wall_now + 4_900 && wall <= wall_now + 5_200);
        let back = instant_from_wall(wall, inst_now, wall_now).unwrap();
        let d = back - inst_now;
        assert!(d >= Duration::from_millis(4_900) && d <= Duration::from_millis(5_200));
        // A deadline already past maps to "expired".
        assert_eq!(instant_from_wall(wall_now, inst_now, wall_now), None);
    }
}
