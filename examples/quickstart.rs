//! Quickstart: the smallest complete use of the framework.
//!
//! Defines a trivial bag-of-tasks application (sum the squares of 0..N),
//! brings up an adaptive cluster with three simulated worker nodes, runs
//! the job through the master module, and prints the phase timings the
//! paper's evaluation reports.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Crash recovery: `--durable <dir>` journals the tuple space to `<dir>`
//! and checkpoints the master's progress there. Add `--crash-after <n>`
//! to kill the process (exit code 3) after absorbing `n` results, then
//! re-run with the same `--durable <dir>`: the space replays its
//! write-ahead log, the master resumes from its checkpoint, and only the
//! unfinished tasks are re-issued.
//!
//! Observability: set `ACC_OBSERVE=127.0.0.1:9137` (or any bind address)
//! to mount the scrape endpoint, and `--hold-ms <n>` to keep the cluster
//! alive for `n` milliseconds after the run so `/metrics`, `/healthz` and
//! `/spans` can be curled.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    task_template, Application, ClusterBuilder, ExecError, FrameworkConfig, Master, ResultEntry,
    TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::{Payload, Space, SpaceHandle, WalOptions};

/// The application: each task squares one integer; the master sums them.
struct SumSquares {
    n: u64,
    total: u64,
    absorbed: u64,
    /// Simulated crash: exit the process after absorbing this many results.
    crash_after: Option<u64>,
}

impl SumSquares {
    fn new(n: u64) -> SumSquares {
        SumSquares {
            n,
            total: 0,
            absorbed: 0,
            crash_after: None,
        }
    }
}

struct SquareExecutor;

impl TaskExecutor for SquareExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        Ok((x * x).to_bytes())
    }
}

impl Application for SumSquares {
    fn job_name(&self) -> String {
        "sum-squares".into()
    }

    fn bundle_name(&self) -> String {
        "sum-squares-worker".into()
    }

    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }

    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(SquareExecutor)
    }

    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        self.absorbed += 1;
        if self.crash_after.is_some_and(|n| self.absorbed >= n) {
            eprintln!(
                "simulated crash after {} results (re-run with the same --durable dir to resume)",
                self.absorbed
            );
            std::process::exit(3);
        }
        Ok(())
    }

    fn snapshot_partials(&self) -> Option<Vec<u8>> {
        Some(self.total.to_bytes())
    }

    fn restore_partials(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
        self.total = u64::from_bytes(bytes).map_err(ExecError::Decode)?;
        Ok(())
    }
}

/// A minimal in-process worker: takes tasks from the space, executes
/// them, writes results back. Tolerates the space closing (crash).
fn spawn_worker(space: SpaceHandle, job: String, name: String) -> std::thread::JoinHandle<()> {
    let template = task_template(&job);
    std::thread::spawn(move || {
        let exec = SquareExecutor;
        let first = Instant::now();
        while let Ok(Some(tuple)) = space.take(&template, Some(Duration::from_millis(200))) {
            let Some(task) = TaskEntry::from_tuple(&tuple) else {
                continue;
            };
            let t0 = Instant::now();
            let Ok(payload) = exec.execute(&task) else {
                continue;
            };
            let result = ResultEntry {
                job: job.clone(),
                task_id: task.task_id,
                worker: name.clone(),
                payload,
                compute_ms: t0.elapsed().as_secs_f64() * 1e3,
                span_ms: first.elapsed().as_secs_f64() * 1e3,
                timing: Default::default(),
                error: None,
            };
            if space.write(result.to_tuple()).is_err() {
                break;
            }
        }
    })
}

/// The `--durable <dir>` path: journaled space + master checkpoint.
/// Re-running with the same directory resumes an interrupted job.
fn run_durable(dir: &Path, crash_after: Option<u64>) {
    // Opening the directory replays any previous write-ahead log and
    // snapshot, so a fresh start and a post-crash restart are one call.
    let space =
        Space::durable("quickstart-space", dir, WalOptions::default()).expect("open durable space");
    let checkpoint = dir.join("master.ckpt");
    let resuming = checkpoint.exists();

    let mut app = SumSquares::new(64);
    app.crash_after = crash_after;
    println!(
        "{} job '{}' in {}",
        if resuming { "resuming" } else { "starting" },
        app.job_name(),
        dir.display()
    );

    let workers: Vec<_> = (0..2)
        .map(|i| spawn_worker(space.clone(), app.job_name(), format!("worker-{i}")))
        .collect();

    // Checkpoint the cursor + partial sums every 8 absorbed results.
    let master = Master::new(space.clone());
    let report = master
        .run_with_checkpoint(&mut app, &checkpoint, 8)
        .expect("run job");
    for worker in workers {
        let _ = worker.join();
    }

    let expected: u64 = (0..app.n).map(|i| i * i).sum();
    println!("sum of squares 0..{} = {}", app.n, app.total);
    println!("expected                 = {expected}");
    println!("results collected this run: {}", report.results_collected);
    if app.total != expected {
        eprintln!("MISMATCH: recovered total is wrong");
        std::process::exit(1);
    }
}

fn main() {
    // `--durable <dir>` switches to the crash-recovery demo; the default
    // path below runs the adaptive-cluster demo.
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        })
    };
    let crash_after = flag_value("--crash-after").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--crash-after needs a number, got {v}");
            std::process::exit(2);
        })
    });
    let hold_ms: Option<u64> = flag_value("--hold-ms").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--hold-ms needs a number, got {v}");
            std::process::exit(2);
        })
    });
    if let Some(dir) = flag_value("--durable") {
        run_durable(&PathBuf::from(dir), crash_after);
        return;
    }

    // 1. Bring the cluster up: space + federation + network management.
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config)
        .space_name("quickstart-space")
        .build();

    // 2. Install the application (publishes its code bundle) and add
    //    worker nodes. The inference engine will Start them when their
    //    nodes are idle.
    let mut app = SumSquares::new(64);
    cluster.install(&app);
    for i in 0..3 {
        cluster.add_worker(NodeSpec::new(format!("worker-{i}"), 800, 256));
    }

    // 3. Run the job through the master module.
    let report = cluster.run(&mut app);

    println!("sum of squares 0..{} = {}", app.n, app.total);
    println!(
        "expected                 = {}",
        (0..app.n).map(|i| i * i).sum::<u64>()
    );
    println!();
    println!("tasks planned        : {}", report.times.tasks);
    println!("results collected    : {}", report.results_collected);
    println!(
        "task planning time   : {:8.2} ms",
        report.times.task_planning_ms
    );
    println!(
        "task aggregation time: {:8.2} ms",
        report.times.task_aggregation_ms
    );
    println!(
        "max worker time      : {:8.2} ms",
        report.times.max_worker_ms
    );
    println!("parallel time        : {:8.2} ms", report.times.parallel_ms);
    for worker in cluster.workers() {
        println!(
            "  {}: {} tasks, final state {}",
            worker.name(),
            worker.tasks_done(),
            worker.state()
        );
    }
    // 4. Everything above was also recorded in the global telemetry
    //    registry; dump it in text exposition format.
    println!();
    println!("--- telemetry ---");
    print!("{}", adaptive_spaces::telemetry::registry().render_text());

    // 5. `--hold-ms` keeps the cluster (and its ACC_OBSERVE endpoint, if
    //    any) alive so the observability plane can be scraped live.
    if let Some(ms) = hold_ms {
        match cluster.observe_addr() {
            Some(addr) => println!("holding for {ms} ms; observability endpoint at http://{addr}"),
            None => println!("holding for {ms} ms (set ACC_OBSERVE=127.0.0.1:0 for an endpoint)"),
        }
        std::thread::sleep(Duration::from_millis(ms));
    }
    cluster.shutdown();
}
