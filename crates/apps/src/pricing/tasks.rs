//! The pricing application as the framework sees it.
//!
//! The simulation domain is divided into independent tasks; each Monte-Carlo
//! task runs one estimator — High or Low — over a block of simulations
//! (paper: 50 tasks × 100 simulations, doubled into 100 subtasks by the
//! high/low split). The aggregator averages the two streams into the final
//! price bracket.

use std::sync::Arc;

use acc_core::{Application, ExecError, TaskEntry, TaskExecutor, TaskSpec};
use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};

use super::model::{OptionSpec, OptionStyle};
use super::tree::{bg_tree_estimate, european_mc_estimate};

/// Which of the Broadie–Glasserman pair a task computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// The high-biased estimator.
    High,
    /// The low-biased estimator.
    Low,
}

impl Estimator {
    fn code(self) -> u8 {
        match self {
            Estimator::High => 0,
            Estimator::Low => 1,
        }
    }

    fn from_code(code: u8) -> Result<Estimator, PayloadError> {
        match code {
            0 => Ok(Estimator::High),
            1 => Ok(Estimator::Low),
            _ => Err(PayloadError::Corrupt("estimator code")),
        }
    }
}

/// Input payload of one pricing task.
#[derive(Debug, Clone, PartialEq)]
pub struct PricingTaskInput {
    /// The contract being priced.
    pub spec: OptionSpec,
    /// High or low estimator.
    pub estimator: Estimator,
    /// Number of simulations (trees or paths) in this task.
    pub sims: u32,
    /// Base RNG seed; simulation `i` uses `seed + i`.
    pub seed: u64,
    /// Random-tree branching factor (American only).
    pub branching: u32,
    /// Random-tree depth / number of exercise dates (American only).
    pub depth: u32,
}

impl Payload for PricingTaskInput {
    fn encode(&self, w: &mut WireWriter) {
        self.spec.encode(w);
        w.put_u8(self.estimator.code());
        w.put_u32(self.sims);
        w.put_u64(self.seed);
        w.put_u32(self.branching);
        w.put_u32(self.depth);
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        Ok(PricingTaskInput {
            spec: OptionSpec::decode(r)?,
            estimator: Estimator::from_code(r.get_u8()?)?,
            sims: r.get_u32()?,
            seed: r.get_u64()?,
            branching: r.get_u32()?,
            depth: r.get_u32()?,
        })
    }
}

/// Output payload of one pricing task.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PricingTaskOutput {
    estimator: Estimator,
    sum: f64,
    sims: u32,
}

impl Payload for PricingTaskOutput {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(self.estimator.code());
        w.put_f64(self.sum);
        w.put_u32(self.sims);
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        Ok(PricingTaskOutput {
            estimator: Estimator::from_code(r.get_u8()?)?,
            sum: r.get_f64()?,
            sims: r.get_u32()?,
        })
    }
}

/// Runs one pricing task; shared by the worker executor and the sequential
/// baseline so both produce bit-identical sums.
pub(crate) fn run_task(input: &PricingTaskInput) -> PricingTaskOutput {
    let mut sum = 0.0;
    match input.spec.style {
        OptionStyle::European => {
            // High and low coincide for European contracts: plain MC.
            for i in 0..input.sims {
                sum += european_mc_estimate(&input.spec, 1, input.seed + i as u64);
            }
        }
        OptionStyle::American => {
            for i in 0..input.sims {
                let (high, low) = bg_tree_estimate(
                    &input.spec,
                    input.branching,
                    input.depth,
                    input.seed + i as u64,
                );
                sum += match input.estimator {
                    Estimator::High => high,
                    Estimator::Low => low,
                };
            }
        }
    }
    PricingTaskOutput {
        estimator: input.estimator,
        sum,
        sims: input.sims,
    }
}

/// The final price bracket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PricingResult {
    /// Mean of the high-biased estimates.
    pub high: f64,
    /// Mean of the low-biased estimates.
    pub low: f64,
}

impl PricingResult {
    /// The point estimate the paper reports: the bracket midpoint.
    pub fn point(&self) -> f64 {
        0.5 * (self.high + self.low)
    }
}

/// The option-pricing application.
#[derive(Debug, Clone)]
pub struct PricingApp {
    /// The contract being priced.
    pub spec: OptionSpec,
    /// Number of High/Low task *pairs* (paper: 50 → 100 subtasks).
    pub task_pairs: u32,
    /// Simulations per task (paper: 100).
    pub sims_per_task: u32,
    /// Random-tree branching factor.
    pub branching: u32,
    /// Random-tree depth.
    pub depth: u32,
    /// Base seed; tasks derive disjoint streams from it.
    pub base_seed: u64,
    /// Per-task outputs keyed by task id, so the final fold is in task
    /// order regardless of result arrival order — parallel and sequential
    /// runs are bit-identical.
    parts: std::collections::BTreeMap<u64, PricingTaskOutput>,
}

impl PricingApp {
    /// An app with explicit decomposition parameters.
    pub fn new(spec: OptionSpec, task_pairs: u32, sims_per_task: u32) -> PricingApp {
        PricingApp {
            spec,
            task_pairs,
            sims_per_task,
            branching: 4,
            depth: 3,
            base_seed: 0x5EED,
            parts: std::collections::BTreeMap::new(),
        }
    }

    /// The paper's configuration: 10 000 simulations as 50 task pairs of
    /// 100 simulations (100 subtasks in the space).
    pub fn paper_configuration() -> PricingApp {
        PricingApp::new(OptionSpec::paper_default(), 50, 100)
    }

    /// The task inputs this app decomposes into (also used by the
    /// sequential baseline).
    pub fn task_inputs(&self) -> Vec<PricingTaskInput> {
        let mut inputs = Vec::with_capacity(self.task_pairs as usize * 2);
        for pair in 0..self.task_pairs {
            // Disjoint seed blocks per pair; High and Low share the seeds of
            // the same trees, exactly as one tree yields both estimates.
            let seed = self.base_seed + pair as u64 * self.sims_per_task as u64;
            for estimator in [Estimator::High, Estimator::Low] {
                inputs.push(PricingTaskInput {
                    spec: self.spec,
                    estimator,
                    sims: self.sims_per_task,
                    seed,
                    branching: self.branching,
                    depth: self.depth,
                });
            }
        }
        inputs
    }

    /// The aggregated price bracket (valid once a run completes). Parts
    /// are folded in task-id order, so the result does not depend on the
    /// order workers returned them.
    pub fn result(&self) -> PricingResult {
        let mut high_sum = 0.0;
        let mut high_n = 0u64;
        let mut low_sum = 0.0;
        let mut low_n = 0u64;
        for out in self.parts.values() {
            match out.estimator {
                Estimator::High => {
                    high_sum += out.sum;
                    high_n += out.sims as u64;
                }
                Estimator::Low => {
                    low_sum += out.sum;
                    low_n += out.sims as u64;
                }
            }
        }
        PricingResult {
            high: if high_n > 0 {
                high_sum / high_n as f64
            } else {
                f64::NAN
            },
            low: if low_n > 0 {
                low_sum / low_n as f64
            } else {
                f64::NAN
            },
        }
    }

    pub(crate) fn absorb_output(&mut self, task_id: u64, out: PricingTaskOutput) {
        self.parts.insert(task_id, out);
    }
}

struct PricingExecutor;

impl TaskExecutor for PricingExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let input: PricingTaskInput = task.input()?;
        Ok(run_task(&input).to_bytes())
    }
}

impl Application for PricingApp {
    fn job_name(&self) -> String {
        "option-pricing".into()
    }

    fn bundle_name(&self) -> String {
        "option-pricing-worker".into()
    }

    fn bundle_kb(&self) -> usize {
        48 // a small numerical kernel
    }

    fn plan(&mut self) -> Vec<TaskSpec> {
        self.task_inputs()
            .iter()
            .enumerate()
            .map(|(i, input)| TaskSpec::new(i as u64, input))
            .collect()
    }

    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(PricingExecutor)
    }

    fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        let out = PricingTaskOutput::from_bytes(payload).map_err(ExecError::Decode)?;
        self.absorb_output(task_id, out);
        Ok(())
    }

    fn snapshot_partials(&self) -> Option<Vec<u8>> {
        let mut w = WireWriter::new();
        w.put_u32(self.parts.len() as u32);
        for (task_id, out) in &self.parts {
            w.put_u64(*task_id);
            out.encode(&mut w);
        }
        Some(w.finish().to_vec())
    }

    fn restore_partials(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
        let mut r = WireReader::new(bytes::Bytes::copy_from_slice(bytes));
        let count = r.get_u32().map_err(ExecError::Decode)?;
        let mut parts = std::collections::BTreeMap::new();
        for _ in 0..count {
            let task_id = r.get_u64().map_err(ExecError::Decode)?;
            let out = PricingTaskOutput::decode(&mut r).map_err(ExecError::Decode)?;
            parts.insert(task_id, out);
        }
        if r.remaining() != 0 {
            return Err(ExecError::Decode(PayloadError::Corrupt("trailing bytes")));
        }
        self.parts = parts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_payload_roundtrip() {
        let input = PricingTaskInput {
            spec: OptionSpec::paper_default(),
            estimator: Estimator::Low,
            sims: 100,
            seed: 42,
            branching: 4,
            depth: 3,
        };
        assert_eq!(
            PricingTaskInput::from_bytes(&input.to_bytes()).unwrap(),
            input
        );
    }

    #[test]
    fn paper_configuration_yields_100_subtasks() {
        let mut app = PricingApp::paper_configuration();
        let specs = app.plan();
        assert_eq!(specs.len(), 100);
        // 50 high + 50 low.
        let inputs: Vec<PricingTaskInput> = specs
            .iter()
            .map(|s| PricingTaskInput::from_bytes(&s.payload).unwrap())
            .collect();
        assert_eq!(
            inputs
                .iter()
                .filter(|i| i.estimator == Estimator::High)
                .count(),
            50
        );
        assert_eq!(
            inputs
                .iter()
                .filter(|i| i.estimator == Estimator::Low)
                .count(),
            50
        );
        // Total simulations = 10 000 (5 000 trees, each estimated twice).
        let total: u32 = inputs.iter().map(|i| i.sims).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn executor_and_absorb_agree_with_direct_run() {
        let mut app = PricingApp::new(OptionSpec::paper_default(), 3, 10);
        let exec = app.executor();
        for (i, input) in app.task_inputs().iter().enumerate() {
            let entry = TaskEntry::new("option-pricing", i as u64, input.to_bytes());
            let payload = exec.execute(&entry).unwrap();
            app.absorb(i as u64, &payload).unwrap();
        }
        let result = app.result();
        assert!(result.high >= result.low);
        assert!(result.point() > 0.0);
    }

    #[test]
    fn seed_blocks_are_disjoint_across_pairs() {
        let app = PricingApp::new(OptionSpec::paper_default(), 4, 25);
        let inputs = app.task_inputs();
        let mut seeds: Vec<u64> = inputs
            .iter()
            .filter(|i| i.estimator == Estimator::High)
            .map(|i| i.seed)
            .collect();
        seeds.sort_unstable();
        for window in seeds.windows(2) {
            assert!(window[1] - window[0] >= 25, "seed blocks overlap");
        }
    }

    #[test]
    fn high_low_share_tree_seeds() {
        let app = PricingApp::new(OptionSpec::paper_default(), 2, 10);
        let inputs = app.task_inputs();
        assert_eq!(inputs[0].seed, inputs[1].seed);
        assert_ne!(inputs[0].estimator, inputs[1].estimator);
    }

    #[test]
    fn partials_snapshot_restore_roundtrip() {
        let mut app = PricingApp::new(OptionSpec::paper_default(), 2, 5);
        let exec = app.executor();
        let inputs = app.task_inputs();
        // Absorb half the results, snapshot, restore into a fresh app, then
        // finish the job there: the final bracket must match a straight run.
        for (i, input) in inputs.iter().enumerate().take(2) {
            let entry = TaskEntry::new("option-pricing", i as u64, input.to_bytes());
            app.absorb(i as u64, &exec.execute(&entry).unwrap())
                .unwrap();
        }
        let snapshot = app.snapshot_partials().unwrap();

        let mut resumed = PricingApp::new(OptionSpec::paper_default(), 2, 5);
        resumed.restore_partials(&snapshot).unwrap();
        for (i, input) in inputs.iter().enumerate().skip(2) {
            let entry = TaskEntry::new("option-pricing", i as u64, input.to_bytes());
            resumed
                .absorb(i as u64, &exec.execute(&entry).unwrap())
                .unwrap();
            app.absorb(i as u64, &exec.execute(&entry).unwrap())
                .unwrap();
        }
        assert_eq!(resumed.result(), app.result());
        assert!(resumed.restore_partials(&[1, 2, 3]).is_err());
    }

    #[test]
    fn empty_result_is_nan() {
        let app = PricingApp::new(OptionSpec::paper_default(), 1, 1);
        assert!(app.result().high.is_nan());
        assert!(app.result().low.is_nan());
    }
}
