//! The scrape/health endpoint: a deliberately tiny HTTP/1.0 responder
//! (std-only, one short-lived thread per request, `Connection: close`)
//! that any component can mount on a side port.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry's Prometheus-style text exposition;
//! * `GET /metrics.json` — the registry's JSON dump;
//! * `GET /healthz` — runs the mounted [`HealthChecks`]; `200 ok` when
//!   every check passes, `503 unhealthy` otherwise, with one
//!   `name: detail` line per check either way;
//! * `GET /spans` — the flight recorder's dump
//!   ([`crate::flight::dump_json`]).
//!
//! This is an observability plane, not a web server: no keep-alive, no
//! TLS, no request bodies, an 8 KiB request cap, and the same bounded
//! accept discipline as the tuple-space server (connection cap +
//! per-socket timeouts via [`HttpOptions`]).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::registry::{refresh_process_series, registry};

/// Socket discipline for the endpoint (the scrape-side analogue of the
/// tuple-space server's `ServerOptions`).
#[derive(Debug, Clone, Copy)]
pub struct HttpOptions {
    /// Per-connection read timeout (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Connections served concurrently before excess ones are dropped.
    pub max_connections: usize,
}

impl Default for HttpOptions {
    fn default() -> HttpOptions {
        HttpOptions {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_connections: 16,
        }
    }
}

/// A health check's verdict: `Ok(detail)` or `Err(what is wrong)`.
pub type HealthResult = Result<String, String>;

type Check = Box<dyn Fn() -> HealthResult + Send + Sync>;

/// A named set of health checks, run on every `GET /healthz`.
#[derive(Default)]
pub struct HealthChecks {
    checks: Mutex<Vec<(String, Check)>>,
}

impl std::fmt::Debug for HealthChecks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.checks.lock().unwrap_or_else(|e| e.into_inner()).len();
        f.debug_struct("HealthChecks").field("checks", &n).finish()
    }
}

impl HealthChecks {
    /// An empty check set (healthy by definition).
    pub fn new() -> Arc<HealthChecks> {
        Arc::new(HealthChecks::default())
    }

    /// Registers a named check. Checks run in registration order.
    pub fn register(
        &self,
        name: impl Into<String>,
        check: impl Fn() -> HealthResult + Send + Sync + 'static,
    ) {
        self.checks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((name.into(), Box::new(check)));
    }

    /// Runs every check: overall verdict plus a `name: detail` report
    /// line per check.
    pub fn run(&self) -> (bool, String) {
        let checks = self.checks.lock().unwrap_or_else(|e| e.into_inner());
        let mut healthy = true;
        let mut report = String::new();
        for (name, check) in checks.iter() {
            match check() {
                Ok(detail) => report.push_str(&format!("{name}: ok ({detail})\n")),
                Err(problem) => {
                    healthy = false;
                    report.push_str(&format!("{name}: FAIL ({problem})\n"));
                }
            }
        }
        (healthy, report)
    }
}

/// A running scrape endpoint; stops (listener closed, accept thread
/// joined) on drop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serves the observability routes on `bind` with default options.
pub fn serve(bind: &str, health: Arc<HealthChecks>) -> std::io::Result<HttpServer> {
    serve_with(bind, health, HttpOptions::default())
}

/// Serves the observability routes on `bind`.
pub fn serve_with(
    bind: &str,
    health: Arc<HealthChecks>,
    opts: HttpOptions,
) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let active = Arc::new(AtomicUsize::new(0));
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if active.fetch_add(1, Ordering::SeqCst) >= opts.max_connections {
                active.fetch_sub(1, Ordering::SeqCst);
                continue; // over cap: drop the socket
            }
            let health = health.clone();
            let active = active.clone();
            std::thread::spawn(move || {
                let _ = serve_one(stream, &health, opts);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    Ok(HttpServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_one(stream: TcpStream, health: &HealthChecks, opts: HttpOptions) -> std::io::Result<()> {
    stream.set_read_timeout(opts.read_timeout)?;
    stream.set_write_timeout(opts.write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?).take(8192);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 2 {
        header.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = route(path, health);
    let mut stream = stream;
    stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn route(path: &str, health: &HealthChecks) -> (&'static str, &'static str, String) {
    match path {
        "/metrics" => {
            refresh_process_series();
            (
                "200 OK",
                "text/plain; version=0.0.4",
                registry().render_text(),
            )
        }
        "/metrics.json" => {
            refresh_process_series();
            ("200 OK", "application/json", registry().render_json())
        }
        "/healthz" => {
            refresh_process_series();
            let (healthy, report) = health.run();
            if healthy {
                ("200 OK", "text/plain", format!("ok\n{report}"))
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain",
                    format!("unhealthy\n{report}"),
                )
            }
        }
        "/spans" => ("200 OK", "application/json", crate::flight::dump_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn routes_answer() {
        registry().counter("telemetry.http.test").inc();
        let health = HealthChecks::new();
        health.register("always", || Ok("fine".into()));
        let server = serve("127.0.0.1:0", health).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("telemetry.http.test 1"), "{body}");
        assert!(body.contains("process.uptime_seconds"), "{body}");

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"telemetry.http.test\": 1"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("always: ok (fine)"), "{body}");

        let (head, body) = get(addr, "/spans");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"threads\":["), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }

    #[test]
    fn failing_check_yields_503() {
        let health = HealthChecks::new();
        health.register("good", || Ok("yes".into()));
        health.register("bad", || Err("broken pipe".into()));
        let server = serve("127.0.0.1:0", health).unwrap();
        let (head, body) = get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 503"), "{head}");
        assert!(body.starts_with("unhealthy\n"), "{body}");
        assert!(body.contains("good: ok (yes)"), "{body}");
        assert!(body.contains("bad: FAIL (broken pipe)"), "{body}");
    }

    #[test]
    fn server_stops_on_drop_and_port_reusable() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        let addr = server.addr();
        drop(server);
        // The listener is gone: a fresh connect must fail or be closed
        // without a response.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                let mut buf = String::new();
                // Either read error or empty: nobody served it.
                let n = s.read_to_string(&mut buf).unwrap_or(0);
                assert_eq!(n, 0, "dropped server still answered: {buf}");
            }
        }
    }
}
