//! The master-side job profiler: folds per-result [`TaskTiming`]s and
//! master phase scalars into per-job [`JobProfile`]s as results arrive.
//!
//! The observer ([`crate::observer::ClusterObserver`]) answers *who* is
//! slow; the profiler answers *why a job* was slow. It keeps one build
//! per job (bounded; oldest evicted): raw phase totals, one bounded
//! task chain per worker, and the arrival order of results. On demand
//! it assembles the waterfall: the critical path is the dispatch
//! segment followed by the task chain of the worker whose result closed
//! the job — by construction the chain that bounded wall-clock — and
//! the verdict comes from [`acc_telemetry::profile::judge`], fed the
//! critical path's phase split plus the observer's straggler flags.
//!
//! Per-task effective duration de-duplicates the wait/xfer overlap: the
//! first task of a prefetch batch carries the full take round-trip as
//! `wait_us` *and* a transfer share as `xfer_us`, so a segment counts
//! `max(wait, xfer) + compute + write`, never both halves of the same
//! round-trip. Raw phase totals stay un-deduplicated on purpose — they
//! must reconcile exactly with summed `TaskTiming` fields.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use acc_telemetry::profile::{
    judge, CriticalPath, JobProfile, PathSegment, PhaseTotals, ShardPhase, VerdictInput,
};

use crate::observer::TaskTiming;

/// Jobs retained at once; the oldest-started build is evicted first.
pub const MAX_JOBS: usize = 16;

/// Per-worker path segments retained in full detail per job. Chains
/// longer than this stay correct in total duration — only old segment
/// detail is dropped (and counted in `omitted`).
pub const MAX_SEGMENTS: usize = 256;

/// Buffered results a [`JobRecorder`] accumulates before taking the
/// build lock once for the whole batch.
pub const RECORDER_FLUSH_EVERY: usize = 64;

/// One worker's task chain within a job. Segment detail is stored
/// compact (ids and durations); [`PathSegment`]s are materialised only
/// when a profile is assembled.
#[derive(Debug, Default)]
struct WorkerChain {
    segments: VecDeque<(u64, u64)>,
    omitted: usize,
    /// Full effective busy time (wait-or-xfer + compute + write), µs.
    busy_us: u64,
    /// Space interaction along the chain (wait-or-xfer + write), µs.
    space_us: u64,
    compute_us: u64,
    tasks: u64,
}

impl WorkerChain {
    fn push(&mut self, task_id: u64, timing: &TaskTiming) {
        let space = timing.wait_us.max(timing.xfer_us) + timing.write_us;
        let effective = space + timing.compute_us;
        self.busy_us += effective;
        self.space_us += space;
        self.compute_us += timing.compute_us;
        self.tasks += 1;
        if self.segments.len() >= MAX_SEGMENTS {
            self.segments.pop_front();
            self.omitted += 1;
        }
        self.segments.push_back((task_id, effective));
    }
}

/// One job's accumulating state.
#[derive(Debug)]
struct JobBuild {
    started: Instant,
    phases: PhaseTotals,
    chains: BTreeMap<String, WorkerChain>,
    /// Worker of the most recently folded result — when the job closes,
    /// this is the worker whose result closed it.
    last_worker: String,
    tasks: u64,
    errors: u64,
    wall_ms: Option<u64>,
    fanout: Vec<ShardPhase>,
}

impl JobBuild {
    fn new() -> JobBuild {
        JobBuild {
            started: Instant::now(),
            phases: PhaseTotals::default(),
            chains: BTreeMap::new(),
            last_worker: String::new(),
            tasks: 0,
            errors: 0,
            wall_ms: None,
            fanout: Vec::new(),
        }
    }

    fn fold(&mut self, task_id: u64, worker: &str, timing: &TaskTiming, errored: bool) {
        self.phases.wait_us += timing.wait_us;
        self.phases.xfer_us += timing.xfer_us;
        self.phases.compute_us += timing.compute_us;
        self.phases.write_us += timing.write_us;
        self.tasks += 1;
        if errored {
            self.errors += 1;
        }
        if self.last_worker != worker {
            worker.clone_into(&mut self.last_worker);
        }
        if let Some(chain) = self.chains.get_mut(worker) {
            chain.push(task_id, timing);
        } else {
            let mut chain = WorkerChain::default();
            chain.push(task_id, timing);
            self.chains.insert(worker.to_owned(), chain);
        }
    }
}

/// One buffered result awaiting a [`JobRecorder`] flush. Worker names
/// are interned in the recorder, so this stays plain data.
#[derive(Debug, Clone, Copy)]
struct PendingTask {
    task_id: u64,
    worker: u32,
    timing: TaskTiming,
    errored: bool,
}

/// The master's per-result recording handle for one job: buffers results
/// locally and folds them into the shared build in batches, so the
/// result hot path pays a `Vec` push — not a lock — per task. Flushes
/// when [`RECORDER_FLUSH_EVERY`] results are pending, on
/// [`JobRecorder::flush`], and on drop; a profile scraped mid-run can
/// therefore trail the newest handful of results, never lose them.
#[derive(Debug)]
pub struct JobRecorder {
    build: Arc<Mutex<JobBuild>>,
    workers: Vec<String>,
    buf: Vec<PendingTask>,
}

impl JobRecorder {
    /// Buffers one result's timing; folds the batch on overflow.
    pub fn record_task(&mut self, task_id: u64, worker: &str, timing: &TaskTiming, errored: bool) {
        let worker = match self.workers.iter().position(|w| w == worker) {
            Some(i) => i as u32,
            None => {
                self.workers.push(worker.to_owned());
                (self.workers.len() - 1) as u32
            }
        };
        self.buf.push(PendingTask {
            task_id,
            worker,
            timing: *timing,
            errored,
        });
        if self.buf.len() >= RECORDER_FLUSH_EVERY {
            self.flush();
        }
    }

    /// Folds every buffered result into the job's build now.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut build = self.build.lock().unwrap_or_else(|e| e.into_inner());
        for p in self.buf.drain(..) {
            build.fold(
                p.task_id,
                &self.workers[p.worker as usize],
                &p.timing,
                p.errored,
            );
        }
    }
}

impl Drop for JobRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Map entry: the job's start sequence (for eviction and latest-job
/// ordering, readable without the build lock) and its shared build.
type JobEntry = (u64, Arc<Mutex<JobBuild>>);

/// Folds result-tuple timings and master phase scalars into per-job
/// waterfall profiles. Shared (`Arc`) between the master, the scrape
/// routes and `acc_top`; every method takes `&self`.
#[derive(Debug, Default)]
pub struct JobProfiler {
    jobs: Mutex<BTreeMap<String, JobEntry>>,
    next_seq: Mutex<u64>,
}

impl JobProfiler {
    /// An empty profiler.
    pub fn new() -> JobProfiler {
        JobProfiler::default()
    }

    fn build_handle(&self, job: &str) -> Arc<Mutex<JobBuild>> {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        if !jobs.contains_key(job) {
            let seq = {
                let mut seq = self.next_seq.lock().unwrap_or_else(|e| e.into_inner());
                *seq += 1;
                *seq
            };
            if jobs.len() >= MAX_JOBS {
                if let Some(oldest) = jobs
                    .iter()
                    .min_by_key(|(_, (seq, _))| *seq)
                    .map(|(name, _)| name.clone())
                {
                    jobs.remove(&oldest);
                }
            }
            jobs.insert(job.to_owned(), (seq, Arc::new(Mutex::new(JobBuild::new()))));
        }
        jobs.get(job).expect("just inserted").1.clone()
    }

    fn with_build<R>(&self, job: &str, f: impl FnOnce(&mut JobBuild) -> R) -> R {
        let handle = self.build_handle(job);
        let mut build = handle.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut build)
    }

    /// Opens (or reopens) a job's build. A rerun under the same name
    /// starts a fresh profile.
    pub fn job_started(&self, job: &str) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.remove(job);
        drop(jobs);
        self.with_build(job, |_| {});
    }

    /// A buffered per-result recording handle for `job` — what the
    /// master's aggregation loop holds. See [`JobRecorder`].
    pub fn recorder(&self, job: &str) -> JobRecorder {
        JobRecorder {
            build: self.build_handle(job),
            workers: Vec::new(),
            buf: Vec::with_capacity(RECORDER_FLUSH_EVERY),
        }
    }

    /// Folds one result tuple's timing into the job's build directly
    /// (unbuffered; the aggregation loop uses [`JobProfiler::recorder`]).
    pub fn record_task(
        &self,
        job: &str,
        task_id: u64,
        worker: &str,
        timing: &TaskTiming,
        errored: bool,
    ) {
        self.with_build(job, |b| b.fold(task_id, worker, timing, errored));
    }

    /// Records the master-side phase scalars and closes the job.
    pub fn job_finished(&self, job: &str, dispatch_us: u64, aggregation_us: u64, wall_ms: u64) {
        self.with_build(job, |b| {
            b.phases.dispatch_us = dispatch_us;
            b.phases.aggregation_us = aggregation_us;
            b.wall_ms = Some(wall_ms);
        });
    }

    /// Attaches per-shard scatter-gather attribution (grid deployments).
    pub fn record_fanout(&self, job: &str, fanout: Vec<ShardPhase>) {
        self.with_build(job, |b| b.fanout = fanout);
    }

    /// The most recently started job, if any.
    pub fn latest_job(&self) -> Option<String> {
        let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.iter()
            .max_by_key(|(_, (seq, _))| *seq)
            .map(|(name, _)| name.clone())
    }

    /// Assembles one job's profile. `stragglers` is the observer's
    /// current flag list (empty is fine). `None` for an unknown job.
    pub fn profile(&self, job: &str, stragglers: &[String]) -> Option<JobProfile> {
        let handle = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.get(job)?.1.clone()
        };
        let b = handle.lock().unwrap_or_else(|e| e.into_inner());
        let wall_ms = b
            .wall_ms
            .unwrap_or_else(|| b.started.elapsed().as_millis() as u64);

        // Critical path: dispatch, then the closing worker's chain.
        let mut segments = vec![PathSegment {
            label: "dispatch".to_owned(),
            task_id: None,
            worker: String::new(),
            duration_us: b.phases.dispatch_us,
        }];
        let empty = WorkerChain::default();
        let chain = b.chains.get(&b.last_worker).unwrap_or(&empty);
        segments.extend(
            chain
                .segments
                .iter()
                .map(|&(task_id, duration_us)| PathSegment {
                    label: format!("task {task_id}"),
                    task_id: Some(task_id),
                    worker: b.last_worker.clone(),
                    duration_us,
                }),
        );
        let critical_path = CriticalPath {
            worker: b.last_worker.clone(),
            segments,
            omitted: chain.omitted,
            total_us: b.phases.dispatch_us + chain.busy_us,
        };

        // Peer compute mean: every chain except the bounding one.
        let (mut peer_compute, mut peer_tasks) = (0u64, 0u64);
        for (name, c) in &b.chains {
            if *name != b.last_worker {
                peer_compute += c.compute_us;
                peer_tasks += c.tasks;
            }
        }
        let (verdict, evidence) = judge(&VerdictInput {
            dispatch_us: b.phases.dispatch_us,
            space_us: chain.space_us,
            compute_us: chain.compute_us,
            straggler_flagged: stragglers.contains(&b.last_worker),
            path_worker_mean_compute_us: chain.compute_us as f64 / chain.tasks.max(1) as f64,
            peer_mean_compute_us: peer_compute as f64 / peer_tasks.max(1) as f64,
        });

        Some(JobProfile {
            job: job.to_owned(),
            tasks: b.tasks,
            errors: b.errors,
            wall_ms,
            finished: b.wall_ms.is_some(),
            phases: b.phases,
            critical_path,
            fanout: b.fanout.clone(),
            verdict,
            evidence,
        })
    }

    /// The latest job's profile.
    pub fn latest_profile(&self, stragglers: &[String]) -> Option<JobProfile> {
        let job = self.latest_job()?;
        self.profile(&job, stragglers)
    }

    /// The `/profile.json` body: the latest job's profile plus the list
    /// of every retained job name. `{"job":null,"jobs":[]}` before any
    /// job has run.
    pub fn render_json(&self, stragglers: &[String]) -> String {
        let names: Vec<String> = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            let mut by_seq: Vec<(&String, u64)> =
                jobs.iter().map(|(name, (seq, _))| (name, *seq)).collect();
            by_seq.sort_by_key(|&(_, seq)| seq);
            by_seq.into_iter().map(|(name, _)| name.clone()).collect()
        };
        let mut out = match self.latest_profile(stragglers) {
            Some(profile) => {
                let body = profile.render_json();
                // Splice "jobs" into the profile object.
                body[..body.len() - 1].to_owned()
            }
            None => "{\"job\":null".to_owned(),
        };
        out.push_str(",\"jobs\":[");
        for (i, name) in names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", acc_telemetry::json_escape(name)));
        }
        out.push_str("]}");
        out
    }

    /// The `/profile` body: the latest job's waterfall, human-readable.
    pub fn render_text(&self, stragglers: &[String]) -> String {
        match self.latest_profile(stragglers) {
            Some(profile) => profile.render_text(),
            None => "no jobs profiled yet\n".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_telemetry::profile::BoundVerdict;

    fn timing(wait: u64, xfer: u64, compute: u64, write: u64) -> TaskTiming {
        TaskTiming {
            wait_us: wait,
            xfer_us: xfer,
            compute_us: compute,
            write_us: write,
        }
    }

    #[test]
    fn folds_tasks_into_phases_and_critical_path() {
        let p = JobProfiler::new();
        p.job_started("job");
        // Fast worker does three cheap tasks, slow worker two dear ones;
        // the slow worker's result arrives last.
        for id in 0..3 {
            p.record_task("job", id, "w-fast", &timing(100, 100, 2_000, 50), false);
        }
        p.record_task("job", 3, "w-slow", &timing(120, 120, 40_000, 60), false);
        p.record_task("job", 4, "w-slow", &timing(0, 110, 41_000, 60), true);
        p.job_finished("job", 900, 300, 85);

        let profile = p.profile("job", &[]).expect("job exists");
        assert_eq!(profile.tasks, 5);
        assert_eq!(profile.errors, 1);
        assert_eq!(profile.wall_ms, 85);
        assert!(profile.finished);
        // Raw totals reconcile exactly with the summed TaskTiming fields.
        assert_eq!(profile.phases.wait_us, 100 * 3 + 120);
        assert_eq!(profile.phases.xfer_us, 100 * 3 + 120 + 110);
        assert_eq!(profile.phases.compute_us, 2_000 * 3 + 40_000 + 41_000);
        assert_eq!(profile.phases.write_us, 50 * 3 + 60 * 2);
        assert_eq!(profile.phases.dispatch_us, 900);
        assert_eq!(profile.phases.aggregation_us, 300);

        // Critical path: dispatch + the slow worker's two tasks, with the
        // wait/xfer overlap de-duplicated (max, not sum).
        let cp = &profile.critical_path;
        assert_eq!(cp.worker, "w-slow");
        assert_eq!(cp.segments.len(), 3);
        assert_eq!(cp.segments[0].label, "dispatch");
        assert_eq!(cp.segments[1].duration_us, 120 + 40_000 + 60);
        assert_eq!(cp.segments[2].duration_us, 110 + 41_000 + 60);
        assert_eq!(cp.total_us, 900 + (120 + 40_000 + 60) + (110 + 41_000 + 60));

        // ~40 ms vs ~2 ms mean compute: straggler by ratio, no flag needed.
        assert_eq!(profile.verdict, BoundVerdict::StragglerBound);
        assert!(profile.evidence.contains("peers' mean compute"));
    }

    #[test]
    fn straggler_flag_overrides_ratio() {
        let p = JobProfiler::new();
        p.job_started("j");
        p.record_task("j", 0, "a", &timing(10, 10, 1_000, 5), false);
        p.record_task("j", 1, "b", &timing(10, 10, 1_100, 5), false);
        p.job_finished("j", 50, 20, 3);
        let profile = p.profile("j", &["b".to_owned()]).unwrap();
        assert_eq!(profile.verdict, BoundVerdict::StragglerBound);
        assert!(profile.evidence.contains("straggler detector"));
        // Without the flag the near-equal peers make it compute-bound.
        let unflagged = p.profile("j", &[]).unwrap();
        assert_eq!(unflagged.verdict, BoundVerdict::ComputeBound);
    }

    #[test]
    fn running_job_profiles_with_elapsed_wall() {
        let p = JobProfiler::new();
        p.job_started("live");
        p.record_task("live", 0, "w", &timing(5, 5, 100, 2), false);
        let profile = p.profile("live", &[]).unwrap();
        assert!(!profile.finished);
        let json = p.render_json(&[]);
        assert!(json.contains("\"job\":\"live\""), "{json}");
        assert!(json.contains("\"jobs\":[\"live\"]"), "{json}");
    }

    #[test]
    fn empty_profiler_renders_placeholders() {
        let p = JobProfiler::new();
        assert!(p.latest_job().is_none());
        assert_eq!(p.render_json(&[]), "{\"job\":null,\"jobs\":[]}");
        assert_eq!(p.render_text(&[]), "no jobs profiled yet\n");
    }

    #[test]
    fn job_cap_evicts_oldest_and_rerun_resets() {
        let p = JobProfiler::new();
        for i in 0..(MAX_JOBS + 3) {
            p.job_started(&format!("job-{i}"));
        }
        {
            let jobs = p.jobs.lock().unwrap();
            assert_eq!(jobs.len(), MAX_JOBS);
            assert!(!jobs.contains_key("job-0"), "oldest evicted");
        }
        assert_eq!(
            p.latest_job().as_deref(),
            Some(&*format!("job-{}", MAX_JOBS + 2))
        );

        p.record_task("job-5", 0, "w", &timing(1, 1, 1, 1), false);
        assert_eq!(p.profile("job-5", &[]).unwrap().tasks, 1);
        p.job_started("job-5");
        assert_eq!(p.profile("job-5", &[]).unwrap().tasks, 0, "rerun resets");
    }

    #[test]
    fn recorder_buffers_until_flush_and_drop_flushes() {
        let p = JobProfiler::new();
        p.job_started("buf");
        let mut rec = p.recorder("buf");
        for id in 0..3u64 {
            rec.record_task(id, "w", &timing(1, 1, 10, 1), false);
        }
        // Below the flush threshold nothing has reached the build yet.
        assert_eq!(p.profile("buf", &[]).unwrap().tasks, 0);
        rec.flush();
        assert_eq!(p.profile("buf", &[]).unwrap().tasks, 3);

        // Crossing the threshold flushes without an explicit call...
        for id in 3..(3 + RECORDER_FLUSH_EVERY as u64) {
            rec.record_task(id, "w", &timing(1, 1, 10, 1), false);
        }
        assert!(p.profile("buf", &[]).unwrap().tasks >= 3 + RECORDER_FLUSH_EVERY as u64 - 1);
        // ...and dropping the recorder flushes the remainder.
        rec.record_task(999, "w-late", &timing(1, 1, 10, 1), true);
        drop(rec);
        let profile = p.profile("buf", &[]).unwrap();
        assert_eq!(profile.tasks, 4 + RECORDER_FLUSH_EVERY as u64);
        assert_eq!(profile.errors, 1);
        assert_eq!(profile.critical_path.worker, "w-late");
    }

    #[test]
    fn segment_detail_is_bounded_but_totals_are_not() {
        let p = JobProfiler::new();
        p.job_started("big");
        for id in 0..(MAX_SEGMENTS as u64 + 10) {
            p.record_task("big", id, "w", &timing(0, 1, 9, 0), false);
        }
        let profile = p.profile("big", &[]).unwrap();
        let cp = &profile.critical_path;
        assert_eq!(
            cp.segments.len(),
            MAX_SEGMENTS + 1,
            "dispatch + bounded chain"
        );
        assert_eq!(cp.omitted, 10);
        // Omitted segments still count toward the chain total.
        assert_eq!(cp.total_us, (MAX_SEGMENTS as u64 + 10) * 10);
    }
}
