//! # acc-apps
//!
//! The three real-world applications the paper evaluates the framework
//! with (§5.1):
//!
//! * [`pricing`] — parallel Monte-Carlo simulation for stock-option
//!   pricing, using the Broadie–Glasserman random-tree algorithm to obtain
//!   high- and low-biased estimates of American option prices (with
//!   Black–Scholes as the European-option correctness oracle);
//! * [`raytrace`] — a recursive Whitted-style ray tracer whose 600×600
//!   image plane is cut into 24 strips of 25×600 pixels, one task each;
//! * [`prefetch`] — PageRank-based web-page pre-fetching: a synthetic web
//!   cluster, link parsing, the paper's stochastic-matrix construction,
//!   strip-parallel power iteration, and an LRU cache measuring the
//!   prefetch hit-rate gain.
//!
//! Each application implements [`acc_core::Application`] (so the framework
//! can run it) plus a sequential baseline used by the evaluation's speedup
//! comparisons and by correctness tests (parallel output must equal the
//! sequential output exactly where the algorithm is deterministic).

#![warn(missing_docs)]

pub mod prefetch;
pub mod pricing;
pub mod raytrace;

mod rng;

pub use rng::SplitMix64;
