//! [`Payload`] codecs for [`Value`], [`Tuple`] and [`Template`] — what the
//! remote-space protocol (and anything else that ships tuples across a
//! wire) serializes.

use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::template::{Constraint, Template};
use crate::tuple::Tuple;
use crate::value::Value;

impl Payload for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::Int(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            Value::Float(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            Value::Bool(v) => {
                w.put_u8(2);
                w.put_bool(*v);
            }
            Value::Str(v) => {
                w.put_u8(3);
                w.put_str(v);
            }
            Value::Bytes(v) => {
                w.put_u8(4);
                w.put_blob(v);
            }
            Value::List(items) => {
                w.put_u8(5);
                w.put_u32(items.len() as u32);
                for item in items {
                    item.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            0 => Ok(Value::Int(r.get_i64()?)),
            1 => Ok(Value::Float(r.get_f64()?)),
            2 => Ok(Value::Bool(r.get_bool()?)),
            3 => Ok(Value::Str(r.get_str()?)),
            // Zero-copy: the decoded value is a view into the frame.
            4 => Ok(Value::Bytes(r.get_bytes()?)),
            5 => {
                let n = r.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(PayloadError::Corrupt("list length"));
                }
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(r)?);
                }
                Ok(Value::List(items))
            }
            _ => Err(PayloadError::Corrupt("value tag")),
        }
    }
}

impl Payload for Tuple {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self.type_name());
        w.put_u32(self.len() as u32);
        for (name, value) in self.fields() {
            w.put_str(name);
            value.encode(w);
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        let type_name = r.get_name()?;
        let n = r.get_u32()? as usize;
        if n > 1 << 16 {
            return Err(PayloadError::Corrupt("field count"));
        }
        let mut fields = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.get_name()?;
            let value = Value::decode(r)?;
            fields.push((name, value));
        }
        Ok(Tuple::from_decoded(type_name, fields))
    }
}

impl Payload for Template {
    fn encode(&self, w: &mut WireWriter) {
        match self.type_name() {
            Some(ty) => {
                w.put_bool(true);
                w.put_str(ty);
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.constraints().len() as u32);
        for (name, constraint) in self.constraints() {
            w.put_str(name);
            match constraint {
                Constraint::Exact(v) => {
                    w.put_u8(0);
                    v.encode(w);
                }
                Constraint::OneOf(vs) => {
                    w.put_u8(1);
                    w.put_u32(vs.len() as u32);
                    for v in vs {
                        v.encode(w);
                    }
                }
                Constraint::IntRange(lo, hi) => {
                    w.put_u8(2);
                    w.put_i64(*lo);
                    w.put_i64(*hi);
                }
                Constraint::FloatRange(lo, hi) => {
                    w.put_u8(3);
                    w.put_f64(*lo);
                    w.put_f64(*hi);
                }
                Constraint::Exists => w.put_u8(4),
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        let type_name = if r.get_bool()? {
            Some(r.get_name()?)
        } else {
            None
        };
        let n = r.get_u32()? as usize;
        if n > 1 << 16 {
            return Err(PayloadError::Corrupt("constraint count"));
        }
        let mut constraints = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.get_str()?;
            let constraint = match r.get_u8()? {
                0 => Constraint::Exact(Value::decode(r)?),
                1 => {
                    let k = r.get_u32()? as usize;
                    if k > 1 << 16 {
                        return Err(PayloadError::Corrupt("one-of length"));
                    }
                    let mut vs = Vec::with_capacity(k.min(1024));
                    for _ in 0..k {
                        vs.push(Value::decode(r)?);
                    }
                    Constraint::OneOf(vs)
                }
                2 => {
                    let lo = r.get_i64()?;
                    let hi = r.get_i64()?;
                    Constraint::IntRange(lo, hi)
                }
                3 => {
                    let lo = r.get_f64()?;
                    let hi = r.get_f64()?;
                    Constraint::FloatRange(lo, hi)
                }
                4 => Constraint::Exists,
                _ => return Err(PayloadError::Corrupt("constraint tag")),
            };
            constraints.push((name, constraint));
        }
        Ok(Template::from_decoded(type_name, constraints))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_tuple() -> Tuple {
        Tuple::build("acc.task")
            .field("id", 42i64)
            .field("weight", -1.5f64)
            .field("live", true)
            .field("label", "strip-3")
            .field("payload", vec![0u8, 255, 128])
            .field(
                "coords",
                vec![
                    Value::Int(1),
                    Value::Str("x".into()),
                    Value::List(vec![Value::Bool(false)]),
                ],
            )
            .done()
    }

    #[test]
    fn value_roundtrip_all_variants() {
        for v in [
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Bool(true),
            Value::Str("héllo".into()),
            Value::from(vec![1u8, 2, 3]),
            Value::List(vec![Value::Int(1), Value::List(vec![])]),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = rich_tuple();
        assert_eq!(Tuple::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn template_roundtrip_all_constraints() {
        let tmpl = Template::build("acc.task")
            .eq("id", 42i64)
            .one_of("label", vec!["a".into(), "b".into()])
            .int_range("x", -5, 5)
            .float_range("y", 0.0, 1.0)
            .exists("payload")
            .done();
        let decoded = Template::from_bytes(&tmpl.to_bytes()).unwrap();
        assert_eq!(decoded, tmpl);

        let any = Template::any_type().exists("k").done();
        assert_eq!(Template::from_bytes(&any.to_bytes()).unwrap(), any);
    }

    #[test]
    fn decoded_template_still_matches() {
        let tmpl = Template::build("acc.task").eq("id", 42i64).done();
        let decoded = Template::from_bytes(&tmpl.to_bytes()).unwrap();
        assert!(decoded.matches(&rich_tuple()));
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert!(Value::from_bytes(&[9]).is_err());
        let mut bytes = rich_tuple().to_bytes();
        let last = bytes.len() - 1;
        bytes.truncate(last);
        assert!(Tuple::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decoded_bytes_value_views_the_frame() {
        let t = Tuple::build("blob").field("payload", vec![7u8; 64]).done();
        let frame = bytes::Bytes::from(t.to_bytes());
        let frame_ptr = frame.as_ref().as_ptr();
        let frame_len = frame.len();
        let mut r = WireReader::new(frame);
        let decoded = Tuple::decode(&mut r).unwrap();
        let view = decoded.get_bytes("payload").unwrap();
        let view_ptr = view.as_ptr() as usize;
        let lo = frame_ptr as usize;
        assert!(
            view_ptr >= lo && view_ptr + view.len() <= lo + frame_len,
            "decoded blob must alias the frame, not a copy"
        );
    }

    #[test]
    fn length_caps_reject_at_boundary() {
        // Value::List: > 2^20 items is corrupt, exactly the cap is merely
        // truncated (the items aren't there).
        let mut w = WireWriter::new();
        w.put_u8(5);
        w.put_u32((1 << 20) + 1);
        assert_eq!(
            Value::from_bytes(w.as_slice()),
            Err(PayloadError::Corrupt("list length"))
        );
        let mut w = WireWriter::new();
        w.put_u8(5);
        w.put_u32(1 << 20);
        assert_eq!(
            Value::from_bytes(w.as_slice()),
            Err(PayloadError::Truncated)
        );

        // Tuple: > 2^16 fields is corrupt.
        let mut w = WireWriter::new();
        w.put_str("t");
        w.put_u32((1 << 16) + 1);
        assert_eq!(
            Tuple::from_bytes(w.as_slice()),
            Err(PayloadError::Corrupt("field count"))
        );
        let mut w = WireWriter::new();
        w.put_str("t");
        w.put_u32(1 << 16);
        assert_eq!(
            Tuple::from_bytes(w.as_slice()),
            Err(PayloadError::Truncated)
        );

        // Template: constraint count and one-of caps.
        let mut w = WireWriter::new();
        w.put_bool(false);
        w.put_u32((1 << 16) + 1);
        assert_eq!(
            Template::from_bytes(w.as_slice()),
            Err(PayloadError::Corrupt("constraint count"))
        );
        let mut w = WireWriter::new();
        w.put_bool(false);
        w.put_u32(1);
        w.put_str("f");
        w.put_u8(1); // OneOf
        w.put_u32((1 << 16) + 1);
        assert_eq!(
            Template::from_bytes(w.as_slice()),
            Err(PayloadError::Corrupt("one-of length"))
        );
    }

    #[test]
    fn interned_decode_shares_names_across_tuples() {
        use crate::payload::{decode_frame, NameInterner};
        use std::sync::Arc as StdArc;
        let a = Tuple::build("acc.task").field("task_id", 1i64).done();
        let b = Tuple::build("acc.task").field("task_id", 2i64).done();
        let mut cache = NameInterner::new();
        let da: Tuple = decode_frame(bytes::Bytes::from(a.to_bytes()), &mut cache).unwrap();
        let db: Tuple = decode_frame(bytes::Bytes::from(b.to_bytes()), &mut cache).unwrap();
        assert_eq!(da, a);
        assert_eq!(db, b);
        // One allocation per distinct name across both frames.
        assert!(StdArc::ptr_eq(&da.fields()[0].0, &db.fields()[0].0));
    }
}
