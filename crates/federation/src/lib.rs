//! # acc-federation
//!
//! A Jini-style service federation (paper §3): the runtime infrastructure
//! through which the JavaSpaces service is published and found.
//!
//! * A [`DiscoveryBus`] stands in for the Jini multicast discovery protocol:
//!   lookup services announce their presence on a well-known bus; clients
//!   broadcast a discovery request and receive the registered lookup
//!   services.
//! * A [`LookupService`] maintains the mapping between each service and its
//!   [`Attributes`]; clients perform associative lookup by attribute subset.
//! * [`Registrar`] implements the join protocol: discover all lookup
//!   services, register with each under a lease, and renew.
//!
//! Service proxies are `Arc<dyn Any + Send + Sync>` — the analogue of the
//! serialized proxy object a Jini client downloads: the tuple-space handle
//! itself travels through the lookup service.
//!
//! ```
//! use acc_federation::{Attributes, DiscoveryBus, LookupService, ServiceItem};
//! use std::sync::Arc;
//!
//! let bus = DiscoveryBus::new();
//! let lookup = LookupService::new("lus-0");
//! bus.announce(lookup.clone());
//!
//! // A service provider joins the federation…
//! let item = ServiceItem::new(
//!     "JavaSpaces",
//!     Attributes::build().set("kind", "tuple-space").done(),
//!     Arc::new(42u32),
//! );
//! lookup.register(item, None).unwrap();
//!
//! // …and a client discovers and queries it.
//! let found = bus.discover()[0]
//!     .lookup(&Attributes::build().set("kind", "tuple-space").done());
//! assert_eq!(found.len(), 1);
//! assert_eq!(*found[0].proxy::<u32>().unwrap(), 42);
//! ```

#![warn(missing_docs)]

mod attributes;
mod discovery;
mod lookup;
mod registrar;
mod series;

pub use attributes::Attributes;
pub use discovery::{DiscoveryBus, DiscoveryEvent};
pub use lookup::{LookupError, LookupService, ServiceId, ServiceItem, ServiceRegistration};
pub use registrar::Registrar;
