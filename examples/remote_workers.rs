//! Deployment-shaped demo: the master hosts the space and serves it over
//! TCP; workers reach it through `RemoteSpace` proxies — the way worker
//! machines on a real network would (JavaSpaces is a *network-accessible*
//! repository).
//!
//! Run with: `cargo run --release --example remote_workers`
//!
//! Observability: set `ACC_OBSERVE=127.0.0.1:9137` to mount the scrape
//! endpoint (including the `/cluster` federation view), `ACC_METRICS_MS=<n>`
//! to override the heartbeat interval, and pass `--hold-ms <n>` to keep
//! the cluster alive after the run so it can be scraped live.

use std::sync::Arc;
use std::time::Duration;

use adaptive_spaces::apps::pricing::{price_sequential, OptionSpec, PricingApp};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{ClusterBuilder, FrameworkConfig};
use adaptive_spaces::space::{RemoteSpace, Template, TupleStore};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hold_ms: Option<u64> = args.iter().position(|a| a == "--hold-ms").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--hold-ms needs a number");
                std::process::exit(2);
            })
    });
    let metrics_interval = std::env::var("ACC_METRICS_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map(Duration::from_millis);
    let mut config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    if let Some(interval) = metrics_interval {
        config.metrics_interval = interval;
    }
    let mut cluster = ClusterBuilder::new(config).build();
    let mut app = PricingApp::new(OptionSpec::paper_default(), 20, 50);
    cluster.install(&app);

    // Serve the space over TCP and attach three remote workers.
    let addr = cluster.serve_space().expect("bind loopback");
    println!("space served at {addr}");
    for i in 0..3 {
        let id = cluster
            .add_remote_worker(NodeSpec::new(format!("remote-{i}"), 800, 256))
            .expect("remote worker connects");
        println!("remote-{i} registered as {id}");
    }

    // An external observer can also watch the space over the wire.
    let observer = Arc::new(RemoteSpace::connect(addr).expect("observer connects"));
    let observer2 = observer.clone();
    let watcher = std::thread::spawn(move || {
        let template = Template::of_type("acc.task");
        let mut max_seen = 0usize;
        for _ in 0..200 {
            if let Ok(n) = observer2.count(&template) {
                max_seen = max_seen.max(n);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        max_seen
    });

    let report = cluster.run(&mut app);
    let tasks_in_flight = watcher.join().unwrap();

    println!();
    println!(
        "run complete: {}/{} results in {:.1} ms",
        report.results_collected, report.times.tasks, report.times.parallel_ms
    );
    println!("peak tasks visible to the remote observer: {tasks_in_flight}");
    let parallel = app.result();
    let sequential = price_sequential(&PricingApp::new(OptionSpec::paper_default(), 20, 50));
    assert_eq!(parallel, sequential, "remote run is bit-identical");
    println!(
        "price bracket: high {:.4} / low {:.4} (identical to sequential)",
        parallel.high, parallel.low
    );
    for worker in cluster.workers() {
        println!("  {}: {} tasks", worker.name(), worker.tasks_done());
    }
    if let Some(ms) = hold_ms {
        match cluster.observe_addr() {
            Some(addr) => println!("holding for {ms} ms; observability endpoint at http://{addr}"),
            None => println!("holding for {ms} ms (set ACC_OBSERVE=127.0.0.1:0 for an endpoint)"),
        }
        std::thread::sleep(Duration::from_millis(ms));
    }
    cluster.shutdown();
}
