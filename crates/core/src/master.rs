//! The master module (paper §4.1–4.2).
//!
//! The master defines the problem domain: it decomposes the application
//! into independent tasks during the *task-planning* phase, writes them
//! into the space, and during the *result-aggregation* phase removes result
//! entries and assimilates them into the final solution. All of the paper's
//! master-side metrics (task planning time, task aggregation time, max
//! worker time, parallel time, max master overhead) are measured here.

use std::time::{Duration, Instant};

use acc_telemetry::span;
use acc_tuplespace::{SpaceError, StoreHandle};

use crate::metrics::PhaseTimes;
use crate::series::series;
use crate::task::{result_template, Application, ExecError, ResultEntry, TaskEntry};

/// Outcome of one application run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Phase timings (the paper's figures plot these).
    pub times: PhaseTimes,
    /// Results successfully collected and absorbed.
    pub results_collected: usize,
    /// Per-task aggregation failures (decode errors etc.).
    pub failures: Vec<(u64, ExecError)>,
    /// True when every planned task's result arrived before the deadline.
    pub complete: bool,
}

/// The master process: task planning and result aggregation over a space.
#[derive(Clone)]
pub struct Master {
    space: StoreHandle,
    /// How long to wait for each outstanding result before giving up.
    pub result_timeout: Duration,
}

impl Master {
    /// Creates a master over a space (local or remote).
    pub fn new(space: StoreHandle) -> Master {
        Master {
            space,
            result_timeout: Duration::from_secs(60),
        }
    }

    /// Runs an application end-to-end: plan → (workers compute) → aggregate.
    ///
    /// Returns a [`RunReport`] with the paper's phase timings. If a result
    /// does not arrive within `result_timeout`, aggregation stops and the
    /// report is marked incomplete (`complete == false`).
    ///
    /// Task and result entries are matched by job name only, so a run
    /// assumes a space with no leftover entries for this job. Re-running a
    /// job after an incomplete run on the *same* space would mix the old
    /// run's stragglers into the new aggregation — use a fresh space (as
    /// [`crate::AdaptiveCluster`] does) or drain the job's entries first.
    pub fn run(&self, app: &mut dyn Application) -> Result<RunReport, SpaceError> {
        let job = app.job_name();
        let run_start = Instant::now();
        let mut times = PhaseTimes::default();

        // ------------------------------------------------------------
        // Task-planning phase.
        // ------------------------------------------------------------
        let planning_start = Instant::now();
        let mut max_overhead = 0.0f64;
        let specs = {
            let _span = span!("master.planning", job = job.as_str());
            let specs = app.plan();
            times.tasks = specs.len();
            for spec in &specs {
                let per_task = Instant::now();
                let entry = TaskEntry::new(job.clone(), spec.task_id, spec.payload.clone());
                self.space.write(entry.to_tuple())?;
                max_overhead = max_overhead.max(ms_since(per_task));
            }
            specs
        };
        times.task_planning_ms = ms_since(planning_start);
        series().tasks_planned.add(specs.len() as u64);

        // ------------------------------------------------------------
        // Result-aggregation phase. The master blocks on the space until
        // each outstanding result arrives; workers run concurrently.
        // ------------------------------------------------------------
        let template = result_template(&job);
        let mut report = RunReport::default();
        let aggregation_start = Instant::now();
        let mut aggregation_busy = 0.0f64;
        let aggregation_span = span!(
            "master.aggregation",
            job = job.as_str(),
            tasks = specs.len()
        );
        for _ in 0..specs.len() {
            let Some(tuple) = self.space.take(&template, Some(self.result_timeout))? else {
                break; // deadline: a worker died or was stopped for good
            };
            let per_task = Instant::now();
            match ResultEntry::from_tuple(&tuple) {
                None => report
                    .failures
                    .push((u64::MAX, ExecError::App("malformed result entry".into()))),
                Some(result) => {
                    times.max_worker_ms = times.max_worker_ms.max(result.span_ms);
                    let slot = times
                        .per_worker_ms
                        .entry(result.worker.clone())
                        .or_insert(0.0);
                    *slot = slot.max(result.span_ms);
                    match result.error {
                        // A poison task exhausted its retries: account for
                        // it so the run terminates, but report the failure.
                        Some(error) => report
                            .failures
                            .push((result.task_id, ExecError::App(error))),
                        None => match app.absorb(result.task_id, &result.payload) {
                            Ok(()) => report.results_collected += 1,
                            Err(e) => report.failures.push((result.task_id, e)),
                        },
                    }
                }
            }
            let elapsed = ms_since(per_task);
            aggregation_busy += elapsed;
            max_overhead = max_overhead.max(elapsed);
        }
        drop(aggregation_span);
        // Task aggregation time is the wall time of the aggregation phase:
        // it tracks max worker time, since the master waits for the last
        // task to complete (paper §5.2.1).
        times.task_aggregation_ms = ms_since(aggregation_start);
        let _ = aggregation_busy;
        times.max_master_overhead_ms = max_overhead;
        times.parallel_ms = ms_since(run_start);
        report.complete = report.results_collected == specs.len();
        times.publish();
        series().master_runs.inc();
        series()
            .results_collected
            .add(report.results_collected as u64);
        report.times = times;
        Ok(report)
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{task_template, TaskExecutor, TaskSpec};
    use acc_tuplespace::{Payload, Space, SpaceHandle};
    use std::sync::Arc;

    /// Doubles each input; trivially correct so aggregation is checkable.
    struct Doubler {
        n: u64,
        outputs: Vec<u64>,
    }

    impl Application for Doubler {
        fn job_name(&self) -> String {
            "double".into()
        }
        fn bundle_name(&self) -> String {
            "double-bundle".into()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            (0..self.n).map(|i| TaskSpec::new(i, &(i * 10))).collect()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            struct Exec;
            impl TaskExecutor for Exec {
                fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                    let x: u64 = task.input()?;
                    Ok((x * 2).to_bytes())
                }
            }
            Arc::new(Exec)
        }
        fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
            self.outputs
                .push(u64::from_bytes(payload).map_err(ExecError::Decode)?);
            Ok(())
        }
    }

    /// A bare-bones inline worker: takes tasks, executes, writes results.
    fn spawn_inline_worker(
        space: SpaceHandle,
        job: &str,
        exec: Arc<dyn TaskExecutor>,
        name: &str,
    ) -> std::thread::JoinHandle<()> {
        let template = task_template(job);
        let job = job.to_owned();
        let name = name.to_owned();
        std::thread::spawn(move || {
            let first = Instant::now();
            while let Ok(Some(tuple)) = space.take(&template, Some(Duration::from_millis(200))) {
                let task = TaskEntry::from_tuple(&tuple).unwrap();
                let t0 = Instant::now();
                let payload = exec.execute(&task).unwrap();
                let result = ResultEntry {
                    job: job.clone(),
                    task_id: task.task_id,
                    worker: name.clone(),
                    payload,
                    compute_ms: ms_since(t0),
                    span_ms: ms_since(first),
                    error: None,
                };
                space.write(result.to_tuple()).unwrap();
            }
        })
    }

    #[test]
    fn plan_compute_aggregate_roundtrip() {
        let space = Space::new("test");
        let mut app = Doubler {
            n: 20,
            outputs: vec![],
        };
        let exec = app.executor();
        let w1 = spawn_inline_worker(space.clone(), "double", exec.clone(), "w1");
        let w2 = spawn_inline_worker(space.clone(), "double", exec, "w2");
        let master = Master::new(space.clone());
        let report = master.run(&mut app).unwrap();
        w1.join().unwrap();
        w2.join().unwrap();

        assert!(report.complete);
        assert_eq!(report.results_collected, 20);
        assert!(report.failures.is_empty());
        let mut outputs = app.outputs.clone();
        outputs.sort_unstable();
        assert_eq!(outputs, (0..20).map(|i| i * 20).collect::<Vec<_>>());
        assert_eq!(report.times.tasks, 20);
        assert!(report.times.parallel_ms > 0.0);
        assert!(report.times.task_planning_ms >= 0.0);
        assert!(report.times.workers_used() >= 1);
        // The space is drained: no leftover tasks or results.
        assert_eq!(space.len(), 0);
    }

    #[test]
    fn missing_worker_times_out_incomplete() {
        let space = Space::new("test");
        let mut app = Doubler {
            n: 3,
            outputs: vec![],
        };
        let mut master = Master::new(space.clone());
        master.result_timeout = Duration::from_millis(50);
        let report = master.run(&mut app).unwrap();
        assert!(!report.complete);
        assert_eq!(report.results_collected, 0);
        // Tasks remain in the space for a future worker.
        assert_eq!(space.count(&task_template("double")), 3);
    }

    #[test]
    fn aggregation_tracks_worker_spans() {
        let space = Space::new("test");
        // Hand-write two results with known spans before running aggregation.
        let mut app = Doubler {
            n: 2,
            outputs: vec![],
        };
        let master = Master::new(space.clone());
        // Pre-seed results; plan() writes tasks but the workers "already ran".
        for (id, span) in [(0u64, 120.0f64), (1, 80.0)] {
            let r = ResultEntry {
                job: "double".into(),
                task_id: id,
                worker: format!("w{id}"),
                payload: (id * 7).to_bytes(),
                compute_ms: span / 2.0,
                span_ms: span,
                error: None,
            };
            space.write(r.to_tuple()).unwrap();
        }
        let report = master.run(&mut app).unwrap();
        assert!(report.complete);
        assert_eq!(report.times.max_worker_ms, 120.0);
        assert_eq!(report.times.per_worker_ms["w0"], 120.0);
        assert_eq!(report.times.per_worker_ms["w1"], 80.0);
    }
}
