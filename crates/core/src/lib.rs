//! # acc-core
//!
//! The adaptive cluster-computing framework itself — the paper's primary
//! contribution (§4). It wires the substrates together:
//!
//! * the **master module** ([`Master`]) decomposes an application into
//!   tasks, writes them into a JavaSpaces-style [`acc_tuplespace::Space`],
//!   and aggregates the results the workers write back;
//! * the **worker module** ([`WorkerRuntime`]) is a thin, remotely
//!   configured process: application code arrives as a [`CodeBundle`] at
//!   runtime, tasks are pulled from the space by value-based lookup, and a
//!   state machine (Running / Paused / Stopped) obeys management signals
//!   *between* tasks — the current task always completes and its result is
//!   written back, so work is never lost;
//! * the **network management module** ([`MonitoringAgent`] +
//!   [`InferenceEngine`] + the rule-base protocol in [`rulebase`]) polls
//!   each worker's CPU load over SNMP and maps it to Start / Stop / Pause /
//!   Resume signals using threshold rules, keeping the framework
//!   non-intrusive on machines their owners are using.
//!
//! [`AdaptiveCluster`] assembles all of the above for the common case; see
//! the `examples/` directory of the workspace for end-to-end usage.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod framework;
pub mod inference;
pub mod loader;
pub mod master;
pub mod metrics;
pub mod monitor;
pub mod policy;
pub mod rulebase;
mod series;
pub mod signal;
pub mod task;
pub mod worker;

pub use checkpoint::CheckpointState;
pub use config::{FrameworkConfig, Thresholds};
pub use framework::{AdaptiveCluster, ClusterBuilder};
pub use inference::{desired_for_load, DesiredState, InferenceEngine};
pub use loader::{BundleServer, CodeBundle, ExecutorRegistry};
pub use master::{Master, RunReport};
pub use metrics::PhaseTimes;
pub use monitor::{DecisionLogEntry, MonitoringAgent};
pub use policy::{execute_policed, ExecutionPolicy, PolicedError, PolicyViolation};
pub use rulebase::{client_register, duplex_pair, Duplex, RuleBaseServer, RuleMessage, WorkerId};
pub use signal::{Signal, SignalLogEntry, WorkerState};
pub use task::{
    result_template, task_template, tuple_trace_context, Application, ExecError, ResultEntry,
    TaskEntry, TaskExecutor, TaskSpec,
};
pub use worker::{WorkerConfig, WorkerRuntime};
