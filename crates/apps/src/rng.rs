//! A tiny deterministic RNG used where bit-for-bit reproducibility across
//! task/sequential execution matters.
//!
//! `rand`'s `SmallRng` makes no cross-version stability promise, and the
//! evaluation requires that a task executed on a worker produce *exactly*
//! the bytes the sequential baseline produces. SplitMix64 is 10 lines,
//! well-studied, and stable by construction. (General-purpose randomness
//! elsewhere still uses `rand`.)

/// SplitMix64: fast, full-period 64-bit generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `(0, 1)` — never exactly zero (safe for `ln`).
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let v = self.next_f64();
            if v > 0.0 {
                return v;
            }
        }
    }

    /// A standard normal deviate via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_open_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping is fine for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SplitMix64::new(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
