//! A one-shard grid is observationally a plain remote space.
//!
//! The grid's whole contract is "the `TupleStore` you already had, only
//! partitioned" — so with the partition count at 1 there must be no
//! observable difference from talking to the single server directly.
//! The property test drives the same random operation sequence (the
//! tuple/template strategies mirror the wire-protocol codec props) into
//! both clients and compares every result.
//!
//! Also here: routing stability — the placement hash is pure content
//! addressing, so independently connected clients (and reconnected
//! ones) must agree on every tuple's owner shard.

use std::time::Duration;

use acc_spacegrid::{route_tuple, tuple_hash, PartitionedSpace};
use acc_tuplespace::{
    RemoteSpace, Space, SpaceHandle, SpaceServer, Template, Tuple, TupleStore, Value,
};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Arbitrary bit patterns: NaN payloads must behave identically
        // through the grid too (Value compares bitwise).
        any::<u64>().prop_map(|bits| Value::Float(f64::from_bits(bits))),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::from),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (
        // A narrow name space so templates actually hit tuples.
        "[ab]{1,2}",
        proptest::collection::btree_map("[mn]{1,2}", arb_value(), 0..4),
    )
        .prop_map(|(ty, fields)| {
            let mut builder = Tuple::build(ty.as_str());
            for (name, value) in fields {
                builder = builder.field(name, value);
            }
            builder.done()
        })
}

fn arb_template() -> impl Strategy<Value = Template> {
    (
        "[ab]{1,2}",
        proptest::collection::btree_map("[mn]{1,2}", -3i64..3, 0..3),
    )
        .prop_map(|(ty, fields)| {
            let mut builder = Template::build(ty.as_str());
            for (name, value) in fields {
                builder = builder.eq(name, value);
            }
            builder.done()
        })
}

/// One step of the observable-behaviour script.
#[derive(Debug, Clone)]
enum Op {
    Write(Tuple),
    WriteAll(Vec<Tuple>),
    ReadIfExists(Template),
    TakeIfExists(Template),
    TakeUpTo(Template, usize),
    TakeAll(Template),
    Count(Template),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_tuple().prop_map(Op::Write),
        proptest::collection::vec(arb_tuple(), 0..5).prop_map(Op::WriteAll),
        arb_template().prop_map(Op::ReadIfExists),
        arb_template().prop_map(Op::TakeIfExists),
        (arb_template(), 0usize..6).prop_map(|(t, max)| Op::TakeUpTo(t, max)),
        arb_template().prop_map(Op::TakeAll),
        arb_template().prop_map(Op::Count),
    ]
}

/// Applies one op to any store and renders the observable outcome.
/// Entry ids are deliberately *not* part of the observation: they are
/// handles, not contents, and two fresh spaces may number differently.
fn apply(store: &dyn TupleStore, op: &Op) -> String {
    match op {
        Op::Write(t) => format!("write {:?}", store.write(t.clone()).is_ok()),
        Op::WriteAll(ts) => format!(
            "write_all {:?}",
            store.write_all(ts.clone()).map(|ids| ids.len())
        ),
        Op::ReadIfExists(t) => format!("read {:?}", store.read_if_exists(t)),
        Op::TakeIfExists(t) => format!("take {:?}", store.take_if_exists(t)),
        Op::TakeUpTo(t, max) => format!(
            "take_up_to {:?}",
            store.take_up_to(t, *max, Some(Duration::ZERO))
        ),
        Op::TakeAll(t) => format!("take_all {:?}", store.take_all(t)),
        Op::Count(t) => format!("count {:?}", store.count(t)),
    }
}

fn serve(name: &str) -> (SpaceHandle, SpaceServer) {
    let space = Space::new(name);
    let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
    (space, server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_shard_grid_is_observationally_a_remote_space(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let (_plain_space, plain_server) = serve("plain");
        let (_shard_space, shard_server) = serve("shard");
        let plain = RemoteSpace::connect(plain_server.addr()).unwrap();
        let grid = PartitionedSpace::connect(&[shard_server.addr()]).unwrap();
        for (step, op) in ops.iter().enumerate() {
            let direct = apply(&plain, op);
            let through_grid = apply(&grid, op);
            prop_assert_eq!(
                &direct, &through_grid,
                "step {} diverged on {:?}", step, op
            );
        }
        // Closing behaves identically too.
        plain.close();
        grid.close();
        prop_assert!(plain.is_closed());
        prop_assert!(grid.is_closed());
    }

    #[test]
    fn placement_hash_is_pure_content_addressing(tuple in arb_tuple(), shards in 1usize..9) {
        // Same content, independently built: same hash, same owner.
        let copy = {
            let mut b = Tuple::build(tuple.type_name());
            for (name, value) in tuple.fields() {
                b = b.field(name.as_ref(), value.clone());
            }
            b.done()
        };
        prop_assert_eq!(tuple_hash(&tuple, &[]), tuple_hash(&copy, &[]));
        prop_assert_eq!(
            route_tuple(&tuple, &[], shards),
            route_tuple(&copy, &[], shards)
        );
        prop_assert!(route_tuple(&tuple, &[], shards) < shards);
    }
}

/// A reconnected client is a *new* `PartitionedSpace` with fresh TCP
/// connections — and it must still place every tuple exactly where the
/// first client did, or routed lookups would go blind after failover.
#[test]
fn routing_is_stable_across_reconnects() {
    let rigs: Vec<(SpaceHandle, SpaceServer)> = (0..4).map(|i| serve(&format!("s{i}"))).collect();
    let addrs: Vec<_> = rigs.iter().map(|(_, server)| server.addr()).collect();
    let tuples: Vec<Tuple> = (0..48)
        .map(|i| {
            Tuple::build("acc.task")
                .field("job", "stable")
                .field("task_id", i as i64)
                .done()
        })
        .collect();

    let first = PartitionedSpace::connect(&addrs).unwrap();
    for t in &tuples {
        first.write(t.clone()).unwrap();
    }
    let placement: Vec<usize> = rigs.iter().map(|(space, _)| space.len()).collect();
    drop(first);

    // A fresh client (same shard list) writes identical copies: every
    // shard must end up with exactly twice its original share.
    let second = PartitionedSpace::connect(&addrs).unwrap();
    for t in &tuples {
        second.write(t.clone()).unwrap();
    }
    for ((space, _), &before) in rigs.iter().zip(&placement) {
        assert_eq!(
            space.len(),
            before * 2,
            "reconnected client placed tuples on a different shard"
        );
    }

    // And the pure router agrees with where the tuples actually went.
    for t in &tuples {
        let owner = route_tuple(t, &[], addrs.len());
        let point = Template::build("acc.task")
            .eq("job", "stable")
            .eq("task_id", t.get_int("task_id").unwrap())
            .done();
        assert_eq!(rigs[owner].0.count(&point), 2);
    }
}
