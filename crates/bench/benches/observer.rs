//! Micro-benchmarks of the metrics-federation plane: what the hot paths
//! pay for history rings and heartbeat handling, and what one federated
//! metric tuple costs end to end (encode → space write → collector drain
//! → ingest). The federation ticks at ~1 Hz per worker, so these numbers
//! bound its steady-state overhead to microseconds per second of runtime.

use criterion::{criterion_group, criterion_main, Criterion};

use acc_cluster::observer::now_ms;
use acc_cluster::{metrics_template, ClusterObserver, MetricsReport, ObserverConfig, TaskTiming};
use acc_telemetry::HistoryRing;
use acc_tuplespace::Space;

fn report(worker: &str, seq: u64) -> MetricsReport {
    MetricsReport {
        worker: worker.into(),
        seq,
        at_ms: now_ms(),
        total_load: 37,
        framework_load: 12,
        tasks_done: seq * 3,
    }
}

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer/ring");
    group.bench_function("record", |b| {
        let ring = HistoryRing::new(256);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            ring.record(t, (t % 100) as i64);
        });
    });
    group.bench_function("stats_full_ring", |b| {
        let ring = HistoryRing::new(256);
        for t in 0..256u64 {
            ring.record(t, (t % 100) as i64);
        }
        b.iter(|| ring.stats());
    });
    group.finish();
}

fn bench_report_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer/report");
    let r = report("bench-worker", 42);
    group.bench_function("encode", |b| b.iter(|| r.encode()));
    let bytes = r.encode();
    group.bench_function("decode", |b| {
        b.iter(|| MetricsReport::decode("bench-worker", &bytes).unwrap())
    });
    group.bench_function("to_tuple", |b| b.iter(|| r.to_tuple()));
    group.finish();
}

/// The full federated publish path: a worker-side heartbeat tuple written
/// into the space, drained by the collector, decoded and folded into the
/// hub — the per-interval cost of one worker's federation.
fn bench_publish_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer/publish");
    group.bench_function("write_drain_ingest", |b| {
        let space = Space::new("bench-metrics");
        let hub = ClusterObserver::new(ObserverConfig::default());
        let template = metrics_template();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            space.write(report("bench-worker", seq).to_tuple()).unwrap();
            for tuple in space.take_all(&template).unwrap() {
                let r = MetricsReport::from_tuple(&tuple).unwrap();
                assert!(hub.ingest(&r));
            }
        });
    });
    group.finish();
}

fn bench_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer/hub");
    group.bench_function("record_attribution", |b| {
        let hub = ClusterObserver::new(ObserverConfig::default());
        let timing = TaskTiming {
            wait_us: 120,
            xfer_us: 40,
            compute_us: 5_000,
            write_us: 90,
        };
        b.iter(|| hub.record_attribution("job", "bench-worker", &timing));
    });
    group.bench_function("straggler_scan_16_workers", |b| {
        // The monitor calls is_straggler once per poll tick; bound the
        // scan over a fleet-sized hub.
        let hub = ClusterObserver::new(ObserverConfig::default());
        for w in 0..16 {
            let name = format!("w{w:02}");
            for i in 0..64u64 {
                hub.record_attribution(
                    "job",
                    &name,
                    &TaskTiming {
                        compute_us: 4_000 + w * 100 + i,
                        ..TaskTiming::default()
                    },
                );
            }
        }
        b.iter(|| hub.stragglers());
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ring, bench_report_codec, bench_publish_roundtrip, bench_hub
);
criterion_main!(benches);
