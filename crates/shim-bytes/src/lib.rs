//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible implementation of the subset
//! the codecs use: [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`]
//! traits. Integer accessors exist in both big-endian (default, matching
//! the real crate) and `_le` little-endian flavours.
//!
//! Zero-copy slicing is real, not approximated: a [`Bytes`] is an
//! `Arc<Vec<u8>>` plus a range, so `From<Vec<u8>>` takes ownership
//! without copying, [`Bytes::split_to`]/[`Bytes::slice`] share the
//! allocation, and [`Bytes::try_reclaim`] hands the backing `Vec` back
//! to a buffer pool once no other view is alive — the primitives the
//! wire path's borrowed decode and pooled frame buffers are built on.

use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// The shared backing store of every empty [`Bytes`], so `Bytes::new()`
/// and `Default` never allocate.
fn empty_backing() -> &'static Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes {
            data: empty_backing().clone(),
            start: 0,
            end: 0,
        }
    }
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    /// Takes ownership of a `Vec` without copying its contents.
    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// Number of bytes remaining.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    /// Both halves share the backing allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A sub-view of the remaining bytes (`range` is relative to the
    /// current read position). Shares the backing allocation.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Recovers the backing `Vec` when this is the last live view of it
    /// (buffer-pool reuse); otherwise returns `self` unchanged. The
    /// returned `Vec` keeps its full capacity and contents — callers
    /// reusing it as scratch should `clear()` it.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Empties the buffer, keeping its capacity (scratch-buffer reuse).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Shrinks the allocation to at most `min_capacity` (or the current
    /// length, whichever is larger) — the decay half of a
    /// high-water-mark scratch buffer.
    pub fn shrink_to(&mut self, min_capacity: usize) {
        self.data.shrink_to(min_capacity);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Extracts the inner `Vec` without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> BytesMut {
        BytesMut { data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{:?}", self.data)
    }
}

macro_rules! get_impl {
    ($(($name:ident, $name_le:ident, $ty:ty)),* $(,)?) => {
        $(
            /// Reads the value big-endian, advancing the buffer.
            fn $name(&mut self) -> $ty;
            /// Reads the value little-endian, advancing the buffer.
            fn $name_le(&mut self) -> $ty;
        )*
    };
}

/// Read access to a byte buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_impl!(
        (get_u16, get_u16_le, u16),
        (get_u32, get_u32_le, u32),
        (get_u64, get_u64_le, u64),
        (get_i16, get_i16_le, i16),
        (get_i32, get_i32_le, i32),
        (get_i64, get_i64_le, i64),
    );

    /// Reads an `f64`, big-endian.
    fn get_f64(&mut self) -> f64;
    /// Reads an `f64`, little-endian.
    fn get_f64_le(&mut self) -> f64;
    /// Copies bytes into `dst`, advancing the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advances the read position by `n` bytes.
    fn advance(&mut self, n: usize);
}

macro_rules! buf_get_body {
    ($self:ident, $ty:ty, $from:ident) => {{
        let mut raw = [0u8; std::mem::size_of::<$ty>()];
        raw.copy_from_slice($self.take_bytes(std::mem::size_of::<$ty>()));
        <$ty>::$from(raw)
    }};
}

macro_rules! impl_buf_ints {
    ($(($name:ident, $name_le:ident, $ty:ty)),* $(,)?) => {
        $(
            fn $name(&mut self) -> $ty {
                buf_get_body!(self, $ty, from_be_bytes)
            }
            fn $name_le(&mut self) -> $ty {
                buf_get_body!(self, $ty, from_le_bytes)
            }
        )*
    };
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    impl_buf_ints!(
        (get_u16, get_u16_le, u16),
        (get_u32, get_u32_le, u32),
        (get_u64, get_u64_le, u64),
        (get_i16, get_i16_le, i16),
        (get_i32, get_i32_le, i32),
        (get_i64, get_i64_le, i64),
    );

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(self.take_bytes(dst.len()));
    }

    fn advance(&mut self, n: usize) {
        self.take_bytes(n);
    }
}

macro_rules! put_impl {
    ($(($name:ident, $name_le:ident, $ty:ty)),* $(,)?) => {
        $(
            /// Appends the value big-endian.
            fn $name(&mut self, v: $ty);
            /// Appends the value little-endian.
            fn $name_le(&mut self, v: $ty);
        )*
    };
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    put_impl!(
        (put_u16, put_u16_le, u16),
        (put_u32, put_u32_le, u32),
        (put_u64, put_u64_le, u64),
        (put_i16, put_i16_le, i16),
        (put_i32, put_i32_le, i32),
        (put_i64, put_i64_le, i64),
    );

    /// Appends an `f64`, big-endian.
    fn put_f64(&mut self, v: f64);
    /// Appends an `f64`, little-endian.
    fn put_f64_le(&mut self, v: f64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

macro_rules! impl_bufmut_ints {
    ($(($name:ident, $name_le:ident, $ty:ty)),* $(,)?) => {
        $(
            fn $name(&mut self, v: $ty) {
                self.data.extend_from_slice(&v.to_be_bytes());
            }
            fn $name_le(&mut self, v: $ty) {
                self.data.extend_from_slice(&v.to_le_bytes());
            }
        )*
    };
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    impl_bufmut_ints!(
        (put_u16, put_u16_le, u16),
        (put_u32, put_u32_le, u32),
        (put_u64, put_u64_le, u64),
        (put_i16, put_i16_le, i16),
        (put_i32, put_i32_le, i32),
        (put_i64, put_i64_le, i64),
    );

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_both_endiannesses() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16(0x0102);
        w.put_u32_le(0xA1B2C3D4);
        w.put_i64_le(-9);
        w.put_f64_le(2.5);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x0102);
        assert_eq!(r.get_u32_le(), 0xA1B2C3D4);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r.to_vec(), b"xy");
    }

    #[test]
    fn split_to_keeps_rest() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.to_vec(), vec![3, 4]);
    }

    #[test]
    fn slice_is_relative_to_read_position() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4, 5]);
        b.advance(1);
        let mid = b.slice(1..3);
        assert_eq!(mid.to_vec(), vec![3, 4]);
        // The parent is unaffected.
        assert_eq!(b.to_vec(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn from_vec_and_reclaim_are_zero_copy() {
        let v = vec![7u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_slice().as_ptr(), ptr, "From<Vec> must not copy");
        // A live clone blocks reclaim…
        let clone = b.clone();
        let b = b.try_reclaim().unwrap_err();
        drop(clone);
        // …and the last view gets the original allocation back.
        let back = b.try_reclaim().unwrap();
        assert_eq!(back.as_ptr(), ptr, "reclaim must return the same Vec");
        assert_eq!(back.len(), 32);
    }

    #[test]
    fn views_share_one_allocation() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let head = b.split_to(2);
        let tail_ptr = b.as_slice().as_ptr();
        let head_ptr = head.as_slice().as_ptr();
        assert_eq!(unsafe { head_ptr.add(2) }, tail_ptr);
    }

    #[test]
    fn empty_bytes_share_a_static_backing() {
        let a = Bytes::new();
        let b = Bytes::default();
        assert!(Arc::ptr_eq(&a.data, &b.data));
        assert!(a.is_empty());
    }

    #[test]
    fn bytes_mut_scratch_reuse() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"hello");
        assert_eq!(w.len(), 5);
        w.clear();
        assert_eq!(w.len(), 0);
        assert!(w.capacity() >= 64);
        w.put_slice(b"again");
        assert_eq!(w.into_vec(), b"again");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32();
    }
}
