//! Sequential baseline for the pre-fetching application.

use super::matrix::StochasticMatrix;
use super::pagerank::PageRank;

/// Sequential PageRank over the matrix — the 1-worker comparison point.
/// Identical accumulation order to the strip-parallel path, so results are
/// bit-for-bit equal.
pub fn pagerank_sequential(matrix: &StochasticMatrix, solver: &PageRank) -> (Vec<f64>, usize) {
    solver.compute(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::web::{generate_cluster, LinkGraph};

    #[test]
    fn sequential_matches_solver() {
        let pages = generate_cluster("t", 80, 1);
        let m = StochasticMatrix::from_graph(&LinkGraph::from_pages(&pages));
        let solver = PageRank::default();
        let (a, ia) = pagerank_sequential(&m, &solver);
        let (b, ib) = solver.compute(&m);
        assert_eq!(a, b);
        assert_eq!(ia, ib);
    }
}
