//! Application-kernel benchmarks: the compute inside each task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acc_apps::prefetch::{generate_cluster, LinkGraph, PageRank, StochasticMatrix};
use acc_apps::pricing::{bg_tree_estimate, european_mc_estimate, OptionSpec};
use acc_apps::raytrace::{benchmark_scene, render_strip};

fn bench_pricing_kernels(c: &mut Criterion) {
    let spec = OptionSpec::paper_default();
    c.bench_function("apps/pricing/bg_tree_b4_d3", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bg_tree_estimate(&spec, 4, 3, seed)
        });
    });
    c.bench_function("apps/pricing/european_mc_1000", |b| {
        let euro = OptionSpec {
            style: acc_apps::pricing::OptionStyle::European,
            ..spec
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            european_mc_estimate(&euro, 1000, seed)
        });
    });
}

fn bench_raytrace_strip(c: &mut Criterion) {
    let scene = benchmark_scene();
    let mut group = c.benchmark_group("apps/raytrace/strip");
    for width in [100u32, 300, 600] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| render_strip(&scene, 0, 25.min(w), w, w));
        });
    }
    group.finish();
}

fn bench_prefetch_kernels(c: &mut Criterion) {
    let pages = generate_cluster("acme", 500, 2001);
    let graph = LinkGraph::from_pages(&pages);
    c.bench_function("apps/prefetch/matrix_build_500", |b| {
        b.iter(|| StochasticMatrix::from_graph(&graph));
    });
    let matrix = StochasticMatrix::from_graph(&graph);
    c.bench_function("apps/prefetch/strip_multiply_20x500", |b| {
        let v = vec![1.0 / 500.0; 500];
        b.iter(|| matrix.strip_multiply(0, 20, &v));
    });
    c.bench_function("apps/prefetch/pagerank_full_500", |b| {
        b.iter(|| PageRank::default().compute(&matrix));
    });
    c.bench_function("apps/prefetch/parse_links_page", |b| {
        let html = &pages[3].html;
        b.iter(|| acc_apps::prefetch::parse_links(html));
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_pricing_kernels,
    bench_raytrace_strip,
    bench_prefetch_kernels
);
criterion_main!(benches);
