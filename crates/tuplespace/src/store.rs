//! The `TupleStore` abstraction: what a space looks like to its clients.
//!
//! JavaSpaces is a *network-accessible* repository; masters and workers
//! don't care whether the space lives in their process or across a
//! socket. [`TupleStore`] captures the operations the framework uses, and
//! is implemented by the in-process [`crate::Space`] and by
//! [`crate::remote::RemoteSpace`].
//!
//! Transactions are deliberately not part of the trait: they are offered
//! by the in-process space only (see `crate::txn`), mirroring the fact
//! that this reproduction's remote protocol covers the master/worker
//! fast path.

use std::sync::Arc;
use std::time::Duration;

use crate::error::SpaceResult;
use crate::lease::Lease;
use crate::space::{EntryId, Space};
use crate::template::Template;
use crate::tuple::Tuple;

/// Shared handle to any tuple store (local or remote).
pub type StoreHandle = Arc<dyn TupleStore>;

/// The operations every space client relies on.
pub trait TupleStore: Send + Sync {
    /// Stores a tuple under a lease.
    fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId>;

    /// Blocking non-destructive lookup; `None` on timeout.
    fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>>;

    /// Blocking destructive lookup; `None` on timeout.
    fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>>;

    /// Number of currently matching, visible tuples.
    fn count(&self, template: &Template) -> SpaceResult<usize>;

    /// Closes the space: blocked and future operations fail.
    fn close(&self);

    /// Has the space been closed?
    fn is_closed(&self) -> bool;

    // --- conveniences with default implementations -------------------

    /// Stores a tuple forever.
    fn write(&self, tuple: Tuple) -> SpaceResult<EntryId> {
        self.write_leased(tuple, Lease::Forever)
    }

    /// Non-blocking read.
    fn read_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.read(template, Some(Duration::ZERO))
    }

    /// Non-blocking take.
    fn take_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.take(template, Some(Duration::ZERO))
    }

    /// Takes every currently matching tuple.
    fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.take_if_exists(template)? {
            out.push(t);
        }
        Ok(out)
    }

    // --- batch operations --------------------------------------------
    //
    // The defaults are plain loops of singles, so every store is
    // batch-capable; `Space` overrides them with single-lock bulk
    // operations and `RemoteSpace` with batched/pipelined wire frames
    // (protocol v2). Errors mid-batch surface immediately: tuples written
    // before the failure stay written, exactly like the equivalent loop.

    /// Stores every tuple under one lease, returning ids in input order.
    fn write_all_leased(&self, tuples: Vec<Tuple>, lease: Lease) -> SpaceResult<Vec<EntryId>> {
        let mut ids = Vec::with_capacity(tuples.len());
        for tuple in tuples {
            ids.push(self.write_leased(tuple, lease)?);
        }
        Ok(ids)
    }

    /// Stores every tuple forever.
    fn write_all(&self, tuples: Vec<Tuple>) -> SpaceResult<Vec<EntryId>> {
        self.write_all_leased(tuples, Lease::Forever)
    }

    /// Takes up to `max` matching tuples: blocks up to `timeout` for the
    /// first match, then drains whatever else currently matches without
    /// further waiting. Returns an empty vec on timeout.
    fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        match self.take(template, timeout)? {
            None => return Ok(out),
            Some(first) => out.push(first),
        }
        while out.len() < max {
            match self.take_if_exists(template)? {
                Some(t) => out.push(t),
                None => break,
            }
        }
        Ok(out)
    }
}

impl TupleStore for Space {
    fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        Space::write_leased(self, tuple, lease)
    }

    fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        Space::read(self, template, timeout)
    }

    fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        Space::take(self, template, timeout)
    }

    fn count(&self, template: &Template) -> SpaceResult<usize> {
        Ok(Space::count(self, template))
    }

    fn close(&self) {
        Space::close(self)
    }

    fn is_closed(&self) -> bool {
        Space::is_closed(self)
    }

    fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        // The in-process space drains each shard under a single lock
        // acquisition instead of the default take-per-call loop.
        Space::take_all(self, template)
    }

    fn write_all_leased(&self, tuples: Vec<Tuple>, lease: Lease) -> SpaceResult<Vec<EntryId>> {
        // Contiguous id block, one lock acquisition per shard.
        Space::write_all_leased(self, tuples, lease)
    }

    fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        Space::take_up_to(self, template, max, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(id: i64) -> Tuple {
        Tuple::build("t").field("id", id).done()
    }

    #[test]
    fn space_through_the_trait() {
        let space = Space::new("store");
        let store: StoreHandle = space;
        store.write(tuple(1)).unwrap();
        store.write(tuple(2)).unwrap();
        assert_eq!(store.count(&Template::of_type("t")).unwrap(), 2);
        let got = store.take_if_exists(&Template::of_type("t")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(1));
        let rest = store.take_all(&Template::of_type("t")).unwrap();
        assert_eq!(rest.len(), 1);
        assert!(!store.is_closed());
        store.close();
        assert!(store.is_closed());
        assert!(store.write(tuple(3)).is_err());
    }
}
