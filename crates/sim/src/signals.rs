//! Experiment 2 — adaptation protocol analysis (paper §5.2.2, Figs 9–11).
//!
//! One worker computes a long stream of tasks while the scripted load
//! sequence of the paper plays against it:
//!
//! 1. the worker starts idle → **Start** (with the class-loading CPU peak);
//! 2. load simulator 2 pegs the CPU at 100% → **Stop**;
//! 3. simulator 2 stops → **Start** again ("Restart", paying class loading
//!    again);
//! 4. load simulator 1 raises the CPU to 30–50% → **Pause**;
//! 5. simulator 1 stops → **Resume** (no class loading).
//!
//! The report carries the worker's CPU usage history (part a of each
//! figure) and the client/worker signal times (part b).

use acc_cluster::{LoadPhase, LoadTrace, TrafficKind, UsagePoint};
use acc_core::{Signal, SignalLogEntry};

use crate::cluster::{simulate, SimConfig};
use crate::model::AppProfile;

/// Output of one adaptation-protocol run.
#[derive(Debug, Clone)]
pub struct AdaptationReport {
    /// Application label.
    pub app: String,
    /// Worker CPU usage over the experiment (Figs 9a/10a/11a).
    pub usage: Vec<UsagePoint>,
    /// Signals with client/worker times (Figs 9b/10b/11b).
    pub signals: Vec<SignalLogEntry>,
    /// Tasks the worker completed despite the interference.
    pub tasks_done: u64,
}

/// Duration of each phase of the scripted sequence, ms.
const PHASE_MS: u64 = 8_000;

/// The scripted load sequence: idle / sim2 / idle / sim1 / idle.
pub fn scripted_trace() -> LoadTrace {
    let mut phases = vec![LoadPhase {
        at_ms: 0,
        level: 0,
        kind: TrafficKind::Idle,
    }];
    // Load simulator 2: 100% CPU.
    phases.push(LoadPhase {
        at_ms: PHASE_MS,
        level: 100,
        kind: TrafficKind::CpuHog,
    });
    phases.push(LoadPhase {
        at_ms: 2 * PHASE_MS,
        level: 0,
        kind: TrafficKind::Idle,
    });
    // Load simulator 1: 30–50% band (interleaved traffic kinds).
    for (i, (level, kind)) in [
        (34, TrafficKind::RtpVoice),
        (46, TrafficKind::Http),
        (40, TrafficKind::MultimediaHttp),
        (38, TrafficKind::Http),
    ]
    .iter()
    .enumerate()
    {
        phases.push(LoadPhase {
            at_ms: 3 * PHASE_MS + i as u64 * (PHASE_MS / 4),
            level: *level,
            kind: *kind,
        });
    }
    phases.push(LoadPhase {
        at_ms: 4 * PHASE_MS,
        level: 0,
        kind: TrafficKind::Idle,
    });
    LoadTrace::new(phases, 5 * PHASE_MS)
}

/// Runs the adaptation-protocol experiment for one application profile.
pub fn run_adaptation(profile: &AppProfile) -> AdaptationReport {
    let mut profile = profile.clone();
    // A long stream of tasks so the worker always has work available.
    profile.tasks = 100_000;
    profile.plan_per_task_ms = 0.01;
    profile.plan_fixed_ms = 0.0;
    let mut cfg = SimConfig::new(profile.clone(), 1);
    cfg.traces[0] = Some(scripted_trace());
    cfg.usage_sample_ms = 100.0;
    cfg.horizon_ms = (5 * PHASE_MS) as f64;
    let out = simulate(cfg);
    let worker = &out.workers[0];
    AdaptationReport {
        app: profile.name,
        usage: worker.usage.clone(),
        signals: worker.signal_log.clone(),
        tasks_done: worker.tasks_done,
    }
}

impl AdaptationReport {
    /// The ordered signal kinds observed.
    pub fn signal_sequence(&self) -> Vec<Signal> {
        self.signals.iter().map(|e| e.signal).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_trace_matches_paper_sequence() {
        let trace = scripted_trace();
        assert_eq!(trace.level_at(100), 0);
        assert_eq!(trace.level_at(PHASE_MS + 100), 100);
        assert_eq!(trace.level_at(2 * PHASE_MS + 100), 0);
        let sim1 = trace.level_at(3 * PHASE_MS + 100);
        assert!((30..=50).contains(&sim1));
        assert_eq!(trace.level_at(4 * PHASE_MS + 100), 0);
    }

    #[test]
    fn signal_sequence_is_start_stop_start_pause_resume() {
        for profile in AppProfile::all() {
            let report = run_adaptation(&profile);
            assert_eq!(
                report.signal_sequence(),
                vec![
                    Signal::Start,
                    Signal::Stop,
                    Signal::Start,
                    Signal::Pause,
                    Signal::Resume
                ],
                "{}",
                report.app
            );
        }
    }

    #[test]
    fn reaction_times_are_minimal_and_starts_pay_class_load() {
        let profile = AppProfile::ray_tracing();
        let report = run_adaptation(&profile);
        // A signal takes effect only after the in-flight task completes
        // (paper §4.3), so the worst-case reaction is one task time.
        let task_bound = profile.task_work_ms + 200.0;
        for entry in &report.signals {
            match entry.signal {
                Signal::Start => {
                    assert!(entry.reaction_ms() >= 300, "class load: {entry:?}");
                    assert!(entry.reaction_ms() < 1_000, "still small: {entry:?}");
                }
                _ => assert!(
                    (entry.reaction_ms() as f64) < task_bound,
                    "reaction bounded by the current task: {entry:?}"
                ),
            }
        }
        // A Resume to an idle worker is effectively instantaneous.
        let resume = report
            .signals
            .iter()
            .find(|e| e.signal == Signal::Resume)
            .unwrap();
        assert!(resume.reaction_ms() < 100, "{resume:?}");
    }

    #[test]
    fn usage_history_shows_the_load_script() {
        let report = run_adaptation(&AppProfile::option_pricing());
        let peak = report.usage.iter().map(|p| p.load).max().unwrap();
        assert_eq!(peak, 100, "simulator 2 peak visible");
        // During the sim2 window the worker is stopped: load is exactly
        // the background 100%.
        let mid_sim2 = report
            .usage
            .iter()
            .find(|p| p.at_ms > PHASE_MS + 2_000 && p.at_ms < 2 * PHASE_MS - 1_000)
            .unwrap();
        assert_eq!(mid_sim2.load, 100);
        // After resume the worker computes again: high load at the end.
        assert!(report.tasks_done > 0);
    }

    #[test]
    fn worker_keeps_computing_between_interferences() {
        let report = run_adaptation(&AppProfile::prefetch());
        // The worker computed during idle windows (1 + 3 + 5).
        assert!(report.tasks_done > 10, "did {} tasks", report.tasks_done);
    }

    #[test]
    fn worker_computes_again_after_resume() {
        // Regression: a Resume to an idle worker must put it straight back
        // to work, not leave it idling until the next task-ready event.
        let report = run_adaptation(&AppProfile::option_pricing());
        let post_resume: Vec<u64> = report
            .usage
            .iter()
            .filter(|p| p.at_ms > 4 * PHASE_MS + 1_000)
            .map(|p| p.load)
            .collect();
        assert!(!post_resume.is_empty());
        let mean = post_resume.iter().sum::<u64>() as f64 / post_resume.len() as f64;
        assert!(mean > 80.0, "post-resume mean load {mean}");
    }
}
