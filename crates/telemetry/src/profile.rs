//! Per-job waterfall profiles: phase attribution, critical-path
//! reconstruction and a one-word bound verdict.
//!
//! The cluster already records *per-task* cost (the `TaskTiming` that
//! rides every result tuple) and *per-span* structure (the flight
//! recorder / [`TraceAssembler`]). This module defines the job-level
//! answer assembled from them: a [`JobProfile`] with
//!
//! * **phase totals** — how much of the job's aggregate effort went to
//!   dispatch, space wait, transfer, compute, result write and master
//!   aggregation ([`PhaseTotals`]);
//! * a **critical path** — the chain of work bounding job wall-clock:
//!   dispatch followed by the task chain of the worker whose last result
//!   closed the job ([`CriticalPath`]);
//! * a **bound verdict** — one word naming the dominant regime
//!   ([`BoundVerdict`]), with an evidence string carrying the numbers
//!   behind it ([`judge`]);
//! * optional **scatter-gather fan-out** attribution per grid shard
//!   ([`ShardPhase`]).
//!
//! The types live here (not in the cluster crate) so anything holding a
//! flight dump — a test, `acc_top`, a post-mortem script — can build and
//! render profiles; the master-side `JobProfiler` that folds live result
//! tuples into them lives with the observer in `acc-cluster`.
//!
//! [`span_critical_path`] is the span-tree counterpart: given an
//! assembled cross-process trace, it walks from the root down the
//! longest-duration child at each level, yielding the chain of spans
//! that bounded that trace.

use crate::context::{SpanRecord, TraceAssembler};
use crate::registry::json_escape;

/// Aggregate microseconds per phase, summed over every task of a job.
///
/// The task-side fields are raw sums of the corresponding `TaskTiming`
/// fields; `dispatch_us` and `aggregation_us` are master-side scalars.
/// Note `wait_us` and `xfer_us` overlap by construction: the first task
/// of a prefetch batch carries the full take round-trip as `wait_us`
/// *and* its per-task transfer share as `xfer_us` (see the worker's
/// timing attribution). Critical-path arithmetic de-duplicates this;
/// the totals here stay raw so they reconcile exactly with the summed
/// `TaskTiming` fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Master-side task planning + dispatch writes.
    pub dispatch_us: u64,
    /// Blocked in `take` waiting for a task to arrive (space wait).
    pub wait_us: u64,
    /// Per-task share of batch transfer cost.
    pub xfer_us: u64,
    /// Executor compute time.
    pub compute_us: u64,
    /// Result-tuple write cost.
    pub write_us: u64,
    /// Master-side result gathering (aggregation loop).
    pub aggregation_us: u64,
}

impl PhaseTotals {
    /// Sum over every phase (raw; wait/xfer overlap included).
    pub fn sum(&self) -> u64 {
        self.dispatch_us
            + self.wait_us
            + self.xfer_us
            + self.compute_us
            + self.write_us
            + self.aggregation_us
    }

    /// JSON object body (no trailing comma).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"dispatch_us\":{},\"wait_us\":{},\"xfer_us\":{},\"compute_us\":{},\"write_us\":{},\"aggregation_us\":{}}}",
            self.dispatch_us,
            self.wait_us,
            self.xfer_us,
            self.compute_us,
            self.write_us,
            self.aggregation_us
        )
    }
}

/// One step of a critical path: the dispatch segment or one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Human label (`dispatch`, `task 17`).
    pub label: String,
    /// Task id, `None` for master-side segments.
    pub task_id: Option<u64>,
    /// Worker that executed the segment (empty for master-side).
    pub worker: String,
    /// Effective duration: for a task,
    /// `max(wait, xfer) + compute + write` — wait already contains the
    /// batch round-trip the transfer share was carved from, so adding
    /// both would double-count it.
    pub duration_us: u64,
}

/// The chain of work bounding job wall-clock: a dispatch segment
/// followed by every task the bounding worker executed, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CriticalPath {
    /// The bounding worker (the one whose last result closed the job).
    pub worker: String,
    /// Retained segment detail, oldest first (bounded; see `omitted`).
    pub segments: Vec<PathSegment>,
    /// Segments whose detail was not retained (their time still counts
    /// in `total_us`).
    pub omitted: usize,
    /// Full chain duration including omitted segments.
    pub total_us: u64,
}

impl CriticalPath {
    /// JSON object body.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"worker\":\"{}\",\"total_us\":{},\"omitted\":{},\"segments\":[",
            json_escape(&self.worker),
            self.total_us,
            self.omitted
        );
        for (i, s) in self.segments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let task = match s.task_id {
                Some(id) => id.to_string(),
                None => "null".to_owned(),
            };
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"task\":{task},\"worker\":\"{}\",\"duration_us\":{}}}",
                json_escape(&s.label),
                json_escape(&s.worker),
                s.duration_us
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Scatter-gather fan-out attribution for one grid shard over the job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPhase {
    /// Shard index in the grid.
    pub index: usize,
    /// Shard server address.
    pub addr: String,
    /// Operations routed to the shard during the job.
    pub ops: u64,
    /// Total microseconds spent in those operations.
    pub total_us: u64,
}

/// The one-word answer: which regime bounded the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundVerdict {
    /// Master-side planning/dispatch dominated the critical path.
    DispatchBound,
    /// Space interaction (wait + transfer + result write) dominated.
    SpaceBound,
    /// Executor compute dominated, spread evenly across workers.
    ComputeBound,
    /// One slow worker bounded the job while peers sat done.
    StragglerBound,
}

impl BoundVerdict {
    /// The canonical hyphenated form (`straggler-bound`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundVerdict::DispatchBound => "dispatch-bound",
            BoundVerdict::SpaceBound => "space-bound",
            BoundVerdict::ComputeBound => "compute-bound",
            BoundVerdict::StragglerBound => "straggler-bound",
        }
    }
}

impl std::fmt::Display for BoundVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything [`judge`] needs, reduced to scalars so the caller decides
/// where the numbers come from (live observer state, a replayed dump…).
#[derive(Debug, Clone, Default)]
pub struct VerdictInput {
    /// Dispatch time on the critical path, µs.
    pub dispatch_us: u64,
    /// Space interaction (wait + transfer + result write) on the
    /// critical path, µs.
    pub space_us: u64,
    /// Compute on the critical path, µs.
    pub compute_us: u64,
    /// True when the straggler detector flagged the critical-path worker.
    pub straggler_flagged: bool,
    /// Mean per-task compute of the critical-path worker, µs.
    pub path_worker_mean_compute_us: f64,
    /// Mean per-task compute across the *other* workers, µs (0 when the
    /// job ran on a single worker).
    pub peer_mean_compute_us: f64,
}

/// How much slower than its peers' mean compute a worker must be for the
/// fallback straggler rule (no detector flag) to fire.
pub const STRAGGLER_RATIO: f64 = 2.0;

/// Names the dominant regime and returns the evidence behind the call.
///
/// Straggler wins first: either the cluster's straggler detector flagged
/// the critical-path worker, or that worker's mean per-task compute is
/// at least [`STRAGGLER_RATIO`]× its peers' — a job bounded by one slow
/// machine is a scheduling problem before it is a compute problem.
/// Otherwise the largest critical-path share (dispatch / space /
/// compute) names the verdict.
pub fn judge(input: &VerdictInput) -> (BoundVerdict, String) {
    let total = (input.dispatch_us + input.space_us + input.compute_us).max(1);
    let pct = |us: u64| us as f64 * 100.0 / total as f64;
    let shares = format!(
        "critical path: dispatch {:.1}%, space {:.1}%, compute {:.1}%",
        pct(input.dispatch_us),
        pct(input.space_us),
        pct(input.compute_us)
    );
    let ratio = if input.peer_mean_compute_us > 0.0 {
        input.path_worker_mean_compute_us / input.peer_mean_compute_us
    } else {
        0.0
    };
    if input.straggler_flagged || ratio >= STRAGGLER_RATIO {
        let why = if input.straggler_flagged {
            "flagged by the straggler detector".to_owned()
        } else {
            format!("{ratio:.1}x its peers' mean compute")
        };
        return (
            BoundVerdict::StragglerBound,
            format!("bounding worker is {why}; {shares}"),
        );
    }
    let verdict = if input.dispatch_us >= input.space_us && input.dispatch_us >= input.compute_us {
        BoundVerdict::DispatchBound
    } else if input.space_us >= input.compute_us {
        BoundVerdict::SpaceBound
    } else {
        BoundVerdict::ComputeBound
    };
    (verdict, shares)
}

/// One job's assembled waterfall profile.
#[derive(Debug, Clone)]
pub struct JobProfile {
    /// Job name.
    pub job: String,
    /// Results folded in.
    pub tasks: u64,
    /// Results that carried an executor error.
    pub errors: u64,
    /// Job wall-clock, milliseconds (elapsed-so-far while running).
    pub wall_ms: u64,
    /// False while the job is still running.
    pub finished: bool,
    /// Aggregate per-phase totals.
    pub phases: PhaseTotals,
    /// The reconstructed bounding chain.
    pub critical_path: CriticalPath,
    /// Per-shard scatter-gather attribution (empty without a grid).
    pub fanout: Vec<ShardPhase>,
    /// The one-word answer.
    pub verdict: BoundVerdict,
    /// The numbers behind the verdict.
    pub evidence: String,
}

impl JobProfile {
    /// The full profile as one JSON object.
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\"job\":\"{}\",\"tasks\":{},\"errors\":{},\"wall_ms\":{},\"finished\":{},\"verdict\":\"{}\",\"evidence\":\"{}\",\"phases\":{},\"critical_path\":{},\"fanout\":[",
            json_escape(&self.job),
            self.tasks,
            self.errors,
            self.wall_ms,
            self.finished,
            self.verdict,
            json_escape(&self.evidence),
            self.phases.render_json(),
            self.critical_path.render_json(),
        );
        for (i, s) in self.fanout.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"addr\":\"{}\",\"ops\":{},\"total_us\":{}}}",
                s.index,
                json_escape(&s.addr),
                s.ops,
                s.total_us
            ));
        }
        out.push_str("]}");
        out
    }

    /// Human waterfall: phases with proportional bars, then the critical
    /// path, then fan-out. For `/profile` and `acc_top`.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "job {} — {} tasks ({} errors), wall {} ms{} — verdict: {}\n  evidence: {}\n",
            self.job,
            self.tasks,
            self.errors,
            self.wall_ms,
            if self.finished { "" } else { " (running)" },
            self.verdict,
            self.evidence
        );
        out.push_str("  phases (totals across tasks):\n");
        let rows = [
            ("dispatch", self.phases.dispatch_us),
            ("space wait", self.phases.wait_us),
            ("transfer", self.phases.xfer_us),
            ("compute", self.phases.compute_us),
            ("result write", self.phases.write_us),
            ("aggregation", self.phases.aggregation_us),
        ];
        let widest = rows.iter().map(|&(_, v)| v).max().unwrap_or(0).max(1);
        for (label, us) in rows {
            out.push_str(&format!(
                "    {label:<13}{:>10.1} ms {}\n",
                us as f64 / 1_000.0,
                bar(us, widest)
            ));
        }
        let cp = &self.critical_path;
        out.push_str(&format!(
            "  critical path (worker {}, {:.1} ms, {} segments{}):\n",
            if cp.worker.is_empty() {
                "-"
            } else {
                &cp.worker
            },
            cp.total_us as f64 / 1_000.0,
            cp.segments.len() + cp.omitted,
            if cp.omitted > 0 {
                format!(", {} omitted", cp.omitted)
            } else {
                String::new()
            }
        ));
        let seg_widest = cp
            .segments
            .iter()
            .map(|s| s.duration_us)
            .max()
            .unwrap_or(0)
            .max(1);
        for s in &cp.segments {
            out.push_str(&format!(
                "    {:<13}{:>10.1} ms {}\n",
                s.label,
                s.duration_us as f64 / 1_000.0,
                bar(s.duration_us, seg_widest)
            ));
        }
        if !self.fanout.is_empty() {
            out.push_str("  fan-out:");
            for s in &self.fanout {
                out.push_str(&format!(
                    " shard {} ({}) {} ops {:.1} ms |",
                    s.index,
                    s.addr,
                    s.ops,
                    s.total_us as f64 / 1_000.0
                ));
            }
            out.pop();
            out.push('\n');
        }
        out
    }
}

fn bar(value: u64, widest: u64) -> String {
    const WIDTH: u64 = 24;
    let n = (value.saturating_mul(WIDTH) / widest).min(WIDTH) as usize;
    "#".repeat(n)
}

/// Walks an assembled trace from its root down the longest child at each
/// level: the chain of spans that bounded the trace's wall-clock.
///
/// The root is the trace's `parent == 0` span with the largest folded
/// duration (several processes can contribute roots); descent always
/// follows the child with the largest [`SpanRecord::elapsed_us`], ties
/// broken toward the later-starting span. Spans whose exit was never
/// observed count as duration 0, so a truncated dump shortens the path
/// rather than inventing one. Empty when the trace has no root span.
pub fn span_critical_path<'a>(asm: &'a TraceAssembler, trace_id: u64) -> Vec<&'a SpanRecord> {
    let spans = asm.spans(trace_id);
    let best = |candidates: &[&'a SpanRecord]| -> Option<&'a SpanRecord> {
        candidates
            .iter()
            .copied()
            .max_by_key(|s| (s.elapsed_us, s.t_us))
    };
    let roots: Vec<&SpanRecord> = spans
        .iter()
        .copied()
        .filter(|s| s.parent_span_id == 0)
        .collect();
    let mut chain = Vec::new();
    let mut cursor = match best(&roots) {
        Some(root) => root,
        None => return chain,
    };
    loop {
        chain.push(cursor);
        let children: Vec<&SpanRecord> = spans
            .iter()
            .copied()
            .filter(|s| s.parent_span_id == cursor.span_id)
            .collect();
        match best(&children) {
            Some(child) if chain.len() <= spans.len() => cursor = child,
            _ => break,
        }
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> JobProfile {
        JobProfile {
            job: "render \"x\"".into(),
            tasks: 40,
            errors: 1,
            wall_ms: 620,
            finished: true,
            phases: PhaseTotals {
                dispatch_us: 3_000,
                wait_us: 42_000,
                xfer_us: 9_000,
                compute_us: 510_000,
                write_us: 8_000,
                aggregation_us: 2_000,
            },
            critical_path: CriticalPath {
                worker: "w-slow".into(),
                segments: vec![
                    PathSegment {
                        label: "dispatch".into(),
                        task_id: None,
                        worker: String::new(),
                        duration_us: 3_000,
                    },
                    PathSegment {
                        label: "task 4".into(),
                        task_id: Some(4),
                        worker: "w-slow".into(),
                        duration_us: 140_000,
                    },
                ],
                omitted: 3,
                total_us: 600_000,
            },
            fanout: vec![ShardPhase {
                index: 0,
                addr: "127.0.0.1:9201".into(),
                ops: 120,
                total_us: 23_000,
            }],
            verdict: BoundVerdict::StragglerBound,
            evidence: "bounding worker is 4.2x its peers' mean compute".into(),
        }
    }

    #[test]
    fn phase_totals_sum_and_json() {
        let p = sample_profile().phases;
        assert_eq!(p.sum(), 574_000);
        let json = p.render_json();
        assert!(json.contains("\"compute_us\":510000"), "{json}");
        assert!(json.contains("\"aggregation_us\":2000"), "{json}");
    }

    #[test]
    fn judge_prefers_straggler_then_largest_share() {
        let (v, why) = judge(&VerdictInput {
            dispatch_us: 10,
            space_us: 20,
            compute_us: 1_000,
            straggler_flagged: true,
            path_worker_mean_compute_us: 100.0,
            peer_mean_compute_us: 90.0,
        });
        assert_eq!(v, BoundVerdict::StragglerBound);
        assert!(why.contains("straggler detector"), "{why}");

        let (v, why) = judge(&VerdictInput {
            dispatch_us: 10,
            space_us: 20,
            compute_us: 1_000,
            straggler_flagged: false,
            path_worker_mean_compute_us: 500.0,
            peer_mean_compute_us: 100.0,
        });
        assert_eq!(v, BoundVerdict::StragglerBound);
        assert!(why.contains("5.0x"), "{why}");

        let (v, _) = judge(&VerdictInput {
            dispatch_us: 10,
            space_us: 20,
            compute_us: 1_000,
            straggler_flagged: false,
            path_worker_mean_compute_us: 100.0,
            peer_mean_compute_us: 100.0,
        });
        assert_eq!(v, BoundVerdict::ComputeBound);

        let (v, _) = judge(&VerdictInput {
            dispatch_us: 10,
            space_us: 2_000,
            compute_us: 1_000,
            ..VerdictInput::default()
        });
        assert_eq!(v, BoundVerdict::SpaceBound);

        let (v, _) = judge(&VerdictInput {
            dispatch_us: 5_000,
            space_us: 2_000,
            compute_us: 1_000,
            ..VerdictInput::default()
        });
        assert_eq!(v, BoundVerdict::DispatchBound);

        // Single-worker job: no peers, ratio rule cannot fire.
        let (v, _) = judge(&VerdictInput {
            dispatch_us: 10,
            space_us: 20,
            compute_us: 1_000,
            straggler_flagged: false,
            path_worker_mean_compute_us: 500.0,
            peer_mean_compute_us: 0.0,
        });
        assert_eq!(v, BoundVerdict::ComputeBound);
    }

    #[test]
    fn profile_renders_json_and_waterfall() {
        let p = sample_profile();
        let json = p.render_json();
        assert!(json.contains("\"job\":\"render \\\"x\\\"\""), "{json}");
        assert!(json.contains("\"verdict\":\"straggler-bound\""), "{json}");
        assert!(json.contains("\"task\":4"), "{json}");
        assert!(json.contains("\"task\":null"), "{json}");
        assert!(json.contains("\"omitted\":3"), "{json}");
        assert!(json.contains("\"shard\":0"), "{json}");

        let text = p.render_text();
        assert!(text.contains("verdict: straggler-bound"), "{text}");
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("critical path (worker w-slow"), "{text}");
        assert!(text.contains("5 segments, 3 omitted"), "{text}");
        assert!(text.contains("shard 0 (127.0.0.1:9201) 120 ops"), "{text}");
        // The dominant phase gets the longest bar.
        let compute_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("compute"))
            .unwrap();
        assert!(compute_line.contains("########"), "{text}");
    }

    #[test]
    fn span_critical_path_follows_longest_children() {
        let mut asm = TraceAssembler::new();
        let dump = r#"{"thread":"t"}
{"kind":"enter","name":"job","trace":"a","span":"1","parent":"0","depth":0,"t_us":0}
{"kind":"enter","name":"fast.task","trace":"a","span":"2","parent":"1","depth":1,"t_us":5}
{"kind":"enter","name":"slow.task","trace":"a","span":"3","parent":"1","depth":1,"t_us":6}
{"kind":"enter","name":"slow.compute","trace":"a","span":"4","parent":"3","depth":2,"t_us":7}
{"kind":"exit","name":"slow.compute","trace":"a","span":"4","parent":"3","depth":2,"t_us":90,"elapsed_us":83}
{"kind":"exit","name":"slow.task","trace":"a","span":"3","parent":"1","depth":1,"t_us":95,"elapsed_us":89}
{"kind":"exit","name":"fast.task","trace":"a","span":"2","parent":"1","depth":1,"t_us":9,"elapsed_us":4}
{"kind":"exit","name":"job","trace":"a","span":"1","parent":"0","depth":0,"t_us":100,"elapsed_us":100}
"#;
        assert_eq!(asm.add_flight_json("p", dump), 4);
        let path: Vec<&str> = span_critical_path(&asm, 0xa)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(path, vec!["job", "slow.task", "slow.compute"]);
        // Chain total is bounded by the root's duration.
        let chain = span_critical_path(&asm, 0xa);
        assert!(chain[1..]
            .iter()
            .all(|s| s.elapsed_us <= chain[0].elapsed_us));
        assert!(span_critical_path(&asm, 0xdead).is_empty());
    }
}
