//! Extension experiment — heterogeneity.
//!
//! The paper argues the bag-of-tasks model is "naturally load-balanced"
//! because distribution is worker-driven (§3.1): fast nodes simply take
//! more tasks. This experiment quantifies that on a mixed 300/800 MHz
//! cluster by comparing the framework's worker-driven dynamics against a
//! static partitioning that hands every worker `tasks / n` tasks up front
//! (what an MPI-style decomposition would do).

use acc_cluster::{NodeSpec, Testbed};

use crate::cluster::{simulate, SimConfig};
use crate::model::AppProfile;

/// One row of the heterogeneity experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityRow {
    /// Cluster label.
    pub cluster: String,
    /// Framework (worker-driven bag of tasks) parallel time, ms.
    pub bag_of_tasks_ms: f64,
    /// Static equal partitioning parallel time, ms (analytic).
    pub static_partition_ms: f64,
    /// Tasks taken by the fastest and slowest node under the framework.
    pub fast_node_tasks: u64,
    /// Tasks taken by the slowest node.
    pub slow_node_tasks: u64,
}

/// A mixed cluster: half 800 MHz, half 300 MHz machines.
pub fn mixed_testbed(n: usize) -> Testbed {
    Testbed {
        name: format!("mixed-{n}"),
        master: NodeSpec::new("master", 800, 256),
        workers: (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    NodeSpec::new(format!("fast{i:02}"), 800, 256)
                } else {
                    NodeSpec::new(format!("slow{i:02}"), 300, 64)
                }
            })
            .collect(),
    }
}

/// Runs the comparison for one application profile on a mixed cluster of
/// `n` workers.
pub fn run_heterogeneity(profile: &AppProfile, n: usize) -> HeterogeneityRow {
    let testbed = mixed_testbed(n);
    let mut hetero_profile = profile.clone();
    hetero_profile.testbed = testbed.clone();
    let out = simulate(SimConfig::new(hetero_profile.clone(), n));
    assert!(out.complete, "mixed-cluster run must complete");

    // Static partitioning baseline (analytic): each node computes an
    // equal share at its own speed; the job ends when the slowest is done.
    let share = (profile.tasks as f64 / n as f64).ceil();
    let reference = 800.0;
    let static_ms = testbed
        .workers
        .iter()
        .map(|w| share * profile.task_work_ms / (w.speed_mhz as f64 / reference))
        .fold(0.0f64, f64::max)
        + hetero_profile.planning_ms();

    let fast_node_tasks = out
        .workers
        .iter()
        .filter(|w| w.name.starts_with("fast"))
        .map(|w| w.tasks_done)
        .max()
        .unwrap_or(0);
    let slow_node_tasks = out
        .workers
        .iter()
        .filter(|w| w.name.starts_with("slow"))
        .map(|w| w.tasks_done)
        .min()
        .unwrap_or(0);
    HeterogeneityRow {
        cluster: testbed.name,
        bag_of_tasks_ms: out.times.parallel_ms,
        static_partition_ms: static_ms,
        fast_node_tasks,
        slow_node_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_testbed_alternates_speeds() {
        let tb = mixed_testbed(4);
        assert_eq!(tb.workers[0].speed_mhz, 800);
        assert_eq!(tb.workers[1].speed_mhz, 300);
        assert_eq!(tb.worker_count(), 4);
    }

    #[test]
    fn worker_driven_beats_static_partitioning() {
        let row = run_heterogeneity(&AppProfile::ray_tracing(), 4);
        assert!(
            row.bag_of_tasks_ms < row.static_partition_ms * 0.85,
            "bag {} vs static {}",
            row.bag_of_tasks_ms,
            row.static_partition_ms
        );
    }

    #[test]
    fn fast_nodes_take_more_tasks() {
        let row = run_heterogeneity(&AppProfile::ray_tracing(), 4);
        assert!(
            row.fast_node_tasks > row.slow_node_tasks,
            "fast {} vs slow {}",
            row.fast_node_tasks,
            row.slow_node_tasks
        );
        // Roughly in proportion to speed (800/300 ≈ 2.7), allow slack.
        assert!(row.fast_node_tasks as f64 >= 1.5 * row.slow_node_tasks.max(1) as f64);
    }

    #[test]
    fn deterministic() {
        let a = run_heterogeneity(&AppProfile::prefetch(), 4);
        let b = run_heterogeneity(&AppProfile::prefetch(), 4);
        assert_eq!(a, b);
    }
}
