//! The scrape/health endpoint: a deliberately tiny HTTP/1.0 responder
//! (std-only, one short-lived thread per request, `Connection: close`)
//! that any component can mount on a side port.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry's Prometheus-style text exposition;
//! * `GET /metrics.json` — the registry's JSON dump;
//! * `GET /healthz` — runs the mounted [`HealthChecks`]; `200 ok` when
//!   every check passes, `503 unhealthy` otherwise, with one
//!   `name: detail` line per check either way;
//! * `GET /spans` — the flight recorder's dump
//!   ([`crate::flight::dump_json`]);
//! * any extra [`Routes`] the mounting component registers (the
//!   framework adds `/cluster` and `/cluster.json` here).
//!
//! This is an observability plane, not a web server: no keep-alive, no
//! TLS, no request bodies, an 8 KiB request cap, and the same bounded
//! accept discipline as the tuple-space server (connection cap +
//! per-socket timeouts via [`HttpOptions`]). Requests outside that
//! envelope are rejected rather than misread: non-GET methods get
//! `405` (with `Allow: GET`), requests overflowing the 8 KiB cap get
//! `431`, and pipelined requests (bytes after the header terminator)
//! get `400` — every response, error or not, carries `Content-Length`
//! and `Connection: close`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::registry::{refresh_process_series, registry};

/// Socket discipline for the endpoint (the scrape-side analogue of the
/// tuple-space server's `ServerOptions`).
#[derive(Debug, Clone, Copy)]
pub struct HttpOptions {
    /// Per-connection read timeout (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout (`None` = wait forever).
    pub write_timeout: Option<Duration>,
    /// Connections served concurrently before excess ones are dropped.
    pub max_connections: usize,
}

impl Default for HttpOptions {
    fn default() -> HttpOptions {
        HttpOptions {
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            max_connections: 16,
        }
    }
}

/// A health check's verdict: `Ok(detail)` or `Err(what is wrong)`.
pub type HealthResult = Result<String, String>;

type Check = Box<dyn Fn() -> HealthResult + Send + Sync>;

/// A named set of health checks, run on every `GET /healthz`.
#[derive(Default)]
pub struct HealthChecks {
    checks: Mutex<Vec<(String, Check)>>,
}

impl std::fmt::Debug for HealthChecks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.checks.lock().unwrap_or_else(|e| e.into_inner()).len();
        f.debug_struct("HealthChecks").field("checks", &n).finish()
    }
}

impl HealthChecks {
    /// An empty check set (healthy by definition).
    pub fn new() -> Arc<HealthChecks> {
        Arc::new(HealthChecks::default())
    }

    /// Registers a named check. Checks run in registration order.
    pub fn register(
        &self,
        name: impl Into<String>,
        check: impl Fn() -> HealthResult + Send + Sync + 'static,
    ) {
        self.checks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((name.into(), Box::new(check)));
    }

    /// Runs every check: overall verdict plus a `name: detail` report
    /// line per check.
    pub fn run(&self) -> (bool, String) {
        let checks = self.checks.lock().unwrap_or_else(|e| e.into_inner());
        let mut healthy = true;
        let mut report = String::new();
        for (name, check) in checks.iter() {
            match check() {
                Ok(detail) => report.push_str(&format!("{name}: ok ({detail})\n")),
                Err(problem) => {
                    healthy = false;
                    report.push_str(&format!("{name}: FAIL ({problem})\n"));
                }
            }
        }
        (healthy, report)
    }
}

/// A route handler's response: status line, content type, body.
pub type RouteResponse = (&'static str, &'static str, String);

type Handler = Box<dyn Fn() -> RouteResponse + Send + Sync>;

/// Extra GET routes served alongside the built-in ones. Built-in paths
/// win; lookups are exact-match on the request path.
#[derive(Default)]
pub struct Routes {
    routes: Mutex<Vec<(String, Handler)>>,
}

impl std::fmt::Debug for Routes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.routes.lock().unwrap_or_else(|e| e.into_inner()).len();
        f.debug_struct("Routes").field("routes", &n).finish()
    }
}

impl Routes {
    /// An empty route table.
    pub fn new() -> Arc<Routes> {
        Arc::new(Routes::default())
    }

    /// Registers a handler for an exact path (e.g. `/cluster`).
    pub fn register(
        &self,
        path: impl Into<String>,
        handler: impl Fn() -> RouteResponse + Send + Sync + 'static,
    ) {
        self.routes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((path.into(), Box::new(handler)));
    }

    fn dispatch(&self, path: &str) -> Option<RouteResponse> {
        let routes = self.routes.lock().unwrap_or_else(|e| e.into_inner());
        routes
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, handler)| handler())
    }
}

/// A running scrape endpoint; stops (listener closed, accept thread
/// joined) on drop.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (useful with a `:0` bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Serves the observability routes on `bind` with default options.
pub fn serve(bind: &str, health: Arc<HealthChecks>) -> std::io::Result<HttpServer> {
    serve_with(bind, health, HttpOptions::default())
}

/// Serves the observability routes on `bind`.
pub fn serve_with(
    bind: &str,
    health: Arc<HealthChecks>,
    opts: HttpOptions,
) -> std::io::Result<HttpServer> {
    serve_routed(bind, health, Routes::new(), opts)
}

/// Serves the observability routes on `bind`, plus any extra [`Routes`]
/// the caller mounts.
pub fn serve_routed(
    bind: &str,
    health: Arc<HealthChecks>,
    routes: Arc<Routes>,
    opts: HttpOptions,
) -> std::io::Result<HttpServer> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let active = Arc::new(AtomicUsize::new(0));
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if active.fetch_add(1, Ordering::SeqCst) >= opts.max_connections {
                active.fetch_sub(1, Ordering::SeqCst);
                continue; // over cap: drop the socket
            }
            let health = health.clone();
            let routes = routes.clone();
            let active = active.clone();
            std::thread::spawn(move || {
                let _ = serve_one(stream, &health, &routes, opts);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        }
    });
    Ok(HttpServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

fn serve_one(
    stream: TcpStream,
    health: &HealthChecks,
    routes: &Routes,
    opts: HttpOptions,
) -> std::io::Result<()> {
    stream.set_read_timeout(opts.read_timeout)?;
    stream.set_write_timeout(opts.write_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?).take(8192);
    let response = read_request(&mut reader).and_then(|path| {
        // Bytes already buffered past the blank line mean the client
        // pipelined a second request we will never serve.
        if reader.get_ref().buffer().is_empty() {
            Ok(path)
        } else {
            Err(bad_request("pipelined requests not supported"))
        }
    });
    let (status, content_type, extra_headers, body) = match response {
        Ok(path) => {
            let (status, content_type, body) = route(&path, health, routes);
            (status, content_type, "", body)
        }
        Err(rejection) => rejection,
    };
    let mut stream = stream;
    stream.write_all(
        format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Discard whatever request bytes are still pending (oversized or
    // pipelined input) so the close sends a FIN, not an RST — an RST
    // can destroy the in-flight rejection on the peer's side.
    let _ = stream.set_nonblocking(true);
    let mut sink = [0u8; 4096];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    Ok(())
}

/// A rejected request: status, content type, extra response headers
/// (each `\r\n`-terminated), body.
type Rejection = (&'static str, &'static str, &'static str, String);

fn bad_request(why: &str) -> Rejection {
    ("400 Bad Request", "text/plain", "", format!("{why}\n"))
}

/// Reads and validates the request line + headers off the capped
/// reader. `Ok(path)` for a well-formed GET; `Err(..)` is the rejection
/// to send (socket-level read failures also map here — best effort, the
/// peer is likely gone).
fn read_request(reader: &mut std::io::Take<BufReader<TcpStream>>) -> Result<String, Rejection> {
    let too_large: Rejection = (
        "431 Request Header Fields Too Large",
        "text/plain",
        "",
        "request exceeds the 8 KiB cap\n".to_owned(),
    );
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return Err(bad_request("unreadable request"));
    }
    // `read_line` returning without a terminator means the 8 KiB take
    // cap cut the request off mid-line.
    if !request_line.is_empty() && !request_line.ends_with('\n') && reader.limit() == 0 {
        return Err(too_large);
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    loop {
        header.clear();
        let n = match reader.read_line(&mut header) {
            Ok(n) => n,
            Err(_) => return Err(bad_request("unreadable request")),
        };
        if n > 0 && !header.ends_with('\n') && reader.limit() == 0 {
            return Err(too_large);
        }
        if n <= 2 {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next();
    if method.is_empty() {
        return Err(bad_request("empty request"));
    }
    if method != "GET" {
        return Err((
            "405 Method Not Allowed",
            "text/plain",
            "Allow: GET\r\n",
            "method not allowed; this endpoint is GET-only\n".to_owned(),
        ));
    }
    match path {
        Some(path) => Ok(path.to_owned()),
        None => Err(bad_request("malformed request line")),
    }
}

fn route(
    path: &str,
    health: &HealthChecks,
    routes: &Routes,
) -> (&'static str, &'static str, String) {
    if let Some(response) = routes.dispatch(path) {
        return response;
    }
    match path {
        "/metrics" => {
            refresh_process_series();
            (
                "200 OK",
                "text/plain; version=0.0.4",
                registry().render_text(),
            )
        }
        "/metrics.json" => {
            refresh_process_series();
            ("200 OK", "application/json", registry().render_json())
        }
        "/healthz" => {
            refresh_process_series();
            let (healthy, report) = health.run();
            if healthy {
                ("200 OK", "text/plain", format!("ok\n{report}"))
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain",
                    format!("unhealthy\n{report}"),
                )
            }
        }
        "/spans" => ("200 OK", "application/json", crate::flight::dump_json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn routes_answer() {
        registry().counter("telemetry.http.test").inc();
        let health = HealthChecks::new();
        health.register("always", || Ok("fine".into()));
        let server = serve("127.0.0.1:0", health).unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("telemetry.http.test 1"), "{body}");
        assert!(body.contains("process.uptime_seconds"), "{body}");

        let (head, body) = get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(head.contains("application/json"));
        assert!(body.contains("\"telemetry.http.test\": 1"), "{body}");

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("always: ok (fine)"), "{body}");

        let (head, body) = get(addr, "/spans");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert!(body.contains("\"threads\":["), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }

    #[test]
    fn failing_check_yields_503() {
        let health = HealthChecks::new();
        health.register("good", || Ok("yes".into()));
        health.register("bad", || Err("broken pipe".into()));
        let server = serve("127.0.0.1:0", health).unwrap();
        let (head, body) = get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 503"), "{head}");
        assert!(body.starts_with("unhealthy\n"), "{body}");
        assert!(body.contains("good: ok (yes)"), "{body}");
        assert!(body.contains("bad: FAIL (broken pipe)"), "{body}");
    }

    fn raw(addr: SocketAddr, request: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn non_get_methods_get_405_with_allow_header() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        for method in ["POST", "PUT", "DELETE", "HEAD"] {
            let response = raw(
                server.addr(),
                format!("{method} /metrics HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes(),
            );
            assert!(response.starts_with("HTTP/1.0 405"), "{method}: {response}");
            assert!(response.contains("Allow: GET\r\n"), "{method}: {response}");
            assert!(response.contains("Content-Length:"), "{method}: {response}");
        }
    }

    #[test]
    fn oversized_request_gets_431() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        // A request line longer than the 8 KiB cap, never terminated.
        let mut request = b"GET /".to_vec();
        request.extend(std::iter::repeat_n(b'a', 9000));
        let response = raw(server.addr(), &request);
        assert!(response.starts_with("HTTP/1.0 431"), "{response}");

        // Oversized headers (request line fine) hit the same cap.
        let mut request = b"GET /metrics HTTP/1.0\r\nX-Pad: ".to_vec();
        request.extend(std::iter::repeat_n(b'b', 9000));
        let response = raw(server.addr(), &request);
        assert!(response.starts_with("HTTP/1.0 431"), "{response}");
    }

    #[test]
    fn pipelined_requests_are_rejected() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        let response = raw(
            server.addr(),
            b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\nGET /healthz HTTP/1.0\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.0 400"), "{response}");
        assert!(response.contains("pipelined"), "{response}");
        // One response only: nothing follows the first body.
        assert_eq!(response.matches("HTTP/1.0").count(), 1, "{response}");
    }

    #[test]
    fn malformed_request_line_gets_400() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        let response = raw(server.addr(), b"GET\r\n\r\n");
        assert!(response.starts_with("HTTP/1.0 400"), "{response}");
    }

    #[test]
    fn every_route_carries_content_length() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        for path in ["/metrics", "/metrics.json", "/healthz", "/spans", "/nope"] {
            let (head, body) = get(server.addr(), path);
            let declared: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap_or_else(|| panic!("{path}: no Content-Length in {head}"))
                .parse()
                .unwrap();
            assert_eq!(declared, body.len(), "{path}: length mismatch");
        }
    }

    #[test]
    fn extra_routes_dispatch_before_404() {
        let routes = Routes::new();
        routes.register("/cluster", || {
            ("200 OK", "text/plain", "worker table\n".to_owned())
        });
        let server = serve_routed(
            "127.0.0.1:0",
            HealthChecks::new(),
            routes,
            HttpOptions::default(),
        )
        .unwrap();
        let (head, body) = get(server.addr(), "/cluster");
        assert!(head.starts_with("HTTP/1.0 200"), "{head}");
        assert_eq!(body, "worker table\n");
        let (head, _) = get(server.addr(), "/other");
        assert!(head.starts_with("HTTP/1.0 404"), "{head}");
    }

    #[test]
    fn server_stops_on_drop_and_port_reusable() {
        let server = serve("127.0.0.1:0", HealthChecks::new()).unwrap();
        let addr = server.addr();
        drop(server);
        // The listener is gone: a fresh connect must fail or be closed
        // without a response.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                let mut buf = String::new();
                // Either read error or empty: nobody served it.
                let n = s.read_to_string(&mut buf).unwrap_or(0);
                assert_eq!(n, 0, "dropped server still answered: {buf}");
            }
        }
    }
}
