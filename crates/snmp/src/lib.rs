//! # acc-snmp
//!
//! A compact SNMP implementation: the monitoring substrate the framework
//! uses to observe worker nodes (paper §4.1, "Network Management Module").
//!
//! The paper's monitoring agent queries per-node SNMP worker-agents for
//! system parameters such as CPU load and available memory. This crate
//! provides the full path of that interaction:
//!
//! * [`Oid`] — object identifiers with MIB ordering;
//! * [`codec`] — a BER-style TLV binary encoding for values and messages;
//! * [`Pdu`]/[`Message`] — GET / GETNEXT / SET / RESPONSE / TRAP protocol
//!   data units;
//! * [`Mib`] — the agent-side variable tree (constants, gauges, settable
//!   variables);
//! * [`Agent`] — services PDUs against a MIB, with the standard
//!   host-resources variables used by the framework;
//! * [`Manager`] — the server-side poller: sessions, periodic polls and
//!   sample history;
//! * [`transport`] — in-process and TCP-loopback request/response
//!   transports with length-prefixed framing.
//!
//! ```
//! use acc_snmp::{Agent, Mib, Manager, Oid, SnmpValue, transport::InProcTransport};
//! use std::sync::Arc;
//!
//! let mut mib = Mib::new();
//! mib.register_gauge(Oid::parse("1.3.6.1.2.1.25.3.3.1.2.1").unwrap(), || 17);
//! let agent = Arc::new(Agent::new("public", mib));
//!
//! let manager = Manager::new("public");
//! let session = manager.session(Box::new(InProcTransport::new(agent)));
//! let value = session.get(&Oid::parse("1.3.6.1.2.1.25.3.3.1.2.1").unwrap()).unwrap();
//! assert_eq!(value, SnmpValue::Gauge(17));
//! ```

#![warn(missing_docs)]

mod agent;
pub mod codec;
mod manager;
mod mib;
mod oid;
mod pdu;
pub mod transport;
mod trap;

pub use agent::{host_resources_mib, Agent};
pub use manager::{Manager, PollHistory, Poller, Sample, Session};
pub use mib::Mib;
pub use oid::{oids, Oid, OidParseError};
pub use pdu::{ErrorStatus, Message, Pdu, PduType, SnmpError, SnmpValue, VERSION_2C};
pub use trap::{ThresholdWatch, TrapCollector, TrapSender, TrapSink};
