//! Failure injection: what happens when executors fail, workers vanish
//! mid-task, payloads are corrupt, or results never come.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    task_template, Application, ClusterBuilder, ExecError, FrameworkConfig, Master, TaskEntry,
    TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::{Payload, Space, StoreHandle, Template};

fn fast_config() -> FrameworkConfig {
    FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        class_load_base: Duration::from_millis(2),
        class_load_per_kb: Duration::ZERO,
        task_poll_timeout: Duration::from_millis(10),
        ..FrameworkConfig::default()
    }
}

/// Fails the first `failures` executions, then succeeds — a flaky worker
/// library.
struct FlakyApp {
    n: u64,
    outputs: u64,
    failures: Arc<AtomicU64>,
}

struct FlakyExec {
    remaining_failures: Arc<AtomicU64>,
}

impl TaskExecutor for FlakyExec {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let left = self.remaining_failures.load(Ordering::SeqCst);
        if left > 0
            && self
                .remaining_failures
                .compare_exchange(left, left - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            return Err(ExecError::App("injected failure".into()));
        }
        let x: u64 = task.input()?;
        Ok(x.to_bytes())
    }
}

impl Application for FlakyApp {
    fn job_name(&self) -> String {
        "flaky".into()
    }
    fn bundle_name(&self) -> String {
        "flaky-worker".into()
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(FlakyExec {
            remaining_failures: self.failures.clone(),
        })
    }
    fn absorb(&mut self, _task_id: u64, _payload: &[u8]) -> Result<(), ExecError> {
        self.outputs += 1;
        Ok(())
    }
}

#[test]
fn failed_executions_requeue_the_task() {
    // 5 injected failures across 20 tasks: every failed task goes back to
    // the space and is retried until it succeeds, so the run completes.
    let failures = Arc::new(AtomicU64::new(5));
    let mut app = FlakyApp {
        n: 20,
        outputs: 0,
        failures: failures.clone(),
    };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("w1", 800, 256));
    cluster.add_worker(NodeSpec::new("w2", 800, 256));
    let report = cluster.run(&mut app);
    assert!(report.complete, "all tasks eventually done");
    assert_eq!(app.outputs, 20);
    assert_eq!(failures.load(Ordering::SeqCst), 0, "failures were consumed");
    cluster.shutdown();
}

#[test]
fn master_reports_malformed_results_without_stalling() {
    // An impostor writes a result entry whose payload is not decodable by
    // the application; the master records the failure and keeps going.
    struct StrictApp {
        good: u64,
    }
    impl Application for StrictApp {
        fn job_name(&self) -> String {
            "strict".into()
        }
        fn bundle_name(&self) -> String {
            "strict-worker".into()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            vec![TaskSpec::new(0, &1u64), TaskSpec::new(1, &2u64)]
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            unreachable!("no workers in this test")
        }
        fn absorb(&mut self, _id: u64, payload: &[u8]) -> Result<(), ExecError> {
            let _: u64 = u64::from_bytes(payload).map_err(ExecError::Decode)?;
            self.good += 1;
            Ok(())
        }
    }

    let space = Space::new("strict");
    // Seed one good and one corrupt result before the master runs.
    for (id, payload) in [(0u64, 7u64.to_bytes()), (1, vec![1, 2, 3])] {
        let result = adaptive_spaces::framework::ResultEntry {
            job: "strict".into(),
            task_id: id,
            worker: "impostor".into(),
            payload,
            compute_ms: 1.0,
            span_ms: 1.0,
            timing: Default::default(),
            error: None,
        };
        space.write(result.to_tuple()).unwrap();
    }
    let mut app = StrictApp { good: 0 };
    let store: StoreHandle = space;
    let master = Master::new(store);
    let report = master.run(&mut app).unwrap();
    assert_eq!(app.good, 1);
    assert_eq!(report.results_collected, 1);
    assert_eq!(report.failures.len(), 1);
    assert!(!report.complete);
}

#[test]
fn poison_task_terminates_with_error_result() {
    // One task always fails; after max_task_retries the worker writes a
    // terminal error result, so the run finishes (incomplete) instead of
    // hanging or looping forever.
    struct PoisonApp {
        good: u64,
    }
    struct PoisonExec;
    impl TaskExecutor for PoisonExec {
        fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            let x: u64 = task.input()?;
            if x == 3 {
                return Err(ExecError::App("always fails".into()));
            }
            Ok(x.to_bytes())
        }
    }
    impl Application for PoisonApp {
        fn job_name(&self) -> String {
            "poison".into()
        }
        fn bundle_name(&self) -> String {
            "poison-worker".into()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            (0..6).map(|i| TaskSpec::new(i, &i)).collect()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            Arc::new(PoisonExec)
        }
        fn absorb(&mut self, _: u64, _: &[u8]) -> Result<(), ExecError> {
            self.good += 1;
            Ok(())
        }
    }

    let mut app = PoisonApp { good: 0 };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("w1", 800, 256));
    let report = cluster.run(&mut app);
    assert!(!report.complete, "the poison task cannot succeed");
    assert_eq!(report.results_collected, 5);
    assert_eq!(app.good, 5);
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].0, 3);
    // Nothing left circulating in the space.
    assert_eq!(cluster.space().len(), 0);
    cluster.shutdown();
}

#[test]
fn master_timeout_leaves_tasks_for_later() {
    struct NoWorkers {
        n: u64,
    }
    impl Application for NoWorkers {
        fn job_name(&self) -> String {
            "orphan".into()
        }
        fn bundle_name(&self) -> String {
            "orphan-worker".into()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            unreachable!()
        }
        fn absorb(&mut self, _: u64, _: &[u8]) -> Result<(), ExecError> {
            Ok(())
        }
    }
    let space = Space::new("orphan");
    let store: StoreHandle = space.clone();
    let mut master = Master::new(store);
    master.result_timeout = Duration::from_millis(30);
    let report = master.run(&mut NoWorkers { n: 4 }).unwrap();
    assert!(!report.complete);
    assert_eq!(report.results_collected, 0);
    // Tasks survive in the space: a late worker could still pick them up.
    assert_eq!(space.count(&task_template("orphan")), 4);
}

#[test]
fn crashed_holder_under_txn_loses_nothing() {
    // A "worker" takes a task under a transaction and dies (drops the txn
    // without committing). The task reappears and a healthy taker gets it.
    let space = Space::new("crashy");
    space
        .write(
            adaptive_spaces::space::Tuple::build("acc.task")
                .field("job", "j")
                .field("task_id", 0i64)
                .field("payload", vec![1u8])
                .done(),
        )
        .unwrap();
    {
        let txn = space.txn().unwrap();
        let taken = txn.take_if_exists(&Template::of_type("acc.task")).unwrap();
        assert!(taken.is_some());
        // Simulated crash: txn dropped here without commit.
    }
    let recovered = space
        .take_if_exists(&Template::of_type("acc.task"))
        .unwrap();
    assert!(recovered.is_some(), "task restored after holder crash");
}

#[test]
fn workers_survive_transient_connection_drops_and_finish_the_job() {
    // Remote workers whose TCP connections are all severed (a restarting
    // or load-shedding space server) must ride out the drop — the proxy
    // reconnects — and still complete the job, instead of treating the
    // transport error as "cluster shutting down" and exiting for good.
    let mut app = FlakyApp {
        n: 30,
        outputs: 0,
        failures: Arc::new(AtomicU64::new(0)),
    };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.serve_space().unwrap();
    cluster
        .add_remote_worker(NodeSpec::new("rw1", 800, 256))
        .unwrap();
    cluster
        .add_remote_worker(NodeSpec::new("rw2", 800, 256))
        .unwrap();
    // Let the workers connect, start, and begin polling — then cut every
    // connection out from under them, twice for good measure.
    std::thread::sleep(Duration::from_millis(150));
    cluster.space_server().unwrap().disconnect_all();
    std::thread::sleep(Duration::from_millis(50));
    cluster.space_server().unwrap().disconnect_all();
    let report = cluster.run(&mut app);
    assert!(report.complete, "job must finish despite the dropped links");
    assert_eq!(app.outputs, 30);
    cluster.shutdown();
}

#[test]
fn worker_dies_when_space_server_disappears() {
    // A remote worker whose space server goes away exits its loop rather
    // than spinning; the cluster can still be shut down cleanly.
    let mut app = FlakyApp {
        n: 0,
        outputs: 0,
        failures: Arc::new(AtomicU64::new(0)),
    };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    let _addr = cluster.serve_space().unwrap();
    cluster
        .add_remote_worker(NodeSpec::new("doomed", 800, 256))
        .unwrap();
    // Run the (empty) job, then tear down; join must not hang.
    let report = cluster.run(&mut app);
    assert!(report.complete);
    cluster.shutdown();
}
