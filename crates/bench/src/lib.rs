//! # acc-bench
//!
//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! * `cargo run -p acc-bench --bin repro -- all` prints every artifact;
//!   individual ids: `fig6 fig7 fig8 fig9 fig10 fig11 exp3 table2`.
//! * `cargo bench -p acc-bench` runs the Criterion benches: space
//!   operations, the scalability sweeps, adaptation signal latencies,
//!   the dynamic-load experiment, application kernels, and the design
//!   ablations called out in `DESIGN.md`.
//!
//! The library part holds the shared report formatting so the binary and
//! the benches print identical rows.

#![warn(missing_docs)]

pub mod report;

pub use report::{ascii_plot, format_ms, Table};
