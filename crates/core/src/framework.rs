//! End-to-end wiring: the whole framework in one handle.
//!
//! [`AdaptiveCluster`] assembles the space, the Jini-style federation, the
//! bundle server, the network management module and any number of worker
//! nodes, then runs applications through the master module. It is the
//! programmatic equivalent of deploying the paper's framework on a cluster.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acc_cluster::{metrics_template, ClusterObserver, JobProfiler, MetricsReport, Node, NodeSpec};
use acc_federation::{Attributes, DiscoveryBus, LookupService, Registrar, ServiceItem};
use acc_snmp::{host_resources_mib, oids, transport::InProcTransport, Agent, Manager};
use acc_spacegrid::PartitionedSpace;
use acc_tuplespace::{
    remote::SpaceServer, RemoteSpace, Space, SpaceHandle, StoreHandle, Template, TupleStore,
};

use crate::config::FrameworkConfig;
use crate::loader::{BundleServer, CodeBundle, ExecutorRegistry};
use crate::master::{Master, RunReport};
use crate::monitor::MonitoringAgent;
use crate::rulebase::{duplex_pair, WorkerId};
use crate::series::series;
use crate::signal::{SignalLogEntry, WorkerState};
use crate::task::Application;
use crate::worker::{WorkerConfig, WorkerRuntime};

/// Builder for [`AdaptiveCluster`].
#[derive(Debug)]
pub struct ClusterBuilder {
    config: FrameworkConfig,
    space_name: String,
    observe: Option<String>,
    shards: Vec<String>,
}

impl ClusterBuilder {
    /// Starts a builder with the given framework configuration.
    pub fn new(config: FrameworkConfig) -> ClusterBuilder {
        ClusterBuilder {
            config,
            space_name: "JavaSpaces".into(),
            observe: None,
            shards: Vec::new(),
        }
    }

    /// Names the hosted space service.
    pub fn space_name(mut self, name: impl Into<String>) -> ClusterBuilder {
        self.space_name = name.into();
        self
    }

    /// Binds the observability endpoint (`/metrics`, `/metrics.json`,
    /// `/healthz`, `/spans`) on the given address, e.g. `"127.0.0.1:9137"`
    /// or `"127.0.0.1:0"` for an ephemeral port. Without this call the
    /// endpoint can still be requested via the `ACC_OBSERVE` environment
    /// variable.
    pub fn observe(mut self, bind: impl Into<String>) -> ClusterBuilder {
        self.observe = Some(bind.into());
        self
    }

    /// Runs the cluster over a space grid: the given addresses are
    /// external shard `SpaceServer`s, and all master dispatch, worker
    /// prefetch and heartbeat traffic goes through a
    /// [`PartitionedSpace`] over them instead of the in-process space
    /// (which remains hosted for federation discovery). Without this
    /// call the shard list can still come from the `ACC_SHARDS`
    /// environment variable (comma-separated `host:port` addresses).
    pub fn shards<I, S>(mut self, addrs: I) -> ClusterBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.shards = addrs.into_iter().map(Into::into).collect();
        self
    }

    /// Brings the cluster up: hosts the space, announces the lookup
    /// service, registers the space with the federation, and starts the
    /// network management module.
    pub fn build(self) -> AdaptiveCluster {
        // Cluster deployments always collect operation-latency histograms
        // (raw `Space::new` users opt in via `acc_telemetry::set_timing`),
        // and honor `ACC_TRACE` for a stderr trace subscriber.
        acc_telemetry::set_timing(true);
        acc_telemetry::init_from_env();
        // The flight recorder is always on under cluster management: a
        // bounded per-thread ring whose contents surface in `/spans` and in
        // `flight-<pid>.json` should the process panic.
        acc_telemetry::flight::install();
        acc_telemetry::flight::install_panic_hook();
        acc_telemetry::refresh_process_series();
        let epoch = Instant::now();
        let bus = DiscoveryBus::new();
        let lookup = LookupService::new("lus-0");
        bus.announce(lookup.clone());
        let space = Space::new(self.space_name.clone());
        // Join protocol: publish the space proxy in the federation.
        let registrar = Registrar::join(
            &bus,
            ServiceItem::new(
                self.space_name.clone(),
                Attributes::build().set("kind", "tuple-space").done(),
                space.clone(),
            ),
            None,
        )
        .expect("registering the space cannot fail on a fresh lookup");
        let bundle_server =
            BundleServer::new(self.config.class_load_base, self.config.class_load_per_kb);
        let monitor = MonitoringAgent::new(self.config.clone(), epoch);
        // The federation hub: merges every heartbeat tuple and task
        // attribution into one cluster view, and feeds effective loads
        // (and straggler verdicts) back into the inference loop.
        let hub = Arc::new(ClusterObserver::new(self.config.observer_config()));
        monitor.set_decision_input(hub.clone());
        // The per-job waterfall profiler: the master folds every result's
        // timing into it; `/profile` and `acc_top` read it live.
        let profiler = Arc::new(JobProfiler::new());
        // Space grid: when a shard list is configured (builder or
        // ACC_SHARDS), every store operation the cluster performs —
        // dispatch, prefetch, heartbeats — goes through a
        // PartitionedSpace over those servers. Shards must be up at
        // build time; one dying later degrades instead of failing.
        let shard_addrs: Vec<std::net::SocketAddr> = {
            let list = if self.shards.is_empty() {
                std::env::var("ACC_SHARDS")
                    .ok()
                    .filter(|v| !v.is_empty())
                    .map(|v| v.split(',').map(str::to_owned).collect())
                    .unwrap_or_default()
            } else {
                self.shards.clone()
            };
            list.iter()
                .map(|a| {
                    a.trim()
                        .parse()
                        .unwrap_or_else(|e| panic!("bad shard address '{a}': {e}"))
                })
                .collect()
        };
        let grid = if shard_addrs.is_empty() {
            None
        } else {
            Some(Arc::new(
                PartitionedSpace::connect(&shard_addrs)
                    .expect("all space-grid shards reachable at build time"),
            ))
        };
        let store: StoreHandle = match &grid {
            Some(grid) => grid.clone(),
            None => space.clone(),
        };
        let collector = if self.config.metrics_interval.is_zero() {
            None
        } else {
            Some(spawn_collector(
                store.clone(),
                self.space_name.clone(),
                hub.clone(),
                self.config.metrics_interval,
            ))
        };
        let observer = self
            .observe
            .or_else(|| std::env::var("ACC_OBSERVE").ok().filter(|v| !v.is_empty()))
            .and_then(|bind| {
                match spawn_observer(
                    &bind,
                    space.clone(),
                    grid.clone(),
                    monitor.clone(),
                    hub.clone(),
                    profiler.clone(),
                    &self.config,
                ) {
                    Ok(server) => Some(server),
                    Err(e) => {
                        eprintln!("acc: observability endpoint on {bind} failed: {e}");
                        None
                    }
                }
            });
        AdaptiveCluster {
            config: self.config,
            epoch,
            bus,
            lookup,
            _registrar: registrar,
            space,
            grid,
            space_name: self.space_name,
            bundle_server,
            registry: ExecutorRegistry::new(),
            monitor,
            hub,
            profiler,
            collector,
            manager: Manager::new("public"),
            binding: None,
            workers: Vec::new(),
            sampler: None,
            space_server: None,
            observer,
        }
    }
}

/// Starts the master-side collector: every interval it publishes the
/// space's own heartbeat tuple (the space is a federation participant
/// like any worker, under the name `space:<name>`), then drains every
/// pending `acc.metrics` tuple and folds it into the hub. Runs against
/// whatever store the cluster dispatches through — the in-process space
/// or the grid (where `take_all` scatter-gathers heartbeats from every
/// shard). Exits when the store closes.
fn spawn_collector(
    store: StoreHandle,
    space_name: String,
    hub: Arc<ClusterObserver>,
    interval: Duration,
) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let thread = std::thread::Builder::new()
        .name("acc-collector".into())
        .spawn(move || {
            let template = metrics_template();
            let any = Template::any_type().done();
            let self_name = format!("space:{space_name}");
            let mut seq = 0u64;
            while !stop2.load(Ordering::SeqCst) {
                seq += 1;
                let self_report = MetricsReport {
                    worker: self_name.clone(),
                    seq,
                    at_ms: acc_cluster::observer::now_ms(),
                    total_load: 0,
                    framework_load: 0,
                    tasks_done: store.count(&any).unwrap_or(0) as u64,
                };
                if store.write(self_report.to_tuple()).is_err() && store.is_closed() {
                    break;
                }
                match store.take_all(&template) {
                    Ok(tuples) => {
                        for tuple in &tuples {
                            let Some(report) = MetricsReport::from_tuple(tuple) else {
                                continue;
                            };
                            if hub.ingest(&report) {
                                series().heartbeats_ingested.inc();
                            } else {
                                series().heartbeats_duplicate.inc();
                            }
                        }
                    }
                    // Transient store faults (e.g. every grid shard
                    // momentarily unhealthy) skip a cycle; only a closed
                    // store ends collection.
                    Err(_) if !store.is_closed() => {}
                    Err(_) => break,
                }
                // Sleep in slices so shutdown is prompt at any interval.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline && !stop2.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(10).min(interval));
                }
            }
        })
        .expect("spawn collector thread");
    (stop, thread)
}

/// Mounts the scrape/health endpoint for a cluster: `/healthz` reports
/// whether the space is open, the WAL flushes, and — once workers are
/// watched — how stale the newest monitor sample is.
fn spawn_observer(
    bind: &str,
    space: SpaceHandle,
    grid: Option<Arc<PartitionedSpace>>,
    monitor: Arc<MonitoringAgent>,
    hub: Arc<ClusterObserver>,
    profiler: Arc<JobProfiler>,
    config: &FrameworkConfig,
) -> std::io::Result<acc_telemetry::HttpServer> {
    let health = acc_telemetry::HealthChecks::new();
    let space_for_check = space.clone();
    health.register("space", move || {
        if space_for_check.is_closed() {
            Err("space closed".into())
        } else {
            Ok(format!("space '{}' open", space_for_check.name()))
        }
    });
    health.register("wal", move || match space.flush_journal() {
        Ok(()) => Ok("journal flushes (or space is non-durable)".into()),
        Err(e) => Err(format!("journal flush failed: {e}")),
    });
    // A worker heartbeat is stale when the monitor has gone many poll
    // intervals without a sample (capped so sub-millisecond test intervals
    // don't flap).
    let stale_after = (config.poll_interval * 10).max(Duration::from_secs(2));
    health.register("workers", move || match monitor.heartbeat_age() {
        None => Ok("no workers watched".into()),
        Some(age) if age <= stale_after => Ok(format!("last sample {} ms ago", age.as_millis())),
        Some(age) => Err(format!(
            "no sample for {} ms (stale after {} ms)",
            age.as_millis(),
            stale_after.as_millis()
        )),
    });
    // Remote-transport posture: the error-path counters the wire protocol
    // maintains, surfaced so `/healthz?detail` answers "has this cluster
    // been reconnecting / restoring / striking out?" at a glance.
    health.register("remote", || {
        let r = acc_telemetry::registry();
        Ok(format!(
            "reconnects={} protocol_version={} transport_strikes={} tuples_restored={}",
            r.counter("remote.reconnects").get(),
            r.gauge("remote.protocol_version").get(),
            r.counter("worker.transport_strikes").get(),
            r.counter("server.tuples_restored").get(),
        ))
    });
    // Grid posture: degraded shards flip `/healthz` and are listed, with
    // per-shard health, in `/cluster` and `/cluster.json`.
    if let Some(grid_for_check) = grid.clone() {
        health.register("grid", move || {
            let healthy = grid_for_check.healthy_count();
            let total = grid_for_check.shard_count();
            // Tuples confirmed lost (restore-on-reroute failed) degrade
            // the check even with every shard back up: data went missing
            // and only an operator can clear that.
            let lost = acc_telemetry::registry().counter("grid.lost_tuples").get();
            let detail = format!("{healthy}/{total} shards healthy, lost_tuples={lost}");
            if healthy == total && lost == 0 {
                Ok(detail)
            } else {
                Err(detail)
            }
        });
    }
    let routes = acc_telemetry::Routes::new();
    let hub_text = hub.clone();
    let grid_text = grid.clone();
    routes.register("/cluster", move || {
        let mut body = hub_text.render_text();
        if let Some(grid) = &grid_text {
            body.push_str("\nspace grid:\n");
            for shard in grid.status() {
                body.push_str(&format!(
                    "  shard {} {} {}\n",
                    shard.index,
                    shard.addr,
                    if shard.healthy {
                        "healthy"
                    } else {
                        "UNHEALTHY"
                    }
                ));
            }
        }
        ("200 OK", "text/plain; charset=utf-8", body)
    });
    let hub_json = hub.clone();
    routes.register("/cluster.json", move || {
        let mut body = hub_json.render_json();
        if let Some(grid) = &grid {
            // Splice the grid object into the hub's top-level document.
            if let Some(close) = body.rfind('}') {
                body.truncate(close);
                body.push_str(&format!(r#","grid":{}}}"#, grid.render_json()));
            }
        }
        // Flight-recorder pressure: dropped events plus per-thread ring
        // occupancy, so retention pressure is visible before traces
        // silently vanish.
        if let Some(close) = body.rfind('}') {
            body.truncate(close);
            body.push_str(&format!(r#","flight":{}}}"#, flight_json()));
        }
        // Wire-path posture: frame volume, buffer-pool effectiveness and
        // server pipeline saturation, so a regression in the zero-copy
        // path shows up as a reuse-rate drop before it shows up as CPU.
        if let Some(close) = body.rfind('}') {
            body.truncate(close);
            body.push_str(&format!(r#","wire":{}}}"#, wire_json()));
        }
        ("200 OK", "application/json", body)
    });
    let hub_profile = hub.clone();
    let profiler_text = profiler.clone();
    routes.register("/profile", move || {
        (
            "200 OK",
            "text/plain; charset=utf-8",
            profiler_text.render_text(&hub_profile.stragglers()),
        )
    });
    routes.register("/profile.json", move || {
        (
            "200 OK",
            "application/json",
            profiler.render_json(&hub.stragglers()),
        )
    });
    acc_telemetry::serve_routed(bind, health, routes, acc_telemetry::HttpOptions::default())
}

/// The `"flight"` section of `/cluster.json`: loss and occupancy of the
/// flight recorder's per-thread rings.
fn flight_json() -> String {
    let mut out = format!(
        "{{\"dropped_events\":{},\"threads\":[",
        acc_telemetry::registry()
            .counter("telemetry.flight.dropped_events")
            .get()
    );
    for (i, t) in acc_telemetry::flight::occupancy().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"thread\":\"{}\",\"live\":{},\"kept\":{},\"capacity\":{}}}",
            acc_telemetry::json_escape(&t.thread),
            t.live,
            t.kept,
            t.capacity
        ));
    }
    out.push_str("]}");
    out
}

/// The `"wire"` section of `/cluster.json`: zero-copy wire-path health —
/// total frame traffic, read-buffer pool reuse, and the server-side
/// pipeline pool's queue depth and saturation count.
fn wire_json() -> String {
    let r = acc_telemetry::registry();
    let hits = r.counter("remote.buffer_reuse_hits").get();
    let misses = r.counter("remote.buffer_reuse_misses").get();
    let reuse_pct = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64 * 100.0
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"frame_bytes\":{},\"buffer_reuse_hits\":{},",
            "\"buffer_reuse_misses\":{},\"buffer_reuse_pct\":{:.1},",
            "\"pipeline_queue_depth\":{},\"pipeline_saturated\":{}}}"
        ),
        r.counter("remote.frame_bytes").get(),
        hits,
        misses,
        reuse_pct,
        r.gauge("server.pipeline_queue_depth").get(),
        r.counter("server.pipeline_saturated").get(),
    )
}

/// A worker node under cluster management.
pub struct ManagedWorker {
    /// The node model (load meter, usage history).
    pub node: Node,
    runtime: WorkerRuntime,
}

impl ManagedWorker {
    /// The management-assigned worker id.
    pub fn id(&self) -> WorkerId {
        self.runtime.id()
    }

    /// The worker's name.
    pub fn name(&self) -> &str {
        self.runtime.name()
    }

    /// Current lifecycle state.
    pub fn state(&self) -> WorkerState {
        self.runtime.state()
    }

    /// Signals handled so far (reaction-time log).
    pub fn signal_log(&self) -> Vec<SignalLogEntry> {
        self.runtime.signal_log()
    }

    /// Tasks completed so far.
    pub fn tasks_done(&self) -> u64 {
        self.runtime.tasks_done()
    }
}

/// The assembled framework: space + federation + management + workers.
pub struct AdaptiveCluster {
    config: FrameworkConfig,
    epoch: Instant,
    #[allow(dead_code)]
    bus: Arc<DiscoveryBus>,
    lookup: Arc<LookupService>,
    _registrar: Registrar,
    space: SpaceHandle,
    grid: Option<Arc<PartitionedSpace>>,
    space_name: String,
    bundle_server: Arc<BundleServer>,
    registry: Arc<ExecutorRegistry>,
    monitor: Arc<MonitoringAgent>,
    hub: Arc<ClusterObserver>,
    profiler: Arc<JobProfiler>,
    collector: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
    manager: Manager,
    binding: Option<(String, String)>,
    workers: Vec<ManagedWorker>,
    sampler: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
    space_server: Option<SpaceServer>,
    observer: Option<acc_telemetry::HttpServer>,
}

impl std::fmt::Debug for AdaptiveCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveCluster")
            .field("space", &self.space_name)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl AdaptiveCluster {
    /// Shorthand: default configuration, default space name.
    pub fn with_defaults() -> AdaptiveCluster {
        ClusterBuilder::new(FrameworkConfig::default()).build()
    }

    /// The experiment epoch all millisecond timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// The hosted space.
    pub fn space(&self) -> SpaceHandle {
        self.space.clone()
    }

    /// The space grid, when the cluster was built over shards.
    pub fn grid(&self) -> Option<Arc<PartitionedSpace>> {
        self.grid.clone()
    }

    /// The store all cluster traffic goes through: the grid when one is
    /// configured, the in-process space otherwise.
    pub fn store(&self) -> StoreHandle {
        match &self.grid {
            Some(grid) => grid.clone(),
            None => self.space.clone(),
        }
    }

    /// The network management module.
    pub fn monitor(&self) -> Arc<MonitoringAgent> {
        self.monitor.clone()
    }

    /// The federation hub: merged per-worker history rings, task-level
    /// attribution and straggler verdicts (what `/cluster` renders).
    pub fn cluster_observer(&self) -> Arc<ClusterObserver> {
        self.hub.clone()
    }

    /// Where the observability endpoint is listening, if one was requested
    /// via [`ClusterBuilder::observe`] or `ACC_OBSERVE`.
    pub fn observe_addr(&self) -> Option<std::net::SocketAddr> {
        self.observer.as_ref().map(|s| s.addr())
    }

    /// Installs an application: publishes its code bundle on the bundle
    /// server and registers its executor so workers can link it. Must be
    /// called before [`AdaptiveCluster::add_worker`].
    pub fn install(&mut self, app: &dyn Application) {
        let bundle_name = app.bundle_name();
        self.bundle_server.publish(CodeBundle::synthetic(
            bundle_name.clone(),
            1,
            app.bundle_kb(),
        ));
        self.registry.register(bundle_name.clone(), app.executor());
        self.binding = Some((app.job_name(), bundle_name));
    }

    /// Starts serving the space over TCP so remote workers can join, and
    /// returns the address. Idempotent.
    pub fn serve_space(&mut self) -> std::io::Result<std::net::SocketAddr> {
        if self.space_server.is_none() {
            self.space_server = Some(SpaceServer::spawn(self.space.clone(), "127.0.0.1:0")?);
        }
        Ok(self.space_server.as_ref().expect("just set").addr())
    }

    /// The TCP space server, when [`AdaptiveCluster::serve_space`] has been
    /// called. Exposes operator levers like
    /// [`SpaceServer::disconnect_all`] (and failure injection in tests).
    pub fn space_server(&self) -> Option<&SpaceServer> {
        self.space_server.as_ref()
    }

    /// Adds a worker whose space access goes through the TCP proxy — the
    /// deployment shape, where worker machines reach the master's space
    /// over the network. Requires [`AdaptiveCluster::serve_space`].
    pub fn add_remote_worker(&mut self, spec: NodeSpec) -> std::io::Result<WorkerId> {
        let addr = self.serve_space()?;
        let proxy: StoreHandle = Arc::new(RemoteSpace::connect(addr)?);
        Ok(self.add_worker_with_store(spec, proxy))
    }

    /// Adds a worker node: brings up its SNMP agent, registers it over the
    /// rule-base protocol, and starts monitoring it. The worker serves the
    /// currently installed application.
    ///
    /// # Panics
    /// If no application has been installed yet.
    pub fn add_worker(&mut self, spec: NodeSpec) -> WorkerId {
        // Grid deployments give every worker its own shard connections,
        // exactly as remote workers each get their own RemoteSpace.
        let store: StoreHandle = match &self.grid {
            Some(grid) => Arc::new(
                grid.reconnect()
                    .expect("space-grid shards reachable for new worker"),
            ),
            None => self.space.clone(),
        };
        self.add_worker_with_store(spec, store)
    }

    fn add_worker_with_store(&mut self, spec: NodeSpec, store: StoreHandle) -> WorkerId {
        let (job, bundle_name) = self
            .binding
            .clone()
            .expect("install an application before adding workers");
        let node = Node::new(spec);

        // Rule-base registration: client (worker) and server (management)
        // handshake over a fresh duplex.
        let (client_side, server_side) = duplex_pair();
        let rulebase = self.monitor.rulebase();
        let accept = std::thread::spawn(move || {
            rulebase
                .accept(server_side, Duration::from_secs(5))
                .expect("worker registration handshake")
        });
        let runtime = WorkerRuntime::spawn(WorkerConfig {
            name: node.spec().name.clone(),
            space: store,
            bundle_server: self.bundle_server.clone(),
            registry: self.registry.clone(),
            duplex: client_side,
            bundle_name,
            job,
            node_load: Some(node.load()),
            epoch: self.epoch,
            framework: self.config.clone(),
            publish_metrics: true,
        })
        .expect("worker registration");
        let id = accept.join().expect("accept thread");
        debug_assert_eq!(id, runtime.id());

        // SNMP worker-agent for the node, including the worker runtime's
        // participation gauge.
        let n1 = node.clone();
        let n2 = node.clone();
        let n3 = node.clone();
        let mut mib = host_resources_mib(
            node.spec().name.clone(),
            node.spec().memory_mb as u64 * 1024,
            move || n1.cpu_load(),
            move || n2.free_memory_kb(),
            move || n3.uptime_ticks(),
        );
        let load_for_mib = node.load();
        mib.register_gauge(oids::acc_framework_load(), move || {
            load_for_mib.framework_effective()
        });
        mib.register_gauge(oids::acc_worker_threads(), runtime.participation_gauge());
        let agent = Arc::new(Agent::new(self.config.community.clone(), mib));
        let session = self.manager.session(Box::new(InProcTransport::new(agent)));

        // Monitoring: register with the inference engine and start
        // polling, keyed by the node name the worker's heartbeat tuples
        // carry so both feeds merge into one federation view.
        self.monitor
            .watch_named(id, node.spec().name.clone(), session);

        self.workers.push(ManagedWorker { node, runtime });
        id
    }

    /// The managed workers.
    pub fn workers(&self) -> &[ManagedWorker] {
        &self.workers
    }

    /// Looks the space service up through the federation — the path a
    /// remote master uses — and returns its proxy.
    pub fn find_space(&self) -> Option<SpaceHandle> {
        let found = self.lookup.lookup_named(
            &self.space_name,
            &Attributes::build().set("kind", "tuple-space").done(),
        );
        found.first().and_then(|item| item.proxy::<Space>())
    }

    /// Runs an installed application to completion through the master
    /// module. The space is discovered via the federation, exactly as a
    /// Jini client would.
    pub fn run(&mut self, app: &mut dyn Application) -> RunReport {
        // Grid mode dispatches straight through the partitioned store;
        // otherwise the space is discovered via the federation, exactly
        // as a Jini client would.
        let store: StoreHandle = match &self.grid {
            Some(grid) => grid.clone(),
            None => self.find_space().expect("space registered in federation") as _,
        };
        let mut master = Master::new(store);
        master.dispatch_chunk = self.config.dispatch_chunk;
        master.observer = Some(self.hub.clone());
        master.profiler = Some(self.profiler.clone());
        // Scatter-gather fan-out attribution: per-shard op counts/latency
        // are process-wide histograms, so the job's share is the delta
        // across the run.
        let fanout_before = self.grid.as_ref().map(|g| g.fanout_profile());
        let report = master.run(app).expect("space open for the run's duration");
        if let (Some(grid), Some(before)) = (&self.grid, fanout_before) {
            self.profiler
                .record_fanout(&app.job_name(), grid.fanout_since(&before));
        }
        report
    }

    /// The per-job waterfall profiler (the state behind `/profile`).
    pub fn job_profiler(&self) -> Arc<JobProfiler> {
        self.profiler.clone()
    }

    /// Starts a background sampler recording every node's CPU usage into
    /// its usage history at the given interval (the data behind the
    /// "Worker CPU Usage" plots).
    pub fn start_usage_sampler(&mut self, interval: Duration) {
        if self.sampler.is_some() {
            return;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let nodes: Vec<Node> = self.workers.iter().map(|w| w.node.clone()).collect();
        let epoch = self.epoch;
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                let at_ms = epoch.elapsed().as_millis() as u64;
                for node in &nodes {
                    node.record_usage(at_ms);
                }
                std::thread::sleep(interval);
            }
        });
        self.sampler = Some((stop, thread));
    }

    /// Tears the cluster down: stops monitoring, closes the space (waking
    /// blocked workers), and joins every worker thread.
    pub fn shutdown(mut self) {
        if let Some((stop, thread)) = self.sampler.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
        if let Some((stop, thread)) = self.collector.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
        self.monitor.stop();
        self.space.close();
        // Closing the grid closes the shard spaces themselves, waking any
        // worker blocked on a grid take — the partitioned analogue of
        // closing the in-process space above.
        if let Some(grid) = self.grid.take() {
            grid.close();
        }
        for worker in self.workers.drain(..) {
            worker.runtime.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ExecError, TaskEntry, TaskExecutor, TaskSpec};
    use acc_tuplespace::Payload;

    /// Sums integers 0..n by squaring each in a task.
    struct SumSquares {
        n: u64,
        total: u64,
    }

    impl Application for SumSquares {
        fn job_name(&self) -> String {
            "sum-squares".into()
        }
        fn bundle_name(&self) -> String {
            "sum-squares-bundle".into()
        }
        fn bundle_kb(&self) -> usize {
            4
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            struct Exec;
            impl TaskExecutor for Exec {
                fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                    let x: u64 = task.input()?;
                    Ok((x * x).to_bytes())
                }
            }
            Arc::new(Exec)
        }
        fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
            self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
            Ok(())
        }
    }

    fn fast_config() -> FrameworkConfig {
        FrameworkConfig {
            poll_interval: Duration::from_millis(10),
            class_load_base: Duration::from_millis(2),
            class_load_per_kb: Duration::ZERO,
            task_poll_timeout: Duration::from_millis(10),
            ..FrameworkConfig::default()
        }
    }

    #[test]
    fn end_to_end_adaptive_run() {
        let mut cluster = ClusterBuilder::new(fast_config())
            .space_name("test-space")
            .build();
        let mut app = SumSquares { n: 30, total: 0 };
        cluster.install(&app);
        for i in 0..3 {
            cluster.add_worker(NodeSpec::new(format!("w{i:02}"), 800, 256));
        }
        let report = cluster.run(&mut app);
        assert!(report.complete, "failures: {:?}", report.failures);
        assert_eq!(report.results_collected, 30);
        let expected: u64 = (0..30u64).map(|i| i * i).sum();
        assert_eq!(app.total, expected);
        assert!(report.times.parallel_ms > 0.0);
        // At least one worker was started by the inference engine and did
        // the work.
        assert!(cluster.workers().iter().any(|w| w.tasks_done() > 0));
        cluster.shutdown();
    }

    #[test]
    fn loaded_worker_is_excluded() {
        let mut cluster = ClusterBuilder::new(fast_config()).build();
        let mut app = SumSquares { n: 10, total: 0 };
        cluster.install(&app);
        let busy = cluster.add_worker(NodeSpec::new("busy", 800, 256));
        cluster.add_worker(NodeSpec::new("idle", 800, 256));
        // Peg the first node before any work shows up.
        cluster.workers()[0].node.load().set_background(100);
        // Wait until the inference engine has actually *seen* the pegged
        // load and the worker is not running, rather than sleeping a fixed
        // interval — the poll thread can lag arbitrarily on a loaded host.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let seen = cluster
                .monitor()
                .decisions()
                .iter()
                .any(|d| d.worker == busy && d.external_load >= 90);
            if seen && cluster.workers()[0].state() != WorkerState::Running {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "engine never excluded the busy worker"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = cluster.run(&mut app);
        assert!(report.complete);
        // All tasks went to the idle worker. The counter is incremented
        // *after* the result write, so the master can finish before the
        // last increment lands — wait for it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.workers()[1].tasks_done() < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(cluster.workers()[0].tasks_done(), 0);
        assert_eq!(cluster.workers()[1].tasks_done(), 10);
        cluster.shutdown();
    }

    #[test]
    fn find_space_through_federation() {
        let cluster = ClusterBuilder::new(fast_config())
            .space_name("fed-space")
            .build();
        let space = cluster.find_space().unwrap();
        assert_eq!(space.name(), "fed-space");
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "install an application")]
    fn add_worker_requires_install() {
        let mut cluster = ClusterBuilder::new(fast_config()).build();
        cluster.add_worker(NodeSpec::new("w", 800, 256));
    }

    fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
        use std::io::{Read, Write};
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn observe_endpoint_serves_cluster_health() {
        let mut cluster = ClusterBuilder::new(fast_config())
            .observe("127.0.0.1:0")
            .build();
        let addr = cluster.observe_addr().expect("observer mounted");
        let health = http_get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.0 200"), "got: {health}");
        assert!(health.contains("no workers watched"), "got: {health}");
        let metrics = http_get(addr, "/metrics");
        assert!(
            metrics.contains("process.uptime_seconds"),
            "got: {metrics:.300}"
        );
        // With a worker watched, the heartbeat check reports sample age.
        let mut app = SumSquares { n: 1, total: 0 };
        cluster.install(&app);
        cluster.add_worker(NodeSpec::new("w0", 800, 256));
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = http_get(addr, "/healthz");
            if health.contains("last sample") {
                break;
            }
            assert!(Instant::now() < deadline, "no heartbeat: {health}");
            std::thread::sleep(Duration::from_millis(5));
        }
        let report = cluster.run(&mut app);
        assert!(report.complete);
        cluster.shutdown();
    }

    #[test]
    fn end_to_end_run_over_a_space_grid() {
        // Two external shard servers, as separate processes would host.
        let shard_a = Space::new("shard-a");
        let shard_b = Space::new("shard-b");
        let server_a = SpaceServer::spawn(shard_a.clone(), "127.0.0.1:0").unwrap();
        let server_b = SpaceServer::spawn(shard_b.clone(), "127.0.0.1:0").unwrap();
        let mut cluster = ClusterBuilder::new(fast_config())
            .shards([server_a.addr().to_string(), server_b.addr().to_string()])
            .observe("127.0.0.1:0")
            .build();
        assert_eq!(cluster.grid().expect("grid configured").shard_count(), 2);
        let mut app = SumSquares { n: 40, total: 0 };
        cluster.install(&app);
        for i in 0..2 {
            cluster.add_worker(NodeSpec::new(format!("gw{i}"), 800, 256));
        }
        let report = cluster.run(&mut app);
        assert!(report.complete, "failures: {:?}", report.failures);
        assert_eq!(report.results_collected, 40);
        let expected: u64 = (0..40u64).map(|i| i * i).sum();
        assert_eq!(app.total, expected);
        // The work actually spread: both shards saw traffic.
        let touched_a = shard_a.stats().writes > 0;
        let touched_b = shard_b.stats().writes > 0;
        assert!(touched_a && touched_b, "both shards should carry tuples");
        // Observability: the grid check is green and the shard list is in
        // the cluster views.
        let addr = cluster.observe_addr().expect("observer mounted");
        let health = http_get(addr, "/healthz");
        assert!(health.contains("2/2 shards healthy"), "got: {health}");
        let json = http_get(addr, "/cluster.json");
        assert!(json.contains(r#""grid":{"total":2"#), "got: {json}");
        // Wire-path posture rides along: the run above pushed real frames
        // through RemoteSpace connections, so frame traffic is non-zero.
        assert!(json.contains(r#""wire":{"frame_bytes":"#), "got: {json}");
        assert!(json.contains(r#""buffer_reuse_hits":"#), "got: {json}");
        assert!(json.contains(r#""pipeline_queue_depth":"#), "got: {json}");
        let text = http_get(addr, "/cluster");
        assert!(text.contains("space grid:"), "got: {text}");
        cluster.shutdown();
    }
}
