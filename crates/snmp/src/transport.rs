//! Request/response transports carrying SNMP messages.
//!
//! Two implementations: [`InProcTransport`] calls an [`Agent`] directly (the
//! simulator and most tests use this), and [`TcpTransport`] speaks
//! length-prefixed frames to a [`TcpAgentServer`] over a real loopback
//! socket — exercising the same code path a deployed manager/agent pair
//! would.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::agent::Agent;
use crate::pdu::SnmpError;

/// Moves one request's bytes to an agent and returns the response bytes.
pub trait Transport: Send {
    /// Performs one request/response exchange.
    fn request(&mut self, bytes: &[u8]) -> Result<Vec<u8>, SnmpError>;
}

/// Calls the agent in-process — zero-copy "loopback".
#[derive(Debug, Clone)]
pub struct InProcTransport {
    agent: Arc<Agent>,
}

impl InProcTransport {
    /// Wraps an agent.
    pub fn new(agent: Arc<Agent>) -> InProcTransport {
        InProcTransport { agent }
    }
}

impl Transport for InProcTransport {
    fn request(&mut self, bytes: &[u8]) -> Result<Vec<u8>, SnmpError> {
        self.agent.handle_bytes(bytes)
    }
}

fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    let len = (bytes.len() as u32).to_le_bytes();
    stream.write_all(&len)?;
    stream.write_all(bytes)?;
    stream.flush()
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut len_buf = [0u8; 4];
    stream.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 1 << 20 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

/// Serves one agent over TCP loopback; one thread per connection.
#[derive(Debug)]
pub struct TcpAgentServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpAgentServer {
    /// Binds to an ephemeral loopback port and starts accepting.
    pub fn spawn(agent: Arc<Agent>) -> std::io::Result<TcpAgentServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let agent = agent.clone();
                std::thread::spawn(move || {
                    // Serve frames until the peer hangs up or sends garbage.
                    while let Ok(request) = read_frame(&mut stream) {
                        let Ok(response) = agent.handle_bytes(&request) else {
                            break;
                        };
                        if write_frame(&mut stream, &response).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        Ok(TcpAgentServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpAgentServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// A persistent TCP connection to a [`TcpAgentServer`].
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connects with a 2-second I/O timeout.
    pub fn connect(addr: SocketAddr) -> std::io::Result<TcpTransport> {
        Self::connect_with_timeout(addr, Duration::from_secs(2))
    }

    /// Connects with an explicit I/O timeout.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(TcpTransport { stream })
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, bytes: &[u8]) -> Result<Vec<u8>, SnmpError> {
        write_frame(&mut self.stream, bytes).map_err(|e| SnmpError::Transport(e.to_string()))?;
        read_frame(&mut self.stream).map_err(|e| SnmpError::Transport(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::host_resources_mib;
    use crate::codec::{decode_message, encode_message};
    use crate::oid::oids;
    use crate::pdu::{Message, Pdu, PduType, SnmpValue, VERSION_2C};

    fn agent() -> Arc<Agent> {
        Arc::new(Agent::new(
            "public",
            host_resources_mib("n".into(), 1024, || 33, || 10, || 0),
        ))
    }

    fn load_request() -> Vec<u8> {
        encode_message(&Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Get,
            pdu: Pdu::request(11, &[oids::hr_processor_load_1()]),
        })
    }

    #[test]
    fn inproc_roundtrip() {
        let mut t = InProcTransport::new(agent());
        let resp = decode_message(&t.request(&load_request()).unwrap()).unwrap();
        assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Gauge(33));
    }

    #[test]
    fn tcp_roundtrip() {
        let server = TcpAgentServer::spawn(agent()).unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        let resp = decode_message(&t.request(&load_request()).unwrap()).unwrap();
        assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Gauge(33));
        assert_eq!(resp.pdu.request_id, 11);
    }

    #[test]
    fn tcp_multiple_requests_one_connection() {
        let server = TcpAgentServer::spawn(agent()).unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        for _ in 0..5 {
            let resp = decode_message(&t.request(&load_request()).unwrap()).unwrap();
            assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Gauge(33));
        }
    }

    #[test]
    fn tcp_concurrent_clients() {
        let server = TcpAgentServer::spawn(agent()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut t = TcpTransport::connect(addr).unwrap();
                    for _ in 0..10 {
                        let resp = decode_message(&t.request(&load_request()).unwrap()).unwrap();
                        assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Gauge(33));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn server_shutdown_breaks_clients() {
        let server = TcpAgentServer::spawn(agent()).unwrap();
        let addr = server.addr();
        drop(server);
        // New connections either fail outright or fail on first request.
        match TcpTransport::connect(addr) {
            Err(_) => {}
            Ok(mut t) => assert!(t.request(&load_request()).is_err()),
        }
    }
}
