//! The framework's global telemetry series (`master.*`, `worker.*`,
//! `monitor.*` names), registered once per process in
//! [`acc_telemetry::registry`].

use std::sync::{Arc, OnceLock};

use acc_telemetry::{registry, Counter, Histogram};

/// Framework-layer series. Fields are public handles shared across the
/// master, worker and monitoring modules.
pub(crate) struct CoreSeries {
    /// Application runs driven to completion (or timeout) by a master.
    pub master_runs: Arc<Counter>,
    /// Task entries planned and written into the space.
    pub tasks_planned: Arc<Counter>,
    /// Result entries collected and absorbed by masters.
    pub results_collected: Arc<Counter>,
    /// Task-planning phase wall time per run, µs.
    pub planning_us: Arc<Histogram>,
    /// Result-aggregation phase wall time per run, µs.
    pub aggregation_us: Arc<Histogram>,
    /// End-to-end parallel execution time per run, µs.
    pub parallel_us: Arc<Histogram>,
    /// Per-task master overhead (plan or absorb one task), µs.
    pub master_overhead_us: Arc<Histogram>,
    /// Tasks a worker computed and answered with a result entry.
    pub tasks_completed: Arc<Counter>,
    /// Tasks returned to the space for another attempt.
    pub tasks_retried: Arc<Counter>,
    /// Tasks that exhausted their retries (terminal error result).
    pub tasks_poisoned: Arc<Counter>,
    /// Worker state-machine transitions applied (any signal).
    pub transitions: Arc<Counter>,
    /// Single-task compute time on workers, µs.
    pub compute_us: Arc<Histogram>,
    /// Signal reaction time (management send → worker state change), µs.
    pub reaction_us: Arc<Histogram>,
    /// Load samples examined by the monitoring agent.
    pub monitor_samples: Arc<Counter>,
    /// Samples on which the inference engine emitted a signal.
    pub monitor_signals: Arc<Counter>,
    /// Consecutive-transport-failure strikes workers absorbed on takes
    /// (each strike is one ridden-out transient failure).
    pub transport_strikes: Arc<Counter>,
    /// Heartbeat/metric tuples published into the space by this
    /// process's workers.
    pub heartbeats_published: Arc<Counter>,
    /// Heartbeat tuples the master-side collector ingested.
    pub heartbeats_ingested: Arc<Counter>,
    /// Heartbeat tuples dropped as duplicates/out-of-order (idempotence
    /// by worker + seq).
    pub heartbeats_duplicate: Arc<Counter>,
}

/// The lazily registered framework series (one set per process).
pub(crate) fn series() -> &'static CoreSeries {
    static SERIES: OnceLock<CoreSeries> = OnceLock::new();
    SERIES.get_or_init(|| {
        let r = registry();
        CoreSeries {
            master_runs: r.counter("master.runs"),
            tasks_planned: r.counter("master.tasks.planned"),
            results_collected: r.counter("master.results.collected"),
            planning_us: r.histogram("master.planning.us"),
            aggregation_us: r.histogram("master.aggregation.us"),
            parallel_us: r.histogram("master.parallel.us"),
            master_overhead_us: r.histogram("master.task_overhead.us"),
            tasks_completed: r.counter("worker.task.completed"),
            tasks_retried: r.counter("worker.task.retried"),
            tasks_poisoned: r.counter("worker.task.poisoned"),
            transitions: r.counter("worker.transition.count"),
            compute_us: r.histogram("worker.compute.us"),
            reaction_us: r.histogram("worker.reaction.us"),
            monitor_samples: r.counter("monitor.samples"),
            monitor_signals: r.counter("monitor.signals"),
            transport_strikes: r.counter("worker.transport_strikes"),
            heartbeats_published: r.counter("worker.heartbeats.published"),
            heartbeats_ingested: r.counter("cluster.heartbeats.ingested"),
            heartbeats_duplicate: r.counter("cluster.heartbeats.duplicate"),
        }
    })
}
