//! Deterministic tuple → shard routing.
//!
//! Every tuple hashes to exactly one *owner* shard, and the hash depends
//! only on the tuple's contents — never on connection state, process
//! identity, or time — so a master, any number of workers, and a client
//! that reconnected after a network fault all agree on where a tuple
//! lives. The hash is FNV-1a over the stable wire encoding of the hashed
//! fields (the same encoding the remote protocol uses), so it is
//! identical across processes and across this workspace's builds.
//!
//! Two routing modes, chosen by [`GridConfig::key_fields`]:
//!
//! * **Keyed** (`key_fields` non-empty): a tuple carrying *all* key
//!   fields hashes by its type name plus those field values; a template
//!   binding all key fields with [`Constraint::Exact`] routes lookups to
//!   the one owning shard. Tuples missing any key field fall back to
//!   whole-tuple hashing, and templates that leave a key field unbound
//!   scatter — the constraint-matching rules guarantee such templates can
//!   never match a keyed tuple anyway.
//! * **Spread** (`key_fields` empty, the default): tuples hash over their
//!   type name and every field, spreading uniformly; all template lookups
//!   scatter-gather. This is what the cluster framework uses: task and
//!   result templates bind only the job name, and pinning a whole job to
//!   one shard would defeat partitioning.

use std::cell::RefCell;

use acc_tuplespace::{Constraint, Payload, Template, Tuple, Value, WireWriter};

/// Tunables for a [`crate::PartitionedSpace`].
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Field names whose values key the placement hash (see module docs).
    /// Empty (the default) spreads tuples by whole-tuple hash.
    pub key_fields: Vec<String>,
    /// How long one helper-thread blocking slice lasts during a
    /// scatter-gather `read`/`take`. Shorter slices react faster to a
    /// first-wins cancellation (and to shutdown) at the cost of more
    /// round trips while idle.
    pub take_slice: std::time::Duration,
    /// How often the background prober retries unhealthy shards.
    pub reprobe_interval: std::time::Duration,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            key_fields: Vec::new(),
            take_slice: std::time::Duration::from_millis(25),
            reprobe_interval: std::time::Duration::from_millis(250),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Separates hashed components so `("ab", "c")` and `("a", "bc")` differ.
fn fnv_sep(hash: &mut u64) {
    fnv1a(hash, &[0xff]);
}

thread_local! {
    /// Reused encode scratch for value hashing: routing a tuple hashes
    /// one value encoding per field, and a fresh `Vec` for each would put
    /// an allocation on every routed operation's hot path.
    static HASH_SCRATCH: RefCell<WireWriter> = RefCell::new(WireWriter::default());
}

/// Hashes a value's stable wire encoding — the exact bytes
/// `value.to_bytes()` would produce, without materialising a fresh
/// buffer per value.
fn fnv_value(hash: &mut u64, value: &Value) {
    HASH_SCRATCH.with(|scratch| {
        let mut w = scratch.borrow_mut();
        w.clear();
        value.encode(&mut w);
        fnv1a(hash, w.as_slice());
    });
}

/// The placement hash of a tuple under the given key fields.
///
/// Keyed mode applies only when the tuple carries *every* key field;
/// otherwise (and always in spread mode) the hash covers the tuple's
/// canonical, sorted field list in full.
pub fn tuple_hash(tuple: &Tuple, key_fields: &[String]) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, tuple.type_name().as_bytes());
    if !key_fields.is_empty() && key_fields.iter().all(|k| tuple.get(k).is_some()) {
        for key in key_fields {
            fnv_sep(&mut hash);
            fnv1a(&mut hash, key.as_bytes());
            fnv_sep(&mut hash);
            fnv_value(&mut hash, tuple.get(key).expect("checked above"));
        }
    } else {
        for (name, value) in tuple.fields() {
            fnv_sep(&mut hash);
            fnv1a(&mut hash, name.as_bytes());
            fnv_sep(&mut hash);
            fnv_value(&mut hash, value);
        }
    }
    hash
}

/// The owning shard index for a tuple, over `shards` shards.
pub fn route_tuple(tuple: &Tuple, key_fields: &[String], shards: usize) -> usize {
    (tuple_hash(tuple, key_fields) % shards.max(1) as u64) as usize
}

/// The single shard a template's matches can live on, when one exists.
///
/// `Some(shard)` requires keyed mode, a concrete template type, and an
/// [`Constraint::Exact`] binding for every key field: under those
/// conditions any tuple the template can match carries all key fields
/// with exactly those values, so it hashed to that shard. Everything else
/// returns `None` — the lookup must scatter.
pub fn route_template(template: &Template, key_fields: &[String], shards: usize) -> Option<usize> {
    if key_fields.is_empty() {
        return None;
    }
    let type_name = template.type_name()?;
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, type_name.as_bytes());
    for key in key_fields {
        let value = template.constraints().iter().find_map(|(name, c)| {
            match (name == key.as_str(), c) {
                (true, Constraint::Exact(v)) => Some(v),
                _ => None,
            }
        })?;
        fnv_sep(&mut hash);
        fnv1a(&mut hash, key.as_bytes());
        fnv_sep(&mut hash);
        fnv_value(&mut hash, value);
    }
    Some((hash % shards.max(1) as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed() -> Vec<String> {
        vec!["job".into(), "task_id".into()]
    }

    #[test]
    fn tuple_hash_is_deterministic_and_content_addressed() {
        let a = Tuple::build("acc.task")
            .field("job", "j")
            .field("task_id", 7i64)
            .done();
        let b = Tuple::build("acc.task")
            .field("task_id", 7i64)
            .field("job", "j")
            .done();
        // Field order at build time is irrelevant: tuples canonicalise.
        assert_eq!(tuple_hash(&a, &[]), tuple_hash(&b, &[]));
        assert_eq!(tuple_hash(&a, &keyed()), tuple_hash(&b, &keyed()));
        let c = Tuple::build("acc.task")
            .field("job", "j")
            .field("task_id", 8i64)
            .done();
        assert_ne!(tuple_hash(&a, &[]), tuple_hash(&c, &[]));
    }

    #[test]
    fn keyed_tuples_ignore_non_key_fields() {
        let a = Tuple::build("acc.task")
            .field("job", "j")
            .field("task_id", 7i64)
            .field("payload", vec![1u8, 2, 3])
            .done();
        let b = Tuple::build("acc.task")
            .field("job", "j")
            .field("task_id", 7i64)
            .field("payload", vec![9u8])
            .done();
        assert_eq!(tuple_hash(&a, &keyed()), tuple_hash(&b, &keyed()));
        assert_ne!(tuple_hash(&a, &[]), tuple_hash(&b, &[]));
    }

    #[test]
    fn template_binding_all_keys_routes_to_the_owner() {
        let keys = keyed();
        let tuple = Tuple::build("acc.task")
            .field("job", "j")
            .field("task_id", 7i64)
            .field("payload", vec![0u8; 16])
            .done();
        let template = Template::build("acc.task")
            .eq("job", "j")
            .eq("task_id", 7i64)
            .done();
        for shards in 1..=8 {
            let owner = route_tuple(&tuple, &keys, shards);
            assert_eq!(route_template(&template, &keys, shards), Some(owner));
        }
    }

    #[test]
    fn partial_or_inexact_bindings_scatter() {
        let keys = keyed();
        let by_job = Template::build("acc.task").eq("job", "j").done();
        assert_eq!(route_template(&by_job, &keys, 4), None);
        let ranged = Template::build("acc.task")
            .eq("job", "j")
            .int_range("task_id", 0, 10)
            .done();
        assert_eq!(route_template(&ranged, &keys, 4), None);
        let untyped = Template::any_type()
            .eq("job", "j")
            .eq("task_id", 7i64)
            .done();
        assert_eq!(route_template(&untyped, &keys, 4), None);
        // Spread mode never routes templates.
        let exact = Template::build("acc.task")
            .eq("job", "j")
            .eq("task_id", 7i64)
            .done();
        assert_eq!(route_template(&exact, &[], 4), None);
    }

    /// The scratch-buffer hash path must stay byte-identical to hashing
    /// `value.to_bytes()` — the digest is a cross-process placement
    /// contract, so this pins it against the pre-scratch implementation.
    #[test]
    fn streaming_hash_matches_materialised_encoding() {
        fn reference_hash(tuple: &Tuple) -> u64 {
            let mut hash = FNV_OFFSET;
            fnv1a(&mut hash, tuple.type_name().as_bytes());
            for (name, value) in tuple.fields() {
                fnv_sep(&mut hash);
                fnv1a(&mut hash, name.as_bytes());
                fnv_sep(&mut hash);
                fnv1a(&mut hash, &value.to_bytes());
            }
            hash
        }
        let tuples = [
            Tuple::build("acc.task").done(),
            Tuple::build("acc.task")
                .field("job", "j")
                .field("task_id", 7i64)
                .field("weight", 0.5f64)
                .field("live", true)
                .field("payload", vec![0xffu8, 0x00, 0x7f])
                .done(),
            Tuple::build("acc.result")
                .field(
                    "body",
                    Value::List(vec![Value::Int(1), Value::Str("x".into())]),
                )
                .done(),
        ];
        for tuple in &tuples {
            assert_eq!(tuple_hash(tuple, &[]), reference_hash(tuple));
        }
    }

    #[test]
    fn spread_mode_distributes_across_shards() {
        let mut seen = [0usize; 4];
        for i in 0..256i64 {
            let t = Tuple::build("acc.task")
                .field("job", "j")
                .field("task_id", i)
                .done();
            seen[route_tuple(&t, &[], 4)] += 1;
        }
        for (shard, &count) in seen.iter().enumerate() {
            assert!(
                count > 256 / 16,
                "shard {shard} starved: {count}/256 tuples ({seen:?})"
            );
        }
    }
}
