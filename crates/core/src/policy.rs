//! Execution policy: limits on what foreign tasks may do on a host.
//!
//! The paper lists security among the challenges of cycle stealing:
//! "policies must be defined and enforced to ensure that external
//! application tasks adhere to the limits and restrictions set on
//! resource/data access and utilization" (§1) — in Java, the sandbox
//! model. The Rust equivalent here is an explicit [`ExecutionPolicy`]
//! enforced around every task execution: payload/result size caps and a
//! wall-clock execution budget.
//!
//! On a wall-clock violation the executing thread cannot be killed
//! (executors are arbitrary code), so it is *abandoned*: its eventual
//! result is discarded, the violation is reported, and the task goes back
//! to the space for a healthier worker. The abandoned thread dies with
//! the process — the same containment story as a hung Java thread.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::task::{ExecError, TaskEntry, TaskExecutor};

/// Limits applied to every task execution on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPolicy {
    /// Largest task payload a worker will accept, bytes.
    pub max_payload_bytes: usize,
    /// Largest result a worker will return, bytes.
    pub max_result_bytes: usize,
    /// Wall-clock budget for one task execution (`None` = unbounded).
    pub max_execution: Option<Duration>,
}

impl Default for ExecutionPolicy {
    fn default() -> Self {
        ExecutionPolicy {
            max_payload_bytes: 16 << 20,
            max_result_bytes: 16 << 20,
            max_execution: None,
        }
    }
}

/// How an execution violated the policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyViolation {
    /// The task payload exceeded `max_payload_bytes`.
    PayloadTooLarge {
        /// Actual size.
        got: usize,
        /// Allowed maximum.
        limit: usize,
    },
    /// The produced result exceeded `max_result_bytes`.
    ResultTooLarge {
        /// Actual size.
        got: usize,
        /// Allowed maximum.
        limit: usize,
    },
    /// The execution exceeded its wall-clock budget and was abandoned.
    Timeout {
        /// The budget that was exceeded.
        limit: Duration,
    },
}

impl fmt::Display for PolicyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyViolation::PayloadTooLarge { got, limit } => {
                write!(f, "payload {got} B exceeds limit {limit} B")
            }
            PolicyViolation::ResultTooLarge { got, limit } => {
                write!(f, "result {got} B exceeds limit {limit} B")
            }
            PolicyViolation::Timeout { limit } => {
                write!(f, "execution exceeded {limit:?} and was abandoned")
            }
        }
    }
}

/// Outcome of a policed execution.
pub type PolicedResult = Result<Vec<u8>, PolicedError>;

/// Either the application failed, or the policy stopped it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicedError {
    /// The executor itself failed.
    App(ExecError),
    /// The policy was violated.
    Policy(PolicyViolation),
}

impl fmt::Display for PolicedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicedError::App(e) => write!(f, "{e}"),
            PolicedError::Policy(v) => write!(f, "policy violation: {v}"),
        }
    }
}

impl std::error::Error for PolicedError {}

/// Runs one task under the policy.
pub fn execute_policed(
    executor: &Arc<dyn TaskExecutor>,
    task: &TaskEntry,
    policy: &ExecutionPolicy,
) -> PolicedResult {
    if task.payload.len() > policy.max_payload_bytes {
        return Err(PolicedError::Policy(PolicyViolation::PayloadTooLarge {
            got: task.payload.len(),
            limit: policy.max_payload_bytes,
        }));
    }
    let raw = match policy.max_execution {
        None => executor.execute(task).map_err(PolicedError::App)?,
        Some(limit) => {
            // Run on a helper thread; abandon it on timeout. The channel
            // send fails harmlessly if we already gave up.
            let (tx, rx) = mpsc::channel();
            let executor = executor.clone();
            let task = task.clone();
            std::thread::spawn(move || {
                let _ = tx.send(executor.execute(&task));
            });
            match rx.recv_timeout(limit) {
                Ok(result) => result.map_err(PolicedError::App)?,
                Err(_) => return Err(PolicedError::Policy(PolicyViolation::Timeout { limit })),
            }
        }
    };
    if raw.len() > policy.max_result_bytes {
        return Err(PolicedError::Policy(PolicyViolation::ResultTooLarge {
            got: raw.len(),
            limit: policy.max_result_bytes,
        }));
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl TaskExecutor for Echo {
        fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            Ok(task.payload.clone())
        }
    }

    struct Sleeper(Duration);
    impl TaskExecutor for Sleeper {
        fn execute(&self, _: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            std::thread::sleep(self.0);
            Ok(vec![1])
        }
    }

    struct Bloater(usize);
    impl TaskExecutor for Bloater {
        fn execute(&self, _: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            Ok(vec![0; self.0])
        }
    }

    fn task(payload_len: usize) -> TaskEntry {
        TaskEntry::new("j", 0, vec![0; payload_len])
    }

    #[test]
    fn compliant_execution_passes_through() {
        let exec: Arc<dyn TaskExecutor> = Arc::new(Echo);
        let got = execute_policed(&exec, &task(64), &ExecutionPolicy::default()).unwrap();
        assert_eq!(got.len(), 64);
    }

    #[test]
    fn oversized_payload_rejected_before_execution() {
        let exec: Arc<dyn TaskExecutor> = Arc::new(Echo);
        let policy = ExecutionPolicy {
            max_payload_bytes: 16,
            ..ExecutionPolicy::default()
        };
        let err = execute_policed(&exec, &task(17), &policy).unwrap_err();
        assert_eq!(
            err,
            PolicedError::Policy(PolicyViolation::PayloadTooLarge { got: 17, limit: 16 })
        );
    }

    #[test]
    fn oversized_result_rejected() {
        let exec: Arc<dyn TaskExecutor> = Arc::new(Bloater(100));
        let policy = ExecutionPolicy {
            max_result_bytes: 99,
            ..ExecutionPolicy::default()
        };
        let err = execute_policed(&exec, &task(1), &policy).unwrap_err();
        assert!(matches!(
            err,
            PolicedError::Policy(PolicyViolation::ResultTooLarge {
                got: 100,
                limit: 99
            })
        ));
    }

    #[test]
    fn runaway_execution_is_abandoned() {
        let exec: Arc<dyn TaskExecutor> = Arc::new(Sleeper(Duration::from_secs(5)));
        let policy = ExecutionPolicy {
            max_execution: Some(Duration::from_millis(30)),
            ..ExecutionPolicy::default()
        };
        let begun = std::time::Instant::now();
        let err = execute_policed(&exec, &task(1), &policy).unwrap_err();
        assert!(matches!(
            err,
            PolicedError::Policy(PolicyViolation::Timeout { .. })
        ));
        assert!(
            begun.elapsed() < Duration::from_secs(2),
            "gave up promptly, did not wait for the sleeper"
        );
    }

    #[test]
    fn fast_execution_within_budget_succeeds() {
        let exec: Arc<dyn TaskExecutor> = Arc::new(Sleeper(Duration::from_millis(5)));
        let policy = ExecutionPolicy {
            max_execution: Some(Duration::from_secs(2)),
            ..ExecutionPolicy::default()
        };
        assert!(execute_policed(&exec, &task(1), &policy).is_ok());
    }

    #[test]
    fn app_errors_pass_through_unchanged() {
        struct Failer;
        impl TaskExecutor for Failer {
            fn execute(&self, _: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                Err(ExecError::App("boom".into()))
            }
        }
        let exec: Arc<dyn TaskExecutor> = Arc::new(Failer);
        let err = execute_policed(&exec, &task(1), &ExecutionPolicy::default()).unwrap_err();
        assert_eq!(err, PolicedError::App(ExecError::App("boom".into())));
    }
}
