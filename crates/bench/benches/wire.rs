//! Codec microbenchmarks for the zero-copy wire path.
//!
//! Pure in-memory encode/decode — no sockets — so the numbers isolate
//! the codec itself: the borrowed (frame-sharing, name-interned) decode
//! against a fresh uncached decode, and the reused-scratch encode
//! against encoding into a fresh buffer each time. Measuring runs export
//! `BENCH_wire.json` at the repo root for the perf-trajectory record;
//! CI treats the wall-clock numbers as advisory (the allocation budgets
//! in `tests/alloc_budget.rs` are the hard gate).

use std::time::Instant;

use acc_tuplespace::{decode_frame, Bytes, NameInterner, Payload, Tuple, WireWriter};

fn task_tuple(id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("task_id", id)
        .field("attempt", 1i64)
        .field("live", true)
        .field("weight", 0.5f64)
        .field("payload", vec![0xA5u8; 64])
        .done()
}

/// Median ns/op over `reps` timed passes of `iters` iterations each.
fn median_ns(reps: usize, iters: usize, mut op: impl FnMut()) -> f64 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_nanos() / iters as u128
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let reps = if measure { 30 } else { 1 };
    let iters = if measure { 10_000 } else { 10 };
    let mut results: Vec<(&'static str, f64)> = Vec::new();

    let tuple = task_tuple(7);
    let frame = Bytes::from(tuple.to_bytes());

    // Borrowed decode: warm per-connection name cache, frame shared.
    {
        let mut interner = NameInterner::new();
        let warm: Tuple = decode_frame(frame.clone(), &mut interner).unwrap();
        assert_eq!(warm, tuple);
        let ns = median_ns(reps, iters, || {
            let t: Tuple = decode_frame(frame.clone(), &mut interner).unwrap();
            std::hint::black_box(t);
        });
        results.push(("wire/decode_6field_borrowed", ns));
    }

    // Uncached decode: no interner, every name allocates — what a
    // connection without the cache (or the pre-interning code) pays.
    {
        let bytes = tuple.to_bytes();
        let ns = median_ns(reps, iters, || {
            let t = Tuple::from_bytes(&bytes).unwrap();
            std::hint::black_box(t);
        });
        results.push(("wire/decode_6field_uncached", ns));
    }

    // Reused-scratch encode: clear + encode into one buffer, the frame
    // encoder's steady state.
    {
        let mut w = WireWriter::new();
        let ns = median_ns(reps, iters, || {
            w.clear();
            tuple.encode(&mut w);
            std::hint::black_box(w.len());
        });
        results.push(("wire/encode_6field_reused", ns));
    }

    // Fresh-buffer encode: what `to_bytes()` per frame used to cost.
    {
        let ns = median_ns(reps, iters, || {
            std::hint::black_box(tuple.to_bytes());
        });
        results.push(("wire/encode_6field_fresh", ns));
    }

    // Batch decode: 64 frames through one warm cache — the server's
    // view of a pipelined `write_all`.
    {
        let frames: Vec<Bytes> = (0..64)
            .map(|i| Bytes::from(task_tuple(i).to_bytes()))
            .collect();
        let mut interner = NameInterner::new();
        let batch_iters = (iters / 64).max(1);
        let ns = median_ns(reps, batch_iters, || {
            for f in &frames {
                let t: Tuple = decode_frame(f.clone(), &mut interner).unwrap();
                std::hint::black_box(t);
            }
        });
        results.push(("wire/decode_batch_64", ns));
    }

    let ns_of = |needle: &str| results.iter().find(|(l, _)| *l == needle).unwrap().1;
    let decode_speedup =
        ns_of("wire/decode_6field_uncached") / ns_of("wire/decode_6field_borrowed");
    let encode_speedup = ns_of("wire/encode_6field_fresh") / ns_of("wire/encode_6field_reused");

    for (label, ns) in &results {
        if measure {
            println!("{label}: {ns:.0} ns/iter");
        } else {
            println!("{label}: ok (test mode)");
        }
    }
    if !measure {
        println!("wire: smoke ok");
        return;
    }
    println!("wire/decode_borrowed_speedup: {decode_speedup:.2}x");
    println!("wire/encode_reused_speedup: {encode_speedup:.2}x");

    let mut json = String::from("{\n  \"bench\": \"wire\",\n  \"results_ns\": {\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{label}\": {ns:.0}{comma}\n"));
    }
    json.push_str(&format!(
        "  }},\n  \"decode_borrowed_speedup\": {decode_speedup:.3},\n  \"encode_reused_speedup\": {encode_speedup:.3}\n}}\n"
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wire.json");
    std::fs::write(out, json).unwrap();
    println!("wire: wrote {out}");
}
