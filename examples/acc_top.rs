//! `acc-top`: a live terminal dashboard over the cluster federation view.
//!
//! Polls a running cluster's `/cluster` route (mounted by `ACC_OBSERVE` or
//! `ClusterBuilder::observe`) and redraws the merged per-worker table —
//! load and framework-load history, task throughput, compute-time
//! quantiles, heartbeat age, and straggler flags — like `top`, but for the
//! whole cluster.
//!
//! ```text
//! cargo run --release --example acc_top -- 127.0.0.1:9137
//! ```
//!
//! Flags:
//! * `--once`         fetch `/cluster.json` once, print it raw, and exit
//!   (the headless/CI mode). The latest job's `/profile` waterfall, when
//!   the server has one, goes to stderr so stdout stays pure JSON.
//! * `--interval-ms N` redraw period (default 1000).
//!
//! The address defaults to `$ACC_OBSERVE`, then `127.0.0.1:9137`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some((head, body)) = raw.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        ));
    };
    if !head.starts_with("HTTP/1.0 200") {
        let status = head.lines().next().unwrap_or("?");
        return Err(std::io::Error::other(format!("server said: {status}")));
    }
    Ok(body.to_owned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let once = args.iter().any(|a| a == "--once");
    let interval_ms: u64 = args
        .iter()
        .position(|a| a == "--interval-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let addr = args
        .iter()
        .find(|a| !a.starts_with("--") && a.contains(':'))
        .cloned()
        .or_else(|| std::env::var("ACC_OBSERVE").ok().filter(|v| !v.is_empty()))
        .unwrap_or_else(|| "127.0.0.1:9137".into());

    if once {
        // Headless mode: one JSON snapshot on stdout, for scripts and CI.
        match http_get(&addr, "/cluster.json") {
            Ok(body) => println!("{body}"),
            Err(e) => {
                eprintln!("acc-top: {addr}: {e}");
                std::process::exit(1);
            }
        }
        // The JobProfile section: latest job's waterfall, if the server
        // exposes /profile (older servers don't — stay quiet then).
        if let Ok(profile) = http_get(&addr, "/profile") {
            eprintln!("--- JobProfile ---");
            eprint!("{profile}");
        }
        return;
    }

    let mut failures = 0u32;
    loop {
        match http_get(&addr, "/cluster") {
            Ok(body) => {
                failures = 0;
                // Clear screen + home, then the federation table as-is.
                print!("\x1b[2J\x1b[H");
                println!("acc-top — {addr} (refresh {interval_ms} ms, ctrl-c to quit)");
                println!();
                print!("{body}");
                // Latest job's profile waterfall, when the server has one.
                if let Ok(profile) = http_get(&addr, "/profile") {
                    println!();
                    print!("{profile}");
                }
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                failures += 1;
                eprintln!("acc-top: {addr}: {e}");
                if failures >= 5 {
                    eprintln!("acc-top: giving up after {failures} consecutive failures");
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
