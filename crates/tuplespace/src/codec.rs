//! [`Payload`] codecs for [`Value`], [`Tuple`] and [`Template`] — what the
//! remote-space protocol (and anything else that ships tuples across a
//! wire) serializes.

use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::template::{Constraint, Template};
use crate::tuple::Tuple;
use crate::value::Value;

impl Payload for Value {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Value::Int(v) => {
                w.put_u8(0);
                w.put_i64(*v);
            }
            Value::Float(v) => {
                w.put_u8(1);
                w.put_f64(*v);
            }
            Value::Bool(v) => {
                w.put_u8(2);
                w.put_bool(*v);
            }
            Value::Str(v) => {
                w.put_u8(3);
                w.put_str(v);
            }
            Value::Bytes(v) => {
                w.put_u8(4);
                w.put_blob(v);
            }
            Value::List(items) => {
                w.put_u8(5);
                w.put_u32(items.len() as u32);
                for item in items {
                    item.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        match r.get_u8()? {
            0 => Ok(Value::Int(r.get_i64()?)),
            1 => Ok(Value::Float(r.get_f64()?)),
            2 => Ok(Value::Bool(r.get_bool()?)),
            3 => Ok(Value::Str(r.get_str()?)),
            4 => Ok(Value::Bytes(r.get_blob()?)),
            5 => {
                let n = r.get_u32()? as usize;
                if n > 1 << 20 {
                    return Err(PayloadError::Corrupt("list length"));
                }
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(Value::decode(r)?);
                }
                Ok(Value::List(items))
            }
            _ => Err(PayloadError::Corrupt("value tag")),
        }
    }
}

impl Payload for Tuple {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self.type_name());
        w.put_u32(self.len() as u32);
        for (name, value) in self.fields() {
            w.put_str(name);
            value.encode(w);
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        let type_name = r.get_str()?;
        let n = r.get_u32()? as usize;
        if n > 1 << 16 {
            return Err(PayloadError::Corrupt("field count"));
        }
        let mut builder = Tuple::build(type_name);
        for _ in 0..n {
            let name = r.get_str()?;
            let value = Value::decode(r)?;
            builder = builder.field(name, value);
        }
        Ok(builder.done())
    }
}

impl Payload for Template {
    fn encode(&self, w: &mut WireWriter) {
        match self.type_name() {
            Some(ty) => {
                w.put_bool(true);
                w.put_str(ty);
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.constraints().len() as u32);
        for (name, constraint) in self.constraints() {
            w.put_str(name);
            match constraint {
                Constraint::Exact(v) => {
                    w.put_u8(0);
                    v.encode(w);
                }
                Constraint::OneOf(vs) => {
                    w.put_u8(1);
                    w.put_u32(vs.len() as u32);
                    for v in vs {
                        v.encode(w);
                    }
                }
                Constraint::IntRange(lo, hi) => {
                    w.put_u8(2);
                    w.put_i64(*lo);
                    w.put_i64(*hi);
                }
                Constraint::FloatRange(lo, hi) => {
                    w.put_u8(3);
                    w.put_f64(*lo);
                    w.put_f64(*hi);
                }
                Constraint::Exists => w.put_u8(4),
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        let mut builder = if r.get_bool()? {
            Template::build(r.get_str()?)
        } else {
            Template::any_type()
        };
        let n = r.get_u32()? as usize;
        if n > 1 << 16 {
            return Err(PayloadError::Corrupt("constraint count"));
        }
        for _ in 0..n {
            let name = r.get_str()?;
            builder = match r.get_u8()? {
                0 => builder.eq(name, Value::decode(r)?),
                1 => {
                    let k = r.get_u32()? as usize;
                    if k > 1 << 16 {
                        return Err(PayloadError::Corrupt("one-of length"));
                    }
                    let mut vs = Vec::with_capacity(k.min(1024));
                    for _ in 0..k {
                        vs.push(Value::decode(r)?);
                    }
                    builder.one_of(name, vs)
                }
                2 => {
                    let lo = r.get_i64()?;
                    let hi = r.get_i64()?;
                    builder.int_range(name, lo, hi)
                }
                3 => {
                    let lo = r.get_f64()?;
                    let hi = r.get_f64()?;
                    builder.float_range(name, lo, hi)
                }
                4 => builder.exists(name),
                _ => return Err(PayloadError::Corrupt("constraint tag")),
            };
        }
        Ok(builder.done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_tuple() -> Tuple {
        Tuple::build("acc.task")
            .field("id", 42i64)
            .field("weight", -1.5f64)
            .field("live", true)
            .field("label", "strip-3")
            .field("payload", vec![0u8, 255, 128])
            .field(
                "coords",
                vec![
                    Value::Int(1),
                    Value::Str("x".into()),
                    Value::List(vec![Value::Bool(false)]),
                ],
            )
            .done()
    }

    #[test]
    fn value_roundtrip_all_variants() {
        for v in [
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Bool(true),
            Value::Str("héllo".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::List(vec![Value::Int(1), Value::List(vec![])]),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn tuple_roundtrip() {
        let t = rich_tuple();
        assert_eq!(Tuple::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn template_roundtrip_all_constraints() {
        let tmpl = Template::build("acc.task")
            .eq("id", 42i64)
            .one_of("label", vec!["a".into(), "b".into()])
            .int_range("x", -5, 5)
            .float_range("y", 0.0, 1.0)
            .exists("payload")
            .done();
        let decoded = Template::from_bytes(&tmpl.to_bytes()).unwrap();
        assert_eq!(decoded, tmpl);

        let any = Template::any_type().exists("k").done();
        assert_eq!(Template::from_bytes(&any.to_bytes()).unwrap(), any);
    }

    #[test]
    fn decoded_template_still_matches() {
        let tmpl = Template::build("acc.task").eq("id", 42i64).done();
        let decoded = Template::from_bytes(&tmpl.to_bytes()).unwrap();
        assert!(decoded.matches(&rich_tuple()));
    }

    #[test]
    fn corrupt_tags_rejected() {
        assert!(Value::from_bytes(&[9]).is_err());
        let mut bytes = rich_tuple().to_bytes();
        let last = bytes.len() - 1;
        bytes.truncate(last);
        assert!(Tuple::from_bytes(&bytes).is_err());
    }
}
