//! Recursive ray tracing and strip rendering.

use super::geometry::{HitRecord, Ray, Surface};
use super::math::Vec3;
use super::scene::Scene;

const SHADOW_BIAS: f64 = 1e-6;

/// The nearest hit in the scene.
fn nearest_hit(scene: &Scene, ray: &Ray) -> Option<HitRecord> {
    let mut best: Option<HitRecord> = None;
    for object in &scene.objects {
        if let Some(hit) = object.hit(ray, SHADOW_BIAS) {
            if best.as_ref().is_none_or(|b| hit.t < b.t) {
                best = Some(hit);
            }
        }
    }
    best
}

/// Is the segment from `point` toward `light_pos` blocked?
fn in_shadow(scene: &Scene, point: Vec3, light_pos: Vec3) -> bool {
    let to_light = light_pos - point;
    let distance = to_light.length();
    let ray = Ray::new(point, to_light);
    scene
        .objects
        .iter()
        .filter_map(|o| o.hit(&ray, SHADOW_BIAS))
        .any(|hit| hit.t < distance)
}

/// Traces one ray to a color: Phong shading + shadow rays + specular
/// reflection up to `depth` bounces.
pub fn trace_ray(scene: &Scene, ray: &Ray, depth: u32) -> Vec3 {
    let Some(hit) = nearest_hit(scene, ray) else {
        return scene.background;
    };
    let m = hit.material;
    let mut color = m.color * m.ambient;
    for light in &scene.lights {
        if in_shadow(scene, hit.point, light.position) {
            continue;
        }
        let to_light = (light.position - hit.point).normalized();
        let diffuse = hit.normal.dot(to_light).max(0.0);
        color = color + m.color.hadamard(light.intensity) * (m.diffuse * diffuse);
        if m.specular > 0.0 {
            let reflect_dir = (-to_light).reflect(hit.normal);
            let spec = reflect_dir.dot(ray.dir).max(0.0).powf(m.shininess);
            color = color + light.intensity * (m.specular * spec);
        }
    }
    if m.reflectivity > 0.0 && depth > 0 {
        let reflected = Ray::new(hit.point, ray.dir.reflect(hit.normal));
        let bounce = trace_ray(scene, &reflected, depth - 1);
        color = color * (1.0 - m.reflectivity) + bounce * m.reflectivity;
    }
    color.clamp01()
}

/// Renders scan lines `[y0, y0+rows)` of a `width`×`height` image,
/// returning `rows * width * 3` RGB bytes — the task computation of the
/// parallel ray tracer.
pub fn render_strip(scene: &Scene, y0: u32, rows: u32, width: u32, height: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity((rows * width * 3) as usize);
    for py in y0..y0 + rows {
        for px in 0..width {
            let ray = scene.camera.primary_ray(px, py, width, height);
            let color = trace_ray(scene, &ray, scene.max_depth);
            out.extend_from_slice(&color.to_rgb8());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raytrace::scene::benchmark_scene;

    #[test]
    fn miss_returns_background() {
        let scene = benchmark_scene();
        let up = Ray::new(Vec3::new(0.0, 50.0, 0.0), Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(trace_ray(&scene, &up, 4), scene.background);
    }

    #[test]
    fn center_pixel_hits_the_mirror_sphere() {
        let scene = benchmark_scene();
        let ray = scene.camera.primary_ray(300, 280, 600, 600);
        let color = trace_ray(&scene, &ray, 4);
        assert_ne!(color, scene.background);
    }

    #[test]
    fn strip_has_expected_size_and_content() {
        let scene = benchmark_scene();
        let strip = render_strip(&scene, 0, 5, 64, 64);
        assert_eq!(strip.len(), 5 * 64 * 3);
        // Top rows see mostly background; not all-black, not all-white.
        assert!(strip.iter().any(|&b| b > 0));
        assert!(strip.iter().any(|&b| b < 255));
    }

    #[test]
    fn strips_tile_the_full_image() {
        let scene = benchmark_scene();
        let whole = render_strip(&scene, 0, 16, 32, 16);
        let top = render_strip(&scene, 0, 8, 32, 16);
        let bottom = render_strip(&scene, 8, 8, 32, 16);
        let stitched: Vec<u8> = top.into_iter().chain(bottom).collect();
        assert_eq!(stitched, whole);
    }

    #[test]
    fn reflection_depth_changes_mirror_pixels() {
        let scene = benchmark_scene();
        // A ray that hits the mirror ball head-on.
        let ray = scene.camera.primary_ray(300, 260, 600, 600);
        let with_bounce = trace_ray(&scene, &ray, 4);
        let without = trace_ray(&scene, &ray, 0);
        assert_ne!(with_bounce, without, "reflection must contribute");
    }

    #[test]
    fn shadows_darken_points_behind_occluders() {
        let scene = benchmark_scene();
        // The floor point directly beneath the big sphere is shadowed from
        // above-ish lights; a far-away floor point is lit.
        let below_sphere = Vec3::new(0.0, -0.999, -6.0);
        let open_floor = Vec3::new(8.0, -0.999, 2.0);
        let light = scene.lights[0].position;
        assert!(super::in_shadow(&scene, below_sphere, light));
        assert!(!super::in_shadow(&scene, open_floor, light));
    }
}
