//! The master module (paper §4.1–4.2).
//!
//! The master defines the problem domain: it decomposes the application
//! into independent tasks during the *task-planning* phase, writes them
//! into the space, and during the *result-aggregation* phase removes result
//! entries and assimilates them into the final solution. All of the paper's
//! master-side metrics (task planning time, task aggregation time, max
//! worker time, parallel time, max master overhead) are measured here.

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use acc_cluster::{ClusterObserver, JobProfiler, JobRecorder};
use acc_telemetry::span;
use acc_tuplespace::{SpaceError, StoreHandle, Template, Tuple};

use crate::checkpoint::CheckpointState;
use crate::metrics::PhaseTimes;
use crate::series::series;
use crate::task::{result_template, Application, ExecError, ResultEntry, TaskEntry, TASK_TYPE};

/// Outcome of one application run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Phase timings (the paper's figures plot these).
    pub times: PhaseTimes,
    /// Results successfully collected and absorbed.
    pub results_collected: usize,
    /// Per-task aggregation failures (decode errors etc.).
    pub failures: Vec<(u64, ExecError)>,
    /// True when every planned task's result arrived before the deadline.
    pub complete: bool,
}

/// The master process: task planning and result aggregation over a space.
#[derive(Clone)]
pub struct Master {
    space: StoreHandle,
    /// How long to wait for each outstanding result before giving up.
    pub result_timeout: Duration,
    /// How many planned tasks go into one batched space write. Over a
    /// remote space each chunk is a single pipelined round trip instead of
    /// one per task; see [`crate::FrameworkConfig::dispatch_chunk`].
    pub dispatch_chunk: usize,
    /// Federation sink for the task-level timing attribution riding each
    /// result entry. `None` (the default) drops the attribution.
    pub observer: Option<Arc<ClusterObserver>>,
    /// Per-job waterfall sink: every result's timing plus the master's
    /// phase scalars fold into a [`JobProfiler`] build, queryable live
    /// via `/profile`. `None` (the default) skips profiling.
    pub profiler: Option<Arc<JobProfiler>>,
}

impl Master {
    /// Creates a master over a space (local or remote).
    pub fn new(space: StoreHandle) -> Master {
        Master {
            space,
            result_timeout: Duration::from_secs(60),
            dispatch_chunk: 256,
            observer: None,
            profiler: None,
        }
    }

    /// Runs an application end-to-end: plan → (workers compute) → aggregate.
    ///
    /// Returns a [`RunReport`] with the paper's phase timings. If a result
    /// does not arrive within `result_timeout`, aggregation stops and the
    /// report is marked incomplete (`complete == false`).
    ///
    /// Task and result entries are matched by job name only, so a run
    /// assumes a space with no leftover entries for this job. Re-running a
    /// job after an incomplete run on the *same* space would mix the old
    /// run's stragglers into the new aggregation — use a fresh space (as
    /// [`crate::AdaptiveCluster`] does) or drain the job's entries first.
    pub fn run(&self, app: &mut dyn Application) -> Result<RunReport, SpaceError> {
        let job = app.job_name();
        // The run's root span: every task tuple written during planning
        // carries this trace context, so worker spans — possibly in other
        // processes — assemble under it.
        let _dispatch = span!("master.dispatch", job = job.as_str());
        let run_start = Instant::now();
        let mut times = PhaseTimes::default();
        if let Some(profiler) = &self.profiler {
            profiler.job_started(&job);
        }

        // ------------------------------------------------------------
        // Task-planning phase.
        // ------------------------------------------------------------
        let planning_start = Instant::now();
        let mut max_overhead = 0.0f64;
        let specs = {
            let _span = span!("master.planning", job = job.as_str());
            let specs = app.plan();
            times.tasks = specs.len();
            for batch in specs.chunks(self.dispatch_chunk.max(1)) {
                let mut tuples: Vec<Tuple> = batch
                    .iter()
                    .map(|spec| {
                        TaskEntry::new(job.clone(), spec.task_id, spec.payload.clone()).to_tuple()
                    })
                    .collect();
                dispatch_batch(&self.space, &mut tuples, &mut max_overhead)?;
            }
            specs
        };
        times.task_planning_ms = ms_since(planning_start);
        series().tasks_planned.add(specs.len() as u64);

        // ------------------------------------------------------------
        // Result-aggregation phase. The master blocks on the space until
        // each outstanding result arrives; workers run concurrently.
        // ------------------------------------------------------------
        let template = result_template(&job);
        let mut report = RunReport::default();
        let aggregation_start = Instant::now();
        let mut aggregation_busy = 0.0f64;
        let mut recorder = self.profiler.as_ref().map(|p| p.recorder(&job));
        let aggregation_span = span!(
            "master.aggregation",
            job = job.as_str(),
            tasks = specs.len()
        );
        for _ in 0..specs.len() {
            let Some(tuple) = self.space.take(&template, Some(self.result_timeout))? else {
                break; // deadline: a worker died or was stopped for good
            };
            let per_task = Instant::now();
            match ResultEntry::from_tuple(&tuple) {
                None => report
                    .failures
                    .push((u64::MAX, ExecError::App("malformed result entry".into()))),
                Some(result) => {
                    times.max_worker_ms = times.max_worker_ms.max(result.span_ms);
                    let slot = times
                        .per_worker_ms
                        .entry(result.worker.clone())
                        .or_insert(0.0);
                    *slot = slot.max(result.span_ms);
                    if let Some(observer) = &self.observer {
                        observer.record_attribution(&result.job, &result.worker, &result.timing);
                    }
                    if let Some(recorder) = &mut recorder {
                        recorder.record_task(
                            result.task_id,
                            &result.worker,
                            &result.timing,
                            result.error.is_some(),
                        );
                    }
                    match result.error {
                        // A poison task exhausted its retries: account for
                        // it so the run terminates, but report the failure.
                        Some(error) => report
                            .failures
                            .push((result.task_id, ExecError::App(error))),
                        None => match app.absorb(result.task_id, &result.payload) {
                            Ok(()) => report.results_collected += 1,
                            Err(e) => report.failures.push((result.task_id, e)),
                        },
                    }
                }
            }
            let elapsed = ms_since(per_task);
            aggregation_busy += elapsed;
            max_overhead = max_overhead.max(elapsed);
        }
        drop(aggregation_span);
        // Task aggregation time is the wall time of the aggregation phase:
        // it tracks max worker time, since the master waits for the last
        // task to complete (paper §5.2.1).
        times.task_aggregation_ms = ms_since(aggregation_start);
        times.max_master_overhead_ms = max_overhead;
        times.parallel_ms = ms_since(run_start);
        report.complete = report.results_collected == specs.len();
        drop(recorder); // flushes any buffered results into the build
        if let Some(profiler) = &self.profiler {
            // Aggregation phase cost is the master's *busy* time, not the
            // phase's wall (which mostly overlaps worker compute).
            profiler.job_finished(
                &job,
                (times.task_planning_ms * 1e3) as u64,
                (aggregation_busy * 1e3) as u64,
                times.parallel_ms as u64,
            );
        }
        times.publish();
        series().master_runs.inc();
        series()
            .results_collected
            .add(report.results_collected as u64);
        report.times = times;
        Ok(report)
    }

    /// Like [`run`](Master::run), but persisting aggregation progress to a
    /// checkpoint file every `every` absorbed results, and resuming from
    /// that file when it already exists.
    ///
    /// On resume the application's partial aggregate is restored via
    /// [`Application::restore_partials`], result entries that reached the
    /// (typically durable, recovered) space before the previous master died
    /// are drained first, and only tasks that are neither completed nor
    /// still queued in the space are re-written. Results are deduplicated
    /// by task id, so a task that was re-issued and computed twice is
    /// absorbed exactly once. The checkpoint file is removed when the run
    /// completes, and rewritten one final time when it does not (timeout).
    ///
    /// `plan` must be deterministic: a restarted master re-plans the job
    /// and relies on task ids matching the interrupted run's.
    pub fn run_with_checkpoint(
        &self,
        app: &mut dyn Application,
        checkpoint: &Path,
        every: usize,
    ) -> Result<RunReport, SpaceError> {
        let job = app.job_name();
        let _dispatch = span!("master.dispatch", job = job.as_str());
        let run_start = Instant::now();
        let mut times = PhaseTimes::default();
        let every = every.max(1);
        if let Some(profiler) = &self.profiler {
            profiler.job_started(&job);
        }

        let mut completed: BTreeSet<u64> = BTreeSet::new();
        let mut resumed = false;
        match CheckpointState::load(checkpoint) {
            Ok(Some(state)) if state.job == job => {
                app.restore_partials(&state.app_state)
                    .map_err(|e| SpaceError::Storage(format!("restore partials: {e}")))?;
                completed = state.completed;
                resumed = true;
            }
            Ok(_) => {}
            Err(e) => return Err(SpaceError::Storage(format!("load checkpoint: {e}"))),
        }

        // ------------------------------------------------------------
        // Task-planning phase.
        // ------------------------------------------------------------
        let planning_start = Instant::now();
        let mut max_overhead = 0.0f64;
        let specs = {
            let _span = span!("master.planning", job = job.as_str());
            app.plan()
        };
        times.tasks = specs.len();
        let total = specs.len() as u64;
        let template = result_template(&job);
        let mut report = RunReport::default();

        // Drain results that reached the space before the previous master
        // died, so their tasks are not re-issued below.
        let mut aggregation_busy = 0.0f64;
        let mut recorder = self.profiler.as_ref().map(|p| p.recorder(&job));
        if resumed {
            while let Some(tuple) = self.space.take_if_exists(&template)? {
                let per_task = Instant::now();
                absorb_result(
                    app,
                    &tuple,
                    &mut completed,
                    &mut report,
                    &mut times,
                    self.observer.as_deref(),
                    recorder.as_mut(),
                );
                let elapsed = ms_since(per_task);
                aggregation_busy += elapsed;
                max_overhead = max_overhead.max(elapsed);
            }
        }

        let mut written = 0usize;
        let chunk = self.dispatch_chunk.max(1);
        let mut pending: Vec<Tuple> = Vec::new();
        for spec in &specs {
            if completed.contains(&spec.task_id) {
                continue;
            }
            if resumed {
                // A recovered durable space may still hold this entry.
                let this_task = Template::build(TASK_TYPE)
                    .eq("job", job.as_str())
                    .eq("task_id", spec.task_id as i64)
                    .done();
                if self.space.read_if_exists(&this_task)?.is_some() {
                    continue;
                }
            }
            let entry = TaskEntry::new(job.clone(), spec.task_id, spec.payload.clone());
            pending.push(entry.to_tuple());
            written += 1;
            if pending.len() >= chunk {
                dispatch_batch(&self.space, &mut pending, &mut max_overhead)?;
            }
        }
        dispatch_batch(&self.space, &mut pending, &mut max_overhead)?;
        times.task_planning_ms = ms_since(planning_start);
        series().tasks_planned.add(written as u64);

        // Persist progress-so-far (including drained leftovers) before
        // blocking on new results: a crash from here on resumes cleanly.
        save_checkpoint(checkpoint, &job, total, &completed, &*app)?;

        // ------------------------------------------------------------
        // Result-aggregation phase.
        // ------------------------------------------------------------
        let aggregation_start = Instant::now();
        let aggregation_span = span!(
            "master.aggregation",
            job = job.as_str(),
            tasks = specs.len()
        );
        let mut since_save = 0usize;
        while (completed.len() as u64) < total {
            let Some(tuple) = self.space.take(&template, Some(self.result_timeout))? else {
                break; // deadline: a worker died or was stopped for good
            };
            let per_task = Instant::now();
            let before = completed.len();
            absorb_result(
                app,
                &tuple,
                &mut completed,
                &mut report,
                &mut times,
                self.observer.as_deref(),
                recorder.as_mut(),
            );
            let elapsed = ms_since(per_task);
            aggregation_busy += elapsed;
            max_overhead = max_overhead.max(elapsed);
            if completed.len() > before {
                since_save += 1;
                if since_save >= every {
                    save_checkpoint(checkpoint, &job, total, &completed, &*app)?;
                    since_save = 0;
                }
            }
        }
        drop(aggregation_span);
        times.task_aggregation_ms = ms_since(aggregation_start);
        times.max_master_overhead_ms = max_overhead;
        times.parallel_ms = ms_since(run_start);
        report.complete = completed.len() as u64 == total;
        drop(recorder); // flushes any buffered results into the build
        if let Some(profiler) = &self.profiler {
            profiler.job_finished(
                &job,
                (times.task_planning_ms * 1e3) as u64,
                (aggregation_busy * 1e3) as u64,
                times.parallel_ms as u64,
            );
        }
        if report.complete {
            let _ = std::fs::remove_file(checkpoint);
        } else {
            save_checkpoint(checkpoint, &job, total, &completed, &*app)?;
        }
        times.publish();
        series().master_runs.inc();
        series()
            .results_collected
            .add(report.results_collected as u64);
        report.times = times;
        Ok(report)
    }
}

/// Writes one planning chunk with a single batched space operation (one
/// pipelined round trip on a remote space) and folds the amortised
/// per-task cost into the master-overhead metric.
fn dispatch_batch(
    space: &StoreHandle,
    pending: &mut Vec<Tuple>,
    max_overhead: &mut f64,
) -> Result<(), SpaceError> {
    if pending.is_empty() {
        return Ok(());
    }
    let n = pending.len();
    let t0 = Instant::now();
    space.write_all(std::mem::take(pending))?;
    *max_overhead = max_overhead.max(ms_since(t0) / n as f64);
    Ok(())
}

/// Absorbs one result tuple into the application, marking its task
/// completed. Duplicates (a re-issued task computed twice) are dropped; a
/// terminal worker error still completes the task so the run terminates.
fn absorb_result(
    app: &mut dyn Application,
    tuple: &acc_tuplespace::Tuple,
    completed: &mut BTreeSet<u64>,
    report: &mut RunReport,
    times: &mut PhaseTimes,
    observer: Option<&ClusterObserver>,
    recorder: Option<&mut JobRecorder>,
) {
    let Some(result) = ResultEntry::from_tuple(tuple) else {
        report
            .failures
            .push((u64::MAX, ExecError::App("malformed result entry".into())));
        return;
    };
    if completed.contains(&result.task_id) {
        return;
    }
    times.max_worker_ms = times.max_worker_ms.max(result.span_ms);
    let slot = times
        .per_worker_ms
        .entry(result.worker.clone())
        .or_insert(0.0);
    *slot = slot.max(result.span_ms);
    if let Some(observer) = observer {
        observer.record_attribution(&result.job, &result.worker, &result.timing);
    }
    if let Some(recorder) = recorder {
        recorder.record_task(
            result.task_id,
            &result.worker,
            &result.timing,
            result.error.is_some(),
        );
    }
    match result.error {
        Some(error) => {
            report
                .failures
                .push((result.task_id, ExecError::App(error)));
        }
        None => match app.absorb(result.task_id, &result.payload) {
            Ok(()) => report.results_collected += 1,
            Err(e) => report.failures.push((result.task_id, e)),
        },
    }
    completed.insert(result.task_id);
}

/// Writes the current progress atomically to the checkpoint file.
fn save_checkpoint(
    path: &Path,
    job: &str,
    total: u64,
    completed: &BTreeSet<u64>,
    app: &dyn Application,
) -> Result<(), SpaceError> {
    let state = CheckpointState {
        job: job.to_owned(),
        total,
        completed: completed.clone(),
        app_state: app.snapshot_partials().unwrap_or_default(),
    };
    state
        .save(path)
        .map_err(|e| SpaceError::Storage(format!("save checkpoint {}: {e}", path.display())))
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{task_template, TaskExecutor, TaskSpec};
    use acc_tuplespace::{Payload, Space, SpaceHandle};
    use std::sync::Arc;

    /// Doubles each input; trivially correct so aggregation is checkable.
    struct Doubler {
        n: u64,
        outputs: Vec<u64>,
    }

    impl Application for Doubler {
        fn job_name(&self) -> String {
            "double".into()
        }
        fn bundle_name(&self) -> String {
            "double-bundle".into()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            (0..self.n).map(|i| TaskSpec::new(i, &(i * 10))).collect()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            struct Exec;
            impl TaskExecutor for Exec {
                fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                    let x: u64 = task.input()?;
                    Ok((x * 2).to_bytes())
                }
            }
            Arc::new(Exec)
        }
        fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
            self.outputs
                .push(u64::from_bytes(payload).map_err(ExecError::Decode)?);
            Ok(())
        }
    }

    /// A bare-bones inline worker: takes tasks, executes, writes results.
    fn spawn_inline_worker(
        space: SpaceHandle,
        job: &str,
        exec: Arc<dyn TaskExecutor>,
        name: &str,
    ) -> std::thread::JoinHandle<()> {
        let template = task_template(job);
        let job = job.to_owned();
        let name = name.to_owned();
        std::thread::spawn(move || {
            let first = Instant::now();
            while let Ok(Some(tuple)) = space.take(&template, Some(Duration::from_millis(200))) {
                let task = TaskEntry::from_tuple(&tuple).unwrap();
                let t0 = Instant::now();
                let payload = exec.execute(&task).unwrap();
                let result = ResultEntry {
                    job: job.clone(),
                    task_id: task.task_id,
                    worker: name.clone(),
                    payload,
                    compute_ms: ms_since(t0),
                    span_ms: ms_since(first),
                    timing: Default::default(),
                    error: None,
                };
                space.write(result.to_tuple()).unwrap();
            }
        })
    }

    #[test]
    fn plan_compute_aggregate_roundtrip() {
        let space = Space::new("test");
        let mut app = Doubler {
            n: 20,
            outputs: vec![],
        };
        let exec = app.executor();
        let w1 = spawn_inline_worker(space.clone(), "double", exec.clone(), "w1");
        let w2 = spawn_inline_worker(space.clone(), "double", exec, "w2");
        let master = Master::new(space.clone());
        let report = master.run(&mut app).unwrap();
        w1.join().unwrap();
        w2.join().unwrap();

        assert!(report.complete);
        assert_eq!(report.results_collected, 20);
        assert!(report.failures.is_empty());
        let mut outputs = app.outputs.clone();
        outputs.sort_unstable();
        assert_eq!(outputs, (0..20).map(|i| i * 20).collect::<Vec<_>>());
        assert_eq!(report.times.tasks, 20);
        assert!(report.times.parallel_ms > 0.0);
        assert!(report.times.task_planning_ms >= 0.0);
        assert!(report.times.workers_used() >= 1);
        // The space is drained: no leftover tasks or results.
        assert_eq!(space.len(), 0);
    }

    #[test]
    fn missing_worker_times_out_incomplete() {
        let space = Space::new("test");
        let mut app = Doubler {
            n: 3,
            outputs: vec![],
        };
        let mut master = Master::new(space.clone());
        master.result_timeout = Duration::from_millis(50);
        let report = master.run(&mut app).unwrap();
        assert!(!report.complete);
        assert_eq!(report.results_collected, 0);
        // Tasks remain in the space for a future worker.
        assert_eq!(space.count(&task_template("double")), 3);
    }

    impl Doubler {
        fn encode_outputs(&self) -> Vec<u8> {
            self.outputs.iter().flat_map(|v| v.to_le_bytes()).collect()
        }

        fn decode_outputs(bytes: &[u8]) -> Result<Vec<u64>, ExecError> {
            if bytes.len() % 8 != 0 {
                return Err(ExecError::App("bad partials length".into()));
            }
            Ok(bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect())
        }
    }

    /// Like [`spawn_inline_worker`] but stops on the first space error, so
    /// a mid-run close (simulated master crash) doesn't panic the thread.
    fn spawn_tolerant_worker(
        space: SpaceHandle,
        job: &str,
        exec: Arc<dyn TaskExecutor>,
        name: &str,
    ) -> std::thread::JoinHandle<()> {
        let template = task_template(job);
        let job = job.to_owned();
        let name = name.to_owned();
        std::thread::spawn(move || {
            let first = Instant::now();
            while let Ok(Some(tuple)) = space.take(&template, Some(Duration::from_millis(200))) {
                let task = TaskEntry::from_tuple(&tuple).unwrap();
                let t0 = Instant::now();
                let payload = exec.execute(&task).unwrap();
                let result = ResultEntry {
                    job: job.clone(),
                    task_id: task.task_id,
                    worker: name.clone(),
                    payload,
                    compute_ms: ms_since(t0),
                    span_ms: ms_since(first),
                    timing: Default::default(),
                    error: None,
                };
                if space.write(result.to_tuple()).is_err() {
                    break;
                }
            }
        })
    }

    /// Delegates to an inner partials-capable app but closes the space
    /// after `crash_after` absorbed results, simulating the master process
    /// dying mid-aggregation.
    struct CrashAfter {
        inner: DoublerWithPartials,
        crash_after: usize,
        absorbed: usize,
        space: StoreHandle,
    }

    impl Application for CrashAfter {
        fn job_name(&self) -> String {
            self.inner.job_name()
        }
        fn bundle_name(&self) -> String {
            self.inner.bundle_name()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            self.inner.plan()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            self.inner.executor()
        }
        fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
            self.inner.absorb(task_id, payload)?;
            self.absorbed += 1;
            if self.absorbed == self.crash_after {
                self.space.close();
            }
            Ok(())
        }
        fn snapshot_partials(&self) -> Option<Vec<u8>> {
            self.inner.snapshot_partials()
        }
        fn restore_partials(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
            self.inner.restore_partials(bytes)
        }
    }

    impl Doubler {
        fn with_partials(n: u64) -> DoublerWithPartials {
            DoublerWithPartials(Doubler { n, outputs: vec![] })
        }
    }

    /// [`Doubler`] plus checkpointable partials (the base test app leaves
    /// the default no-op hooks in place on purpose, to cover that path).
    struct DoublerWithPartials(Doubler);

    impl Application for DoublerWithPartials {
        fn job_name(&self) -> String {
            self.0.job_name()
        }
        fn bundle_name(&self) -> String {
            self.0.bundle_name()
        }
        fn plan(&mut self) -> Vec<TaskSpec> {
            self.0.plan()
        }
        fn executor(&self) -> Arc<dyn TaskExecutor> {
            self.0.executor()
        }
        fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
            self.0.absorb(task_id, payload)
        }
        fn snapshot_partials(&self) -> Option<Vec<u8>> {
            Some(self.0.encode_outputs())
        }
        fn restore_partials(&mut self, bytes: &[u8]) -> Result<(), ExecError> {
            self.0.outputs = Doubler::decode_outputs(bytes)?;
            Ok(())
        }
    }

    #[test]
    fn checkpointed_run_completes_and_removes_file() {
        let space = Space::new("test");
        let mut app = Doubler {
            n: 10,
            outputs: vec![],
        };
        let exec = app.executor();
        let w = spawn_inline_worker(space.clone(), "double", exec, "w1");
        let master = Master::new(space.clone());
        let ckpt =
            std::env::temp_dir().join(format!("acc-master-ckpt-done-{}.bin", std::process::id()));
        let _ = std::fs::remove_file(&ckpt);
        let report = master.run_with_checkpoint(&mut app, &ckpt, 3).unwrap();
        w.join().unwrap();
        assert!(report.complete);
        assert_eq!(report.results_collected, 10);
        assert!(!ckpt.exists(), "completed run removes its checkpoint");
        let mut outputs = app.outputs.clone();
        outputs.sort_unstable();
        assert_eq!(outputs, (0..10).map(|i| i * 20).collect::<Vec<_>>());
    }

    #[test]
    fn master_resumes_from_checkpoint_after_crash() {
        let dir = std::env::temp_dir().join(format!("acc-master-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ckpt = dir.join("master.ckpt");
        let space_dir = dir.join("space");

        // ---- Phase 1: the master "crashes" (space closes) mid-run. ----
        {
            let space =
                Space::durable("m", &space_dir, acc_tuplespace::WalOptions::default()).unwrap();
            let mut app = CrashAfter {
                inner: Doubler::with_partials(20),
                crash_after: 7,
                absorbed: 0,
                space: space.clone(),
            };
            let exec = app.executor();
            let workers: Vec<_> = (0..2)
                .map(|i| {
                    spawn_tolerant_worker(space.clone(), "double", exec.clone(), &format!("w{i}"))
                })
                .collect();
            let master = Master::new(space.clone());
            let err = master.run_with_checkpoint(&mut app, &ckpt, 1).unwrap_err();
            assert_eq!(err, SpaceError::Closed);
            for w in workers {
                w.join().unwrap();
            }
            let state = crate::checkpoint::CheckpointState::load(&ckpt)
                .unwrap()
                .expect("crash leaves a checkpoint behind");
            assert_eq!(state.total, 20);
            assert!(state.completed.len() >= 7, "every=1 persists each result");
            assert!(
                !state.app_state.is_empty(),
                "the checkpoint carries the absorbed partial outputs"
            );
        }

        // ---- Phase 2: a fresh master resumes from the checkpoint. ----
        let space = Space::recover(&space_dir).unwrap();
        let mut app = Doubler::with_partials(20);
        let exec = app.executor();
        let workers: Vec<_> = (0..2)
            .map(|i| spawn_tolerant_worker(space.clone(), "double", exec.clone(), &format!("w{i}")))
            .collect();
        let master = Master::new(space.clone());
        let report = master.run_with_checkpoint(&mut app, &ckpt, 1).unwrap();
        for w in workers {
            w.join().unwrap();
        }
        assert!(report.complete, "resumed run must finish the job");
        let mut outputs = app.0.outputs.clone();
        outputs.sort_unstable();
        assert_eq!(
            outputs,
            (0..20).map(|i| i * 20).collect::<Vec<_>>(),
            "combined result must equal an uninterrupted run — no missing, \
             no double-absorbed tasks"
        );
        assert!(!ckpt.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregation_tracks_worker_spans() {
        let space = Space::new("test");
        // Hand-write two results with known spans before running aggregation.
        let mut app = Doubler {
            n: 2,
            outputs: vec![],
        };
        let master = Master::new(space.clone());
        // Pre-seed results; plan() writes tasks but the workers "already ran".
        for (id, span) in [(0u64, 120.0f64), (1, 80.0)] {
            let r = ResultEntry {
                job: "double".into(),
                task_id: id,
                worker: format!("w{id}"),
                payload: (id * 7).to_bytes(),
                compute_ms: span / 2.0,
                span_ms: span,
                timing: Default::default(),
                error: None,
            };
            space.write(r.to_tuple()).unwrap();
        }
        let report = master.run(&mut app).unwrap();
        assert!(report.complete);
        assert_eq!(report.times.max_worker_ms, 120.0);
        assert_eq!(report.times.per_worker_ms["w0"], 120.0);
        assert_eq!(report.times.per_worker_ms["w1"], 80.0);
    }
}
