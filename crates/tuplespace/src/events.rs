//! Event notification (`notify` in JavaSpaces terms).
//!
//! Listeners register a [`crate::Template`]; whenever a matching tuple
//! becomes visible (plain write, or transactional write at commit), the
//! listener is invoked with a [`SpaceEvent`]. Delivery is synchronous on the
//! writing thread, after the space lock is released; listeners that need a
//! queue can use [`crate::Space::notify_channel`].

/// Opaque handle identifying an event registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventCookie(pub(crate) u64);

/// A notification that a tuple matching a registered template was written.
#[derive(Debug, Clone)]
pub struct SpaceEvent {
    /// The registration this event belongs to.
    pub cookie: EventCookie,
    /// Per-registration sequence number, starting at 1.
    pub seq: u64,
    /// The tuple that was written. A copy — the entry may already have been
    /// taken by the time the listener runs.
    pub tuple: crate::Tuple,
}

pub(crate) type Listener = Box<dyn Fn(SpaceEvent) + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cookies_are_ordered() {
        assert!(EventCookie(1) < EventCookie(2));
        assert_eq!(EventCookie(3), EventCookie(3));
    }
}
