//! The worker module (paper §4.1–4.4).
//!
//! A worker is a thin, application-agnostic process. Its behaviour:
//!
//! * it registers with the network management module over the rule-base
//!   protocol and then obeys Start / Stop / Pause / Resume signals;
//! * on Start it performs remote node configuration — fetches the
//!   application's code bundle from the master's bundle server (paying the
//!   modeled class-loading cost) and links the executor;
//! * while Running it takes task entries from the space by value-based
//!   lookup, computes them, and writes result entries back;
//! * signals only take effect *between* tasks: the currently executing task
//!   always completes and its result is written into the space first, so no
//!   work is ever lost;
//! * on Pause the executor stays linked (Resume skips class loading); on
//!   Stop it is dropped (the next Start reloads).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acc_cluster::LoadMix;
use acc_telemetry::{event, span};
use acc_tuplespace::{SpaceError, StoreHandle, Template, Tuple};
use parking_lot::Mutex;

use crate::config::FrameworkConfig;
use crate::loader::{BundleServer, ExecutorRegistry};
use crate::policy::execute_policed;
use crate::rulebase::{client_register, Duplex, RuleMessage, WorkerId};
use crate::series::series;
use crate::signal::{Signal, SignalLogEntry, WorkerState};
use crate::task::{task_template, ResultEntry, TaskEntry, TaskExecutor};

/// Everything a worker runtime needs to operate.
pub struct WorkerConfig {
    /// The worker's host name (reported in result entries).
    pub name: String,
    /// The shared space (local handle or remote proxy).
    pub space: StoreHandle,
    /// Where to fetch code bundles from.
    pub bundle_server: Arc<BundleServer>,
    /// The local link table.
    pub registry: Arc<ExecutorRegistry>,
    /// Client side of the rule-base protocol link.
    pub duplex: Duplex,
    /// The code bundle this worker loads on Start.
    pub bundle_name: String,
    /// The job whose tasks this worker takes.
    pub job: String,
    /// The node's load meter, so the framework's own CPU use is visible to
    /// monitoring (`None` for tests without a node model).
    pub node_load: Option<Arc<LoadMix>>,
    /// Experiment epoch for millisecond timestamps.
    pub epoch: Instant,
    /// Framework tunables (task poll timeout, etc.).
    pub framework: FrameworkConfig,
    /// Whether this worker publishes heartbeat/metric tuples into the
    /// space for the master-side `ClusterObserver` (the federation
    /// plane). Off by default so bare rigs don't seed the space with
    /// extra tuples; the framework turns it on for managed workers.
    pub publish_metrics: bool,
}

/// CPU percent the worker's process shows while computing a task.
const COMPUTE_LOAD: u64 = 98;
/// CPU percent during remote class loading (the paper's Start-time peak).
const CLASS_LOAD_LOAD: u64 = 80;
/// CPU percent while running but waiting for a task.
const IDLE_RUNNING_LOAD: u64 = 2;

/// Handle to a spawned worker runtime.
pub struct WorkerRuntime {
    name: String,
    id: WorkerId,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<WorkerState>>,
    log: Arc<Mutex<Vec<SignalLogEntry>>>,
    tasks_done: Arc<Mutex<u64>>,
    thread: Option<std::thread::JoinHandle<()>>,
    publisher: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRuntime")
            .field("name", &self.name)
            .field("id", &self.id)
            .finish()
    }
}

impl WorkerRuntime {
    /// Registers over the rule-base link and spawns the worker loop.
    /// Returns `None` if registration fails (management module gone).
    pub fn spawn(config: WorkerConfig) -> Option<WorkerRuntime> {
        let id = client_register(&config.duplex, &config.name, Duration::from_secs(5))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(Mutex::new(WorkerState::Stopped));
        let log = Arc::new(Mutex::new(Vec::new()));
        let tasks_done = Arc::new(Mutex::new(0u64));
        let name = config.name.clone();
        let publisher = (config.publish_metrics && !config.framework.metrics_interval.is_zero())
            .then(|| {
                let hb = HeartbeatState {
                    worker: config.name.clone(),
                    space: config.space.clone(),
                    node_load: config.node_load.clone(),
                    tasks_done: tasks_done.clone(),
                    shutdown: shutdown.clone(),
                    interval: config.framework.metrics_interval,
                };
                std::thread::Builder::new()
                    .name(format!("acc-heartbeat-{name}"))
                    .spawn(move || heartbeat_loop(hb))
                    .expect("spawn heartbeat thread")
            });
        let loop_state = LoopState {
            config,
            shutdown: shutdown.clone(),
            state: state.clone(),
            log: log.clone(),
            tasks_done: tasks_done.clone(),
        };
        // Worker threads are named after the worker so cost attribution,
        // flight dumps, and tests can tell them apart.
        let thread = std::thread::Builder::new()
            .name(format!("acc-worker-{name}"))
            .spawn(move || worker_loop(loop_state))
            .expect("spawn worker thread");
        Some(WorkerRuntime {
            name,
            id,
            shutdown,
            state,
            log,
            tasks_done,
            thread: Some(thread),
            publisher,
        })
    }

    /// The management-assigned worker id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The worker's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The worker's current state.
    pub fn state(&self) -> WorkerState {
        *self.state.lock()
    }

    /// Signals handled so far (reaction-time log, Figs. 9b–11b).
    pub fn signal_log(&self) -> Vec<SignalLogEntry> {
        self.log.lock().clone()
    }

    /// Tasks completed so far.
    pub fn tasks_done(&self) -> u64 {
        *self.tasks_done.lock()
    }

    /// A cheap probe suitable for exporting over SNMP
    /// (`acc_worker_threads`): 1 while the worker participates in the
    /// computation (Running or Paused), 0 once Stopped.
    pub fn participation_gauge(&self) -> impl Fn() -> u64 + Send + Sync + 'static {
        let state = self.state.clone();
        move || match *state.lock() {
            WorkerState::Stopped => 0,
            WorkerState::Running | WorkerState::Paused => 1,
        }
    }

    /// Stops the loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_join();
    }

    fn stop_join(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.publisher.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerRuntime {
    fn drop(&mut self) {
        self.stop_join();
    }
}

struct LoopState {
    config: WorkerConfig,
    shutdown: Arc<AtomicBool>,
    state: Arc<Mutex<WorkerState>>,
    log: Arc<Mutex<Vec<SignalLogEntry>>>,
    tasks_done: Arc<Mutex<u64>>,
}

/// How many *consecutive* transport-level take failures a worker rides out
/// before concluding the space is gone for good. `RemoteSpace` already
/// absorbs a single dropped connection internally; this guards the window
/// where the server is briefly unreachable across calls.
const MAX_TRANSPORT_STRIKES: u32 = 3;

fn worker_loop(ls: LoopState) {
    let template: Template = task_template(&ls.config.job);
    let mut executor: Option<Arc<dyn TaskExecutor>> = None;
    let mut first_access: Option<Instant> = None;
    // Tasks fetched ahead of execution (one batched round trip for up to
    // `task_prefetch` tasks). Only the executing task is committed to this
    // worker: on Pause/Stop/shutdown the buffer is written back to the
    // space so other workers can claim it.
    let prefetch = ls.config.framework.task_prefetch.max(1);
    let mut prefetched: VecDeque<Tuple> = VecDeque::new();
    // Cost attribution riding each result tuple, aligned with
    // `prefetched`: the delivering take's round trip is charged as
    // `wait_us` to the first task of the batch and amortised into
    // `xfer_us` across all of them.
    let mut pending_timing: VecDeque<acc_cluster::TaskTiming> = VecDeque::new();
    // Per-job compute history for tail-based trace retention: the
    // decision whether a finished task was "slow" is made here, where
    // the task's spans live (flight rings are per-process).
    let mut retention_history: std::collections::BTreeMap<String, acc_telemetry::HistoryRing> =
        std::collections::BTreeMap::new();
    // A worker can't know its own result-write cost before writing: the
    // previous write's duration rides the *next* result.
    let mut last_write_us: u64 = 0;
    let mut transport_strikes = 0u32;
    let set_load = |pct: u64| {
        if let Some(load) = &ls.config.node_load {
            load.set_framework(pct);
        }
    };

    loop {
        if ls.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let state = *ls.state.lock();
        match state {
            WorkerState::Stopped | WorkerState::Paused => {
                // Unstarted prefetched tasks must not sit out the back-off
                // invisible to the rest of the cluster (paper §4.3: only
                // the currently executing task completes).
                return_prefetched(&ls, &mut prefetched, &mut pending_timing);
                set_load(0);
                // Blocked on the signal channel; nothing else to do.
                if let Some(msg) = ls.config.duplex.recv_timeout(Duration::from_millis(25)) {
                    handle_message(&ls, msg, &mut executor, &set_load);
                }
            }
            WorkerState::Running => {
                // Signals are drained between tasks (paper §4.3: the node
                // configuration engine forwards the signal before the
                // worker fetches the next task).
                if let Some(msg) = ls.config.duplex.try_recv() {
                    handle_message(&ls, msg, &mut executor, &set_load);
                    continue;
                }
                let Some(exec) = executor.clone() else {
                    // Running without linked code should not happen; recover
                    // by stopping.
                    *ls.state.lock() = WorkerState::Stopped;
                    continue;
                };
                if prefetched.is_empty() {
                    set_load(IDLE_RUNNING_LOAD);
                    let take_start = Instant::now();
                    let taken = ls.config.space.take_up_to(
                        &template,
                        prefetch,
                        Some(ls.config.framework.task_poll_timeout),
                    );
                    match taken {
                        Err(SpaceError::Transport(_))
                            if transport_strikes + 1 < MAX_TRANSPORT_STRIKES =>
                        {
                            // Transient: the server may be restarting.
                            transport_strikes += 1;
                            series().transport_strikes.inc();
                            continue;
                        }
                        Err(_) => break, // space closed: cluster shutting down
                        Ok(batch) => {
                            transport_strikes = 0;
                            if batch.len() > 1 {
                                event!("worker.prefetch", count = batch.len() as u64);
                            }
                            if !batch.is_empty() {
                                let rtt_us = take_start.elapsed().as_micros() as u64;
                                let xfer_us = rtt_us / batch.len() as u64;
                                for i in 0..batch.len() {
                                    pending_timing.push_back(acc_cluster::TaskTiming {
                                        wait_us: if i == 0 { rtt_us } else { 0 },
                                        xfer_us,
                                        compute_us: 0,
                                        write_us: 0,
                                    });
                                }
                            }
                            prefetched.extend(batch);
                        }
                    }
                    // Re-check signals before starting on the batch.
                    continue;
                }
                {
                    let tuple = prefetched.pop_front().expect("non-empty buffer");
                    let mut timing = pending_timing.pop_front().unwrap_or_default();
                    {
                        let Some(task) = TaskEntry::from_tuple(&tuple) else {
                            continue;
                        };
                        if first_access.is_none() {
                            first_access = Some(Instant::now());
                        }
                        // Adopt the master's trace context from the task
                        // tuple (if present) before opening any spans, so
                        // worker.task/worker.compute — and the result tuple
                        // written below — join the master's trace.
                        let _trace_ctx = crate::task::tuple_trace_context(&tuple)
                            .map(acc_telemetry::TraceContext::attach);
                        let _task_span = span!(
                            "worker.task",
                            worker = ls.config.name.as_str(),
                            task_id = task.task_id,
                        );
                        event!("worker.task.take", task_id = task.task_id);
                        set_load(COMPUTE_LOAD);
                        let compute_start = Instant::now();
                        let outcome = {
                            let _compute = span!("worker.compute", task_id = task.task_id);
                            execute_policed(&exec, &task, &ls.config.framework.policy)
                        };
                        let compute_ms = compute_start.elapsed().as_secs_f64() * 1e3;
                        series().compute_us.observe((compute_ms * 1e3) as u64);
                        timing.compute_us = (compute_ms * 1e3) as u64;
                        timing.write_us = last_write_us;
                        maybe_retain_trace(
                            &mut retention_history,
                            &task.job,
                            timing.compute_us,
                            outcome.is_err(),
                            &ls.config.framework,
                        );
                        set_load(IDLE_RUNNING_LOAD);
                        let span_ms = first_access
                            .map(|f| f.elapsed().as_secs_f64() * 1e3)
                            .unwrap_or(compute_ms);
                        match outcome {
                            Ok(payload) => {
                                let result = ResultEntry {
                                    job: task.job.clone(),
                                    task_id: task.task_id,
                                    worker: ls.config.name.clone(),
                                    payload,
                                    compute_ms,
                                    span_ms,
                                    error: None,
                                    timing,
                                };
                                let write_start = Instant::now();
                                if ls.config.space.write(result.to_tuple()).is_err() {
                                    break;
                                }
                                last_write_us = write_start.elapsed().as_micros() as u64;
                                event!("worker.result.write", task_id = task.task_id);
                                series().tasks_completed.inc();
                                *ls.tasks_done.lock() += 1;
                            }
                            Err(e) if task.retries < ls.config.framework.max_task_retries => {
                                // Return the task to the space (with its
                                // retry count bumped) so another attempt —
                                // possibly on another worker — can succeed.
                                let _ = e;
                                let mut retry = task.clone();
                                retry.retries += 1;
                                if ls.config.space.write(retry.to_tuple()).is_err() {
                                    // Same exit as the result-write sites:
                                    // swallowing this error would silently
                                    // lose the task and keep looping against
                                    // a dead space.
                                    break;
                                }
                                series().tasks_retried.inc();
                            }
                            Err(e) => {
                                // Poison task: write a terminal error result
                                // so the master can account for it.
                                let result = ResultEntry {
                                    job: task.job.clone(),
                                    task_id: task.task_id,
                                    worker: ls.config.name.clone(),
                                    payload: Vec::new(),
                                    compute_ms,
                                    span_ms,
                                    error: Some(e.to_string()),
                                    timing,
                                };
                                if ls.config.space.write(result.to_tuple()).is_err() {
                                    break;
                                }
                                event!(
                                    "worker.result.write",
                                    task_id = task.task_id,
                                    poisoned = true
                                );
                                series().tasks_poisoned.inc();
                            }
                        }
                    }
                }
            }
        }
    }
    // Whatever ended the loop (shutdown, space closed, poisoned write):
    // give unstarted prefetched tasks back if the space will still have
    // them, so they are not lost with this worker.
    return_prefetched(&ls, &mut prefetched, &mut pending_timing);
    set_load(0);
    ls.config.duplex.send(RuleMessage::Bye);
}

/// Tail-based trace retention (decided worker-side, after the task ends,
/// where the task's flight records live): pin the current trace when the
/// task errored/retried, or when its compute time reaches the configured
/// percentile of this worker's per-job compute history. The threshold is
/// taken *before* recording the new sample, so a task is judged against
/// the distribution of its predecessors.
fn maybe_retain_trace(
    history: &mut std::collections::BTreeMap<String, acc_telemetry::HistoryRing>,
    job: &str,
    compute_us: u64,
    errored: bool,
    framework: &FrameworkConfig,
) {
    if !acc_telemetry::flight::installed() {
        return;
    }
    let Some(ctx) = acc_telemetry::TraceContext::current() else {
        return; // untraced task: nothing to pin
    };
    let ring = history
        .entry(job.to_owned())
        .or_insert_with(|| acc_telemetry::HistoryRing::new(framework.history_depth));
    let threshold = (ring.len() >= framework.trace_retention_min_samples.max(1))
        .then(|| ring.percentile(framework.trace_retention_percentile))
        .flatten();
    ring.record(0, compute_us as i64);
    let slow = threshold.is_some_and(|t| compute_us as i64 >= t);
    if errored || slow {
        acc_telemetry::flight::retain_trace(ctx.trace_id);
        event!(
            "worker.trace.retained",
            job = job,
            compute_us = compute_us,
            errored = errored
        );
    }
}

/// Writes the worker's unstarted prefetched tasks back to the space in one
/// batch. Failure is tolerated: if the space is closed the cluster is shutting
/// down and the tasks are moot; if it is unreachable the master's result
/// timeout re-issues them. Attribution pending for those tasks is dropped
/// with them — whoever re-takes them measures its own costs.
fn return_prefetched(
    ls: &LoopState,
    prefetched: &mut VecDeque<Tuple>,
    pending_timing: &mut VecDeque<acc_cluster::TaskTiming>,
) {
    pending_timing.clear();
    if prefetched.is_empty() {
        return;
    }
    let tuples: Vec<Tuple> = prefetched.drain(..).collect();
    let count = tuples.len() as u64;
    if ls.config.space.write_all(tuples).is_ok() {
        event!("worker.prefetch.return", count = count);
    }
}

/// State the heartbeat publisher thread owns.
struct HeartbeatState {
    worker: String,
    space: StoreHandle,
    node_load: Option<Arc<LoadMix>>,
    tasks_done: Arc<Mutex<u64>>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
}

/// Publishes one [`acc_cluster::MetricsReport`] tuple per interval until
/// shutdown or the space goes away. Intervals are jittered ±25%
/// deterministically per `(worker, seq)` so a fleet of workers never
/// heartbeats in phase; sleeps run in short slices so shutdown stays
/// prompt even at second-scale intervals.
fn heartbeat_loop(hb: HeartbeatState) {
    let mut seq: u64 = 0;
    loop {
        let wait = acc_cluster::jittered_interval(hb.interval, &hb.worker, seq);
        let deadline = Instant::now() + wait;
        while Instant::now() < deadline {
            if hb.shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10).min(wait));
        }
        if hb.shutdown.load(Ordering::SeqCst) {
            return;
        }
        seq += 1;
        let (total, framework) = hb
            .node_load
            .as_ref()
            .map(|l| (l.total(), l.framework_effective()))
            .unwrap_or((0, 0));
        let report = acc_cluster::MetricsReport {
            worker: hb.worker.clone(),
            seq,
            at_ms: acc_cluster::observer::now_ms(),
            total_load: total,
            framework_load: framework,
            tasks_done: *hb.tasks_done.lock(),
        };
        if hb.space.write(report.to_tuple()).is_err() {
            return; // space closed or unreachable: stop reporting
        }
        series().heartbeats_published.inc();
    }
}

fn handle_message(
    ls: &LoopState,
    msg: RuleMessage,
    executor: &mut Option<Arc<dyn TaskExecutor>>,
    set_load: &impl Fn(u64),
) {
    let RuleMessage::Signal { signal } = msg else {
        return;
    };
    let client_signal_ms = ls.config.epoch.elapsed().as_millis() as u64;
    let current = *ls.state.lock();
    let Some(next) = current.apply(signal) else {
        // Invalid in this state: re-ack with the current state so the
        // inference engine can resynchronise.
        ls.config.duplex.send(RuleMessage::Ack {
            signal,
            new_state: current,
        });
        return;
    };
    // Act on the signal.
    match signal {
        Signal::Start => {
            // Remote node configuration: fetch + verify + link, paying the
            // modeled class-loading cost. This is the overhead Resume
            // avoids.
            set_load(CLASS_LOAD_LOAD);
            match ls.config.bundle_server.fetch(&ls.config.bundle_name) {
                Ok((bundle, cost)) => {
                    std::thread::sleep(cost);
                    match ls.config.registry.link(&bundle) {
                        Ok(exec) => *executor = Some(exec),
                        Err(_) => {
                            set_load(0);
                            ls.config.duplex.send(RuleMessage::Ack {
                                signal,
                                new_state: current,
                            });
                            return;
                        }
                    }
                }
                Err(_) => {
                    set_load(0);
                    ls.config.duplex.send(RuleMessage::Ack {
                        signal,
                        new_state: current,
                    });
                    return;
                }
            }
            set_load(IDLE_RUNNING_LOAD);
        }
        Signal::Stop => {
            // Shutdown/cleanup: drop the linked classes; the next Start
            // must reload them.
            *executor = None;
            set_load(0);
        }
        Signal::Pause => {
            // Temporary back-off: classes stay in memory.
            set_load(0);
        }
        Signal::Resume => {
            // No class loading: remove the lock on the interrupted thread.
            if executor.is_none() {
                // Lost our classes somehow; treat as a failed resume.
                ls.config.duplex.send(RuleMessage::Ack {
                    signal,
                    new_state: current,
                });
                return;
            }
            set_load(IDLE_RUNNING_LOAD);
        }
    }
    *ls.state.lock() = next;
    let worker_signal_ms = ls.config.epoch.elapsed().as_millis() as u64;
    series().transitions.inc();
    series()
        .reaction_us
        .observe(worker_signal_ms.saturating_sub(client_signal_ms) * 1_000);
    event!(
        "worker.transition",
        worker = ls.config.name.as_str(),
        signal = format!("{signal:?}"),
        from = format!("{current:?}"),
        to = format!("{next:?}"),
    );
    ls.log.lock().push(SignalLogEntry {
        signal,
        client_signal_ms,
        worker_signal_ms,
        new_state: next,
    });
    ls.config.duplex.send(RuleMessage::Ack {
        signal,
        new_state: next,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::CodeBundle;
    use crate::rulebase::{duplex_pair, RuleBaseServer};
    use crate::task::{ExecError, TaskSpec};
    use acc_tuplespace::{EntryId, Lease, Payload, Space, SpaceHandle, SpaceResult, TupleStore};

    struct SquareExec;
    impl TaskExecutor for SquareExec {
        fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            let x: u64 = task.input()?;
            Ok((x * x).to_bytes())
        }
    }

    struct Rig {
        space: SpaceHandle,
        server: Arc<RuleBaseServer>,
        worker: WorkerRuntime,
    }

    fn rig() -> Rig {
        let space = Space::new("rig");
        let store: StoreHandle = space.clone();
        rig_with(
            space,
            store,
            Arc::new(SquareExec),
            FrameworkConfig {
                task_poll_timeout: Duration::from_millis(10),
                ..FrameworkConfig::default()
            },
            false,
        )
    }

    /// Like [`rig`] but with the worker reaching the space through an
    /// arbitrary store (for failure injection), a custom executor, and
    /// explicit tunables. `space` is the underlying space tests seed and
    /// inspect directly.
    fn rig_with(
        space: SpaceHandle,
        store: StoreHandle,
        exec: Arc<dyn TaskExecutor>,
        framework: FrameworkConfig,
        publish_metrics: bool,
    ) -> Rig {
        let server = RuleBaseServer::new(Arc::new(|_, _| {}));
        let bundle_server = BundleServer::new(Duration::from_millis(5), Duration::ZERO);
        bundle_server.publish(CodeBundle::synthetic("sq", 1, 1));
        let registry = ExecutorRegistry::new();
        registry.register("sq", exec);
        let (client, server_side) = duplex_pair();
        let server2 = server.clone();
        let accept = std::thread::spawn(move || {
            server2.accept(server_side, Duration::from_secs(5)).unwrap()
        });
        let worker = WorkerRuntime::spawn(WorkerConfig {
            name: "w01".into(),
            space: store,
            bundle_server,
            registry,
            duplex: client,
            bundle_name: "sq".into(),
            job: "squares".into(),
            node_load: None,
            epoch: Instant::now(),
            framework,
            publish_metrics,
        })
        .unwrap();
        let id = accept.join().unwrap();
        assert_eq!(id, worker.id());
        Rig {
            space,
            server,
            worker,
        }
    }

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let begun = Instant::now();
        while !pred() {
            assert!(
                begun.elapsed() < Duration::from_secs(5),
                "timed out waiting for {what}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn put_task(space: &SpaceHandle, id: u64, x: u64) {
        let spec = TaskSpec::new(id, &x);
        let entry = TaskEntry::new("squares", spec.task_id, spec.payload);
        space.write(entry.to_tuple()).unwrap();
    }

    #[test]
    fn worker_idles_until_started() {
        let r = rig();
        put_task(&r.space, 0, 4);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(r.worker.state(), WorkerState::Stopped);
        assert_eq!(r.worker.tasks_done(), 0);
        assert_eq!(r.space.len(), 1, "task untouched while stopped");
    }

    #[test]
    fn start_compute_result_flow() {
        let r = rig();
        put_task(&r.space, 0, 6);
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.tasks_done() == 1, "task completion");
        let result = r
            .space
            .take(
                &crate::task::result_template("squares"),
                Some(Duration::from_secs(2)),
            )
            .unwrap()
            .unwrap();
        let entry = ResultEntry::from_tuple(&result).unwrap();
        assert_eq!(u64::from_bytes(&entry.payload).unwrap(), 36);
        assert_eq!(entry.worker, "w01");
        assert!(entry.span_ms >= 0.0);
        // The Start transition is in the signal log with a class-load cost.
        let log = r.worker.signal_log();
        assert_eq!(log[0].signal, Signal::Start);
        assert!(log[0].reaction_ms() >= 5, "class loading cost paid");
        r.worker.shutdown();
    }

    #[test]
    fn pause_stops_consumption_resume_restarts() {
        let r = rig();
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.state() == WorkerState::Running, "start");
        r.server.send_signal(r.worker.id(), Signal::Pause);
        wait_for(|| r.worker.state() == WorkerState::Paused, "pause");
        put_task(&r.space, 1, 3);
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(r.worker.tasks_done(), 0, "paused: no consumption");
        r.server.send_signal(r.worker.id(), Signal::Resume);
        wait_for(|| r.worker.tasks_done() == 1, "resume computes");
        // Resume must be much cheaper than Start (no class loading).
        let log = r.worker.signal_log();
        let start = log.iter().find(|e| e.signal == Signal::Start).unwrap();
        let resume = log.iter().find(|e| e.signal == Signal::Resume).unwrap();
        assert!(resume.reaction_ms() <= start.reaction_ms());
        r.worker.shutdown();
    }

    #[test]
    fn stop_then_start_reloads_classes() {
        let r = rig();
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.state() == WorkerState::Running, "start");
        r.server.send_signal(r.worker.id(), Signal::Stop);
        wait_for(|| r.worker.state() == WorkerState::Stopped, "stop");
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.state() == WorkerState::Running, "restart");
        let log = r.worker.signal_log();
        let starts: Vec<_> = log.iter().filter(|e| e.signal == Signal::Start).collect();
        assert_eq!(starts.len(), 2);
        assert!(
            starts[1].reaction_ms() >= 5,
            "restart pays class load again"
        );
        r.worker.shutdown();
    }

    #[test]
    fn invalid_signal_is_ignored() {
        let r = rig();
        r.server.send_signal(r.worker.id(), Signal::Resume);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(r.worker.state(), WorkerState::Stopped);
        assert!(r.worker.signal_log().is_empty());
        r.worker.shutdown();
    }

    #[test]
    fn space_close_terminates_worker() {
        let r = rig();
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.state() == WorkerState::Running, "start");
        r.space.close();
        // The loop exits; shutdown() joins promptly.
        r.worker.shutdown();
    }

    /// Delegates everything to an inner space, but fails writes once
    /// armed — the shape of a master whose space became unreachable for
    /// writes while takes still drain a local queue.
    struct FailingWriteStore {
        inner: SpaceHandle,
        arm: AtomicBool,
    }

    impl TupleStore for FailingWriteStore {
        fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
            if self.arm.load(Ordering::SeqCst) {
                return Err(SpaceError::Storage("injected write failure".into()));
            }
            self.inner.write_leased(tuple, lease)
        }
        fn read(&self, t: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
            self.inner.read(t, timeout)
        }
        fn take(&self, t: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
            self.inner.take(t, timeout)
        }
        fn count(&self, t: &Template) -> SpaceResult<usize> {
            Ok(Space::count(&self.inner, t))
        }
        fn close(&self) {
            self.inner.close()
        }
        fn is_closed(&self) -> bool {
            self.inner.is_closed()
        }
    }

    #[test]
    fn retry_write_failure_stops_worker_without_losing_queued_tasks() {
        struct AlwaysFails;
        impl TaskExecutor for AlwaysFails {
            fn execute(&self, _: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                Err(ExecError::App("always fails".into()))
            }
        }
        let space = Space::new("failing-writes");
        let store = Arc::new(FailingWriteStore {
            inner: space.clone(),
            arm: AtomicBool::new(false),
        });
        let r = rig_with(
            space.clone(),
            store.clone(),
            Arc::new(AlwaysFails),
            FrameworkConfig {
                task_poll_timeout: Duration::from_millis(10),
                task_prefetch: 1,
                max_task_retries: 10,
                ..FrameworkConfig::default()
            },
            false,
        );
        put_task(&r.space, 0, 1);
        put_task(&r.space, 1, 2);
        store.arm.store(true, Ordering::SeqCst);
        r.server.send_signal(r.worker.id(), Signal::Start);
        // The worker takes task 0, fails it, and cannot write the retry
        // back: it must stop there — not swallow the error and keep
        // consuming (and losing) the rest of the queue.
        wait_for(|| space.len() == 1, "first task taken");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            space.len(),
            1,
            "worker kept consuming tasks after a failed retry write"
        );
        assert_eq!(r.worker.tasks_done(), 0);
        r.worker.shutdown();
    }

    #[test]
    fn publishing_worker_heartbeats_into_the_space() {
        let space = Space::new("heartbeats");
        let store: StoreHandle = space.clone();
        let r = rig_with(
            space,
            store,
            Arc::new(SquareExec),
            FrameworkConfig {
                task_poll_timeout: Duration::from_millis(10),
                metrics_interval: Duration::from_millis(20),
                ..FrameworkConfig::default()
            },
            true,
        );
        // Heartbeats flow even while the worker is Stopped — the
        // publisher thread is independent of the task loop.
        wait_for(
            || r.space.count(&acc_cluster::metrics_template()) >= 2,
            "two heartbeats",
        );
        let tuple = r
            .space
            .take(
                &acc_cluster::metrics_template(),
                Some(Duration::from_secs(1)),
            )
            .unwrap()
            .unwrap();
        let report = acc_cluster::MetricsReport::from_tuple(&tuple).unwrap();
        assert_eq!(report.worker, "w01");
        assert!(report.seq >= 1);
        r.worker.shutdown();
    }

    #[test]
    fn pause_returns_unstarted_prefetched_tasks_to_the_space() {
        struct Slow;
        impl TaskExecutor for Slow {
            fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
                std::thread::sleep(Duration::from_millis(25));
                let x: u64 = task.input()?;
                Ok((x * x).to_bytes())
            }
        }
        let space = Space::new("prefetching");
        let store: StoreHandle = space.clone();
        let r = rig_with(
            space.clone(),
            store,
            Arc::new(Slow),
            FrameworkConfig {
                task_poll_timeout: Duration::from_millis(10),
                task_prefetch: 4,
                ..FrameworkConfig::default()
            },
            false,
        );
        let total = 10u64;
        for i in 0..total {
            put_task(&r.space, i, i);
        }
        r.server.send_signal(r.worker.id(), Signal::Start);
        wait_for(|| r.worker.tasks_done() >= 1, "first task done");
        r.server.send_signal(r.worker.id(), Signal::Pause);
        wait_for(|| r.worker.state() == WorkerState::Paused, "pause");
        // Let the loop reach its Paused arm, which flushes the buffer.
        std::thread::sleep(Duration::from_millis(60));
        let done = r.worker.tasks_done();
        let queued = space.count(&task_template("squares")) as u64;
        assert!(done < total, "pause must land before the job finishes");
        assert_eq!(
            queued + done,
            total,
            "unstarted prefetched tasks must be back in the space, \
             visible to other workers, while this one is paused"
        );
        // Resume: the worker re-fetches what it gave back and finishes.
        r.server.send_signal(r.worker.id(), Signal::Resume);
        wait_for(|| r.worker.tasks_done() == total, "job completes");
        assert_eq!(space.count(&task_template("squares")), 0);
        r.worker.shutdown();
    }
}
