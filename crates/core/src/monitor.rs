//! The monitoring agent: SNMP polling feeding the inference engine.
//!
//! The network management module's sensing half (paper §4.1): it keeps one
//! SNMP session per registered worker, polls the worker's CPU load at a
//! fixed interval, and hands each sample to the [`InferenceEngine`]; any
//! resulting signal is delivered through the rule-base server.
//!
//! Two variables are polled per tick: `hrProcessorLoad.1` (total CPU) and
//! the private `acc_framework_load` (the worker process's own share). The
//! inference engine decides on their difference — the *external* load — so
//! the framework never reacts to its own computation.
//!
//! When a [`DecisionInput`] is plugged in (the framework plugs in its
//! `ClusterObserver`), each raw sample is first fed to the federation
//! plane and the engine then acts on the *effective* load it returns —
//! trend-floored, and saturated for flagged stragglers — instead of the
//! bare last sample. Without one, the loop is exactly the paper's.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use acc_cluster::DecisionInput;
use acc_snmp::{oids, Session, SnmpValue};
use acc_telemetry::event;
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::config::FrameworkConfig;
use crate::inference::InferenceEngine;
use crate::rulebase::{RuleBaseServer, RuleMessage, WorkerId};
use crate::series::series;
use crate::signal::{Signal, WorkerState};

/// One monitoring decision: the data behind the adaptation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionLogEntry {
    /// Milliseconds since the experiment epoch.
    pub at_ms: u64,
    /// The worker sampled.
    pub worker: WorkerId,
    /// Total CPU load polled from the node.
    pub total_load: u64,
    /// External (non-framework) load — the decision variable. When a
    /// [`DecisionInput`] is plugged in this is the *effective* load the
    /// engine acted on, not the raw sample.
    pub external_load: u64,
    /// Whether the federation plane had this worker flagged as a
    /// straggler when the decision was taken.
    pub straggler: bool,
    /// The signal sent, if the inference engine acted.
    pub signal: Option<Signal>,
}

struct Watcher {
    stop: Sender<()>,
    thread: std::thread::JoinHandle<()>,
}

/// The sensing + deciding half of the network management module.
pub struct MonitoringAgent {
    config: FrameworkConfig,
    epoch: Instant,
    engine: Arc<Mutex<InferenceEngine>>,
    rulebase: Arc<RuleBaseServer>,
    decisions: Arc<Mutex<Vec<DecisionLogEntry>>>,
    watchers: Mutex<Vec<Watcher>>,
    // Optional federation feedback: raw samples go in, effective loads
    // and straggler verdicts come back (None = paper-faithful loop).
    decision_input: Mutex<Option<Arc<dyn DecisionInput>>>,
    // Milliseconds-since-epoch of the newest sample, plus one so a sample
    // in the epoch's first millisecond is distinguishable from "never".
    last_sample_ms: Arc<AtomicU64>,
}

impl std::fmt::Debug for MonitoringAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitoringAgent")
            .field("watchers", &self.watchers.lock().len())
            .finish()
    }
}

impl MonitoringAgent {
    /// Creates the agent (and its rule-base server) for a deployment.
    pub fn new(config: FrameworkConfig, epoch: Instant) -> Arc<MonitoringAgent> {
        let engine = Arc::new(Mutex::new(InferenceEngine::new(
            config.thresholds,
            config.hysteresis,
        )));
        let engine_for_acks = engine.clone();
        let rulebase = RuleBaseServer::new(Arc::new(move |id, msg| match msg {
            RuleMessage::Ack { new_state, .. } => engine_for_acks.lock().on_ack(id, new_state),
            RuleMessage::Bye => engine_for_acks.lock().unregister(id),
            _ => {}
        }));
        Arc::new(MonitoringAgent {
            config,
            epoch,
            engine,
            rulebase,
            decisions: Arc::new(Mutex::new(Vec::new())),
            watchers: Mutex::new(Vec::new()),
            decision_input: Mutex::new(None),
            last_sample_ms: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Plugs a federation decision input into every polling loop. Applies
    /// to watchers started after (and, since loops re-read it each tick,
    /// also before) this call.
    pub fn set_decision_input(&self, input: Arc<dyn DecisionInput>) {
        *self.decision_input.lock() = Some(input);
    }

    /// How long ago the newest worker sample arrived — the health signal
    /// the `/healthz` endpoint exposes. `None` while no watcher is running
    /// (a master-only deployment is not unhealthy, just unwatched).
    pub fn heartbeat_age(&self) -> Option<Duration> {
        if self.watchers.lock().is_empty() {
            return None;
        }
        let stamp = self.last_sample_ms.load(Ordering::Relaxed);
        let elapsed = self.epoch.elapsed().as_millis() as u64;
        // Stamp 0 means no sample yet: the full elapsed time has passed.
        Some(Duration::from_millis(
            elapsed.saturating_sub(stamp.saturating_sub(1)),
        ))
    }

    fn mark_sample(&self) {
        self.last_sample_ms.store(
            self.epoch.elapsed().as_millis() as u64 + 1,
            Ordering::Relaxed,
        );
    }

    /// The rule-base server workers register with.
    pub fn rulebase(&self) -> Arc<RuleBaseServer> {
        self.rulebase.clone()
    }

    /// The inference engine's belief about a worker's state.
    pub fn state_of(&self, id: WorkerId) -> Option<WorkerState> {
        self.engine.lock().state_of(id)
    }

    /// All decisions taken so far.
    pub fn decisions(&self) -> Vec<DecisionLogEntry> {
        self.decisions.lock().clone()
    }

    /// Registers a worker with the inference engine and starts its polling
    /// loop over the given SNMP session.
    pub fn watch(self: &Arc<Self>, id: WorkerId, session: Session) {
        self.watch_named(id, format!("worker-{}", id.0), session);
    }

    /// [`MonitoringAgent::watch`] with the worker's cluster name attached,
    /// so samples and straggler lookups reach the federation plane under
    /// the same key the worker publishes its heartbeats with.
    pub fn watch_named(self: &Arc<Self>, id: WorkerId, name: impl Into<String>, session: Session) {
        let name = name.into();
        self.engine.lock().register(id);
        let (stop_tx, stop_rx) = bounded::<()>(1);
        // Hold the agent weakly: a watch thread must not keep the agent
        // alive, or dropping the cluster without shutdown() would leak
        // pollers forever (Arc cycle agent → watchers → thread → agent).
        let agent = Arc::downgrade(self);
        let interval = self.config.poll_interval;
        let thread = std::thread::spawn(move || {
            let oids_wanted = [oids::hr_processor_load_1(), oids::acc_framework_load()];
            loop {
                let Some(agent) = agent.upgrade() else { break };
                if let Ok(values) = session.get_many(&oids_wanted) {
                    let total = gauge(&values, 0);
                    let framework = gauge(&values, 1);
                    let external = total.saturating_sub(framework);
                    let input = agent.decision_input.lock().clone();
                    let (effective, straggler) = match &input {
                        Some(input) => {
                            input.on_load_sample(&name, external, total);
                            (
                                input.effective_load(&name, external),
                                input.is_straggler(&name),
                            )
                        }
                        None => (external, false),
                    };
                    let signal = agent.engine.lock().on_sample(id, effective);
                    series().monitor_samples.inc();
                    agent.mark_sample();
                    if let Some(sig) = signal {
                        series().monitor_signals.inc();
                        event!(
                            "monitor.decision",
                            worker = id.0,
                            external_load = effective,
                            straggler = straggler,
                            signal = format!("{sig:?}"),
                        );
                        agent.rulebase.send_signal(id, sig);
                    }
                    agent.decisions.lock().push(DecisionLogEntry {
                        at_ms: agent.epoch.elapsed().as_millis() as u64,
                        worker: id,
                        total_load: total,
                        external_load: effective,
                        straggler,
                        signal,
                    });
                }
                drop(agent);
                // Interruptible sleep: stop() wakes us immediately.
                match stop_rx.recv_timeout(interval) {
                    Ok(()) => break,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        self.watchers.lock().push(Watcher {
            stop: stop_tx,
            thread,
        });
    }

    /// Trap-driven alternative to [`MonitoringAgent::watch`] (extension):
    /// instead of polling, consume band-crossing traps pushed by the
    /// worker-agent's `ThresholdWatch`. Each trap's first gauge varbind is
    /// taken as the worker's *external* load.
    pub fn watch_traps(
        self: &Arc<Self>,
        id: WorkerId,
        traps: std::sync::mpsc::Receiver<acc_snmp::Message>,
    ) {
        self.engine.lock().register(id);
        let (stop_tx, stop_rx) = bounded::<()>(1);
        let agent = Arc::downgrade(self);
        let thread = std::thread::spawn(move || loop {
            if stop_rx.try_recv().is_ok() {
                break;
            }
            match traps.recv_timeout(std::time::Duration::from_millis(50)) {
                Ok(msg) => {
                    let Some(agent) = agent.upgrade() else { break };
                    let Some(external) = msg
                        .pdu
                        .varbinds
                        .first()
                        .and_then(|(_, value)| value.as_u64())
                    else {
                        continue;
                    };
                    let signal = agent.engine.lock().on_sample(id, external);
                    series().monitor_samples.inc();
                    agent.mark_sample();
                    if let Some(sig) = signal {
                        series().monitor_signals.inc();
                        event!(
                            "monitor.decision",
                            worker = id.0,
                            external_load = external,
                            signal = format!("{sig:?}"),
                        );
                        agent.rulebase.send_signal(id, sig);
                    }
                    agent.decisions.lock().push(DecisionLogEntry {
                        at_ms: agent.epoch.elapsed().as_millis() as u64,
                        worker: id,
                        total_load: external,
                        external_load: external,
                        straggler: false,
                        signal,
                    });
                }
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        });
        self.watchers.lock().push(Watcher {
            stop: stop_tx,
            thread,
        });
    }

    /// Stops every polling loop and joins the threads.
    pub fn stop(&self) {
        let watchers: Vec<Watcher> = self.watchers.lock().drain(..).collect();
        for w in &watchers {
            let _ = w.stop.try_send(());
        }
        for w in watchers {
            let _ = w.thread.join();
        }
    }
}

impl Drop for MonitoringAgent {
    fn drop(&mut self) {
        // Watch threads hold the agent weakly, so Drop can run while they
        // still exist; their next upgrade() fails and they exit. Nothing to
        // join here (the handles may be the very threads dropping us).
        self.watchers.lock().clear();
    }
}

fn gauge(values: &[(acc_snmp::Oid, SnmpValue)], index: usize) -> u64 {
    values.get(index).and_then(|(_, v)| v.as_u64()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rulebase::{client_register, duplex_pair};
    use acc_cluster::{Node, NodeSpec};
    use acc_snmp::{host_resources_mib, transport::InProcTransport, Agent, Manager};
    use std::time::Duration;

    fn node_session(node: &Node) -> Session {
        let n1 = node.clone();
        let n2 = node.clone();
        let n3 = node.clone();
        let mut mib = host_resources_mib(
            node.spec().name.clone(),
            node.spec().memory_mb as u64 * 1024,
            move || n1.cpu_load(),
            move || n2.free_memory_kb(),
            move || n3.uptime_ticks(),
        );
        let load = node.load();
        mib.register_gauge(oids::acc_framework_load(), move || {
            load.framework_effective()
        });
        let agent = Arc::new(Agent::new("public", mib));
        Manager::new("public").session(Box::new(InProcTransport::new(agent)))
    }

    #[test]
    fn idle_node_gets_started_loaded_node_gets_stopped() {
        let config = FrameworkConfig {
            poll_interval: Duration::from_millis(10),
            ..FrameworkConfig::default()
        };
        let monitor = MonitoringAgent::new(config, Instant::now());
        let node = Node::new(NodeSpec::new("w01", 800, 256));
        let session = node_session(&node);

        // Fake worker endpoint: a bare duplex we poll manually.
        let (client, server_side) = duplex_pair();
        let rb = monitor.rulebase();
        let reg = std::thread::spawn(move || {
            client_register(&client, "w01", Duration::from_secs(2)).map(|id| (client, id))
        });
        rb.accept(server_side, Duration::from_secs(2)).unwrap();
        let (client, id) = reg.join().unwrap().unwrap();

        // Nothing watched yet: no heartbeat to age.
        assert_eq!(monitor.heartbeat_age(), None);
        monitor.watch(id, session);
        // Idle → Start.
        let msg = client.recv_timeout(Duration::from_secs(2)).unwrap();
        // A signal implies a sample arrived; the heartbeat must be fresh.
        assert!(monitor.heartbeat_age().unwrap() < Duration::from_secs(5));
        assert_eq!(
            msg,
            RuleMessage::Signal {
                signal: Signal::Start
            }
        );
        client.send(RuleMessage::Ack {
            signal: Signal::Start,
            new_state: WorkerState::Running,
        });
        // Pile on background load → Stop.
        node.load().set_background(95);
        let msg = client.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(
            msg,
            RuleMessage::Signal {
                signal: Signal::Stop
            }
        );
        client.send(RuleMessage::Ack {
            signal: Signal::Stop,
            new_state: WorkerState::Stopped,
        });
        monitor.stop();
        let decisions = monitor.decisions();
        assert!(decisions.iter().any(|d| d.signal == Some(Signal::Start)));
        assert!(decisions.iter().any(|d| d.signal == Some(Signal::Stop)));
    }

    #[test]
    fn trap_driven_watch_produces_signals() {
        use acc_snmp::{oids, ThresholdWatch, TrapSender};
        use std::sync::atomic::{AtomicU64, Ordering};

        let config = FrameworkConfig::default();
        let monitor = MonitoringAgent::new(config, Instant::now());
        let (sender, rx) = TrapSender::channel("public");
        let external = Arc::new(AtomicU64::new(0));
        let external2 = external.clone();
        let watch = ThresholdWatch::spawn(
            sender,
            oids::hr_processor_load_1(),
            vec![25, 50],
            Duration::from_millis(5),
            move || external2.load(Ordering::Relaxed),
        );

        let (client, server_side) = duplex_pair();
        let rb = monitor.rulebase();
        let reg = std::thread::spawn(move || {
            client_register(&client, "trapped", Duration::from_secs(2)).map(|id| (client, id))
        });
        rb.accept(server_side, Duration::from_secs(2)).unwrap();
        let (client, id) = reg.join().unwrap().unwrap();
        monitor.watch_traps(id, rx);

        // Initial idle band → Start.
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)),
            Some(RuleMessage::Signal {
                signal: Signal::Start
            })
        );
        client.send(RuleMessage::Ack {
            signal: Signal::Start,
            new_state: WorkerState::Running,
        });
        // Into the stop band → Stop, with no polling anywhere.
        external.store(90, Ordering::Relaxed);
        assert_eq!(
            client.recv_timeout(Duration::from_secs(2)),
            Some(RuleMessage::Signal {
                signal: Signal::Stop
            })
        );
        watch.stop();
        monitor.stop();
    }

    #[test]
    fn framework_load_is_discounted() {
        let config = FrameworkConfig {
            poll_interval: Duration::from_millis(10),
            ..FrameworkConfig::default()
        };
        let monitor = MonitoringAgent::new(config, Instant::now());
        let node = Node::new(NodeSpec::new("w02", 800, 256));
        // The node is busy — but it's all framework work.
        node.load().set_framework(98);
        let session = node_session(&node);
        let (client, server_side) = duplex_pair();
        let rb = monitor.rulebase();
        let reg = std::thread::spawn(move || {
            client_register(&client, "w02", Duration::from_secs(2)).map(|id| (client, id))
        });
        rb.accept(server_side, Duration::from_secs(2)).unwrap();
        let (client, id) = reg.join().unwrap().unwrap();
        monitor.watch(id, session);
        // External load is 0 → the worker is asked to Start, never Stop.
        let msg = client.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(
            msg,
            RuleMessage::Signal {
                signal: Signal::Start
            }
        );
        monitor.stop();
        assert!(monitor
            .decisions()
            .iter()
            .all(|d| d.external_load == 0 && d.total_load >= 98));
    }
}
