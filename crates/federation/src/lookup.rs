//! The lookup service: the federation's service directory.

use std::any::Any;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use acc_telemetry::event;
use parking_lot::Mutex;

use crate::attributes::Attributes;
use crate::series::series;

/// Identifier assigned to a registered service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceId(pub u64);

/// Errors from lookup-service operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// The registration does not exist or its lease already expired.
    NotRegistered,
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::NotRegistered => write!(f, "service is not registered"),
        }
    }
}

impl std::error::Error for LookupError {}

/// A service as advertised in the federation: a human-readable name, its
/// attributes, and the proxy object clients use to talk to it.
#[derive(Clone)]
pub struct ServiceItem {
    id: Option<ServiceId>,
    name: String,
    attributes: Attributes,
    proxy: Arc<dyn Any + Send + Sync>,
}

impl fmt::Debug for ServiceItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceItem")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("attributes", &self.attributes)
            .finish()
    }
}

impl ServiceItem {
    /// Creates an item to be registered.
    pub fn new(
        name: impl Into<String>,
        attributes: Attributes,
        proxy: Arc<dyn Any + Send + Sync>,
    ) -> ServiceItem {
        ServiceItem {
            id: None,
            name: name.into(),
            attributes,
            proxy,
        }
    }

    /// Identifier assigned at registration (present on items returned by
    /// [`LookupService::lookup`]).
    pub fn id(&self) -> Option<ServiceId> {
        self.id
    }

    /// The advertised service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The advertised attribute set.
    pub fn attributes(&self) -> &Attributes {
        &self.attributes
    }

    /// Downcasts the service proxy. This is the "downloaded proxy object"
    /// of Jini: a typed handle to the remote service.
    pub fn proxy<T: Any + Send + Sync>(&self) -> Option<Arc<T>> {
        self.proxy.clone().downcast::<T>().ok()
    }
}

struct Registered {
    item: ServiceItem,
    expires: Option<Instant>,
}

/// A granted registration: the service's id plus its lease deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceRegistration {
    /// The id under which the service is registered.
    pub id: ServiceId,
    /// When the registration lapses unless renewed; `None` = forever.
    pub expires: Option<Instant>,
}

/// An attribute-indexed directory of services — the Jini lookup service.
pub struct LookupService {
    name: String,
    inner: Mutex<LookupInner>,
}

#[derive(Default)]
struct LookupInner {
    next_id: u64,
    services: Vec<Registered>,
}

impl fmt::Debug for LookupService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LookupService")
            .field("name", &self.name)
            .finish()
    }
}

impl LookupService {
    /// Creates an empty lookup service.
    pub fn new(name: impl Into<String>) -> Arc<LookupService> {
        Arc::new(LookupService {
            name: name.into(),
            inner: Mutex::new(LookupInner::default()),
        })
    }

    /// The lookup service's own name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a service under an optional lease duration (`None` =
    /// forever). Returns the granted registration.
    pub fn register(
        &self,
        item: ServiceItem,
        lease: Option<Duration>,
    ) -> Result<ServiceRegistration, LookupError> {
        let mut inner = self.inner.lock();
        inner.next_id += 1;
        let id = ServiceId(inner.next_id);
        let expires = lease.map(|d| Instant::now() + d);
        let mut item = item;
        item.id = Some(id);
        event!(
            "federation.lease.grant",
            service = item.name.as_str(),
            id = id.0,
            forever = expires.is_none(),
        );
        inner.services.push(Registered { item, expires });
        series().lease_granted.inc();
        Ok(ServiceRegistration { id, expires })
    }

    /// Associative lookup: every live service whose attributes contain the
    /// query's pairs. An empty query returns all services.
    pub fn lookup(&self, query: &Attributes) -> Vec<ServiceItem> {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        reap_expired(&mut inner, now);
        series().lookups.inc();
        inner
            .services
            .iter()
            .filter(|r| r.item.attributes.satisfies(query))
            .map(|r| r.item.clone())
            .collect()
    }

    /// Like [`LookupService::lookup`] but also filters by service name.
    pub fn lookup_named(&self, name: &str, query: &Attributes) -> Vec<ServiceItem> {
        self.lookup(query)
            .into_iter()
            .filter(|item| item.name == name)
            .collect()
    }

    /// Renews a registration's lease.
    pub fn renew(&self, id: ServiceId, lease: Option<Duration>) -> Result<(), LookupError> {
        let mut inner = self.inner.lock();
        let now = Instant::now();
        reap_expired(&mut inner, now);
        let reg = inner
            .services
            .iter_mut()
            .find(|r| r.item.id == Some(id))
            .ok_or(LookupError::NotRegistered)?;
        reg.expires = lease.map(|d| now + d);
        series().lease_renewed.inc();
        event!("federation.lease.renew", id = id.0);
        Ok(())
    }

    /// Cancels a registration.
    pub fn cancel(&self, id: ServiceId) -> Result<(), LookupError> {
        let mut inner = self.inner.lock();
        let before = inner.services.len();
        inner.services.retain(|r| r.item.id != Some(id));
        if inner.services.len() == before {
            Err(LookupError::NotRegistered)
        } else {
            series().lease_cancelled.inc();
            event!("federation.lease.cancel", id = id.0);
            Ok(())
        }
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.lookup(&Attributes::none()).len()
    }

    /// True when no services are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Drops registrations whose lease lapsed, counting the reaped ones.
fn reap_expired(inner: &mut LookupInner, now: Instant) {
    let before = inner.services.len();
    inner.services.retain(|r| r.expires.is_none_or(|e| e > now));
    let reaped = before - inner.services.len();
    if reaped > 0 {
        series().lease_expired.add(reaped as u64);
        event!("federation.lease.expire", count = reaped as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(name: &str, kind: &str) -> ServiceItem {
        ServiceItem::new(
            name,
            Attributes::build().set("kind", kind).done(),
            Arc::new(name.to_owned()),
        )
    }

    #[test]
    fn register_and_lookup_by_attribute() {
        let lus = LookupService::new("lus");
        lus.register(item("space-a", "tuple-space"), None).unwrap();
        lus.register(item("db-b", "database"), None).unwrap();
        let found = lus.lookup(&Attributes::build().set("kind", "tuple-space").done());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].name(), "space-a");
        assert!(found[0].id().is_some());
    }

    #[test]
    fn empty_query_returns_all() {
        let lus = LookupService::new("lus");
        lus.register(item("a", "x"), None).unwrap();
        lus.register(item("b", "y"), None).unwrap();
        assert_eq!(lus.lookup(&Attributes::none()).len(), 2);
        assert_eq!(lus.len(), 2);
    }

    #[test]
    fn lookup_named_filters() {
        let lus = LookupService::new("lus");
        lus.register(item("a", "x"), None).unwrap();
        lus.register(item("b", "x"), None).unwrap();
        let q = Attributes::build().set("kind", "x").done();
        assert_eq!(lus.lookup_named("a", &q).len(), 1);
        assert_eq!(lus.lookup_named("c", &q).len(), 0);
    }

    #[test]
    fn proxy_downcast() {
        let lus = LookupService::new("lus");
        lus.register(item("a", "x"), None).unwrap();
        let found = lus.lookup(&Attributes::none());
        let proxy: Arc<String> = found[0].proxy().unwrap();
        assert_eq!(*proxy, "a");
        assert!(found[0].proxy::<u32>().is_none());
    }

    #[test]
    fn lease_expiry_drops_service() {
        let lus = LookupService::new("lus");
        lus.register(item("a", "x"), Some(Duration::from_millis(10)))
            .unwrap();
        thread::sleep(Duration::from_millis(25));
        assert!(lus.is_empty());
    }

    #[test]
    fn renew_keeps_service_alive() {
        let lus = LookupService::new("lus");
        let reg = lus
            .register(item("a", "x"), Some(Duration::from_millis(40)))
            .unwrap();
        lus.renew(reg.id, Some(Duration::from_secs(60))).unwrap();
        thread::sleep(Duration::from_millis(60));
        assert_eq!(lus.len(), 1);
    }

    #[test]
    fn renew_after_expiry_fails() {
        let lus = LookupService::new("lus");
        let reg = lus
            .register(item("a", "x"), Some(Duration::from_millis(5)))
            .unwrap();
        thread::sleep(Duration::from_millis(20));
        assert_eq!(
            lus.renew(reg.id, Some(Duration::from_secs(1))),
            Err(LookupError::NotRegistered)
        );
    }

    #[test]
    fn cancel_removes() {
        let lus = LookupService::new("lus");
        let reg = lus.register(item("a", "x"), None).unwrap();
        lus.cancel(reg.id).unwrap();
        assert!(lus.is_empty());
        assert_eq!(lus.cancel(reg.id), Err(LookupError::NotRegistered));
    }
}
