//! Ablations of the design choices called out in `DESIGN.md` §5.
//!
//! Each ablation is a deterministic virtual-time simulation; the Criterion
//! numbers track simulator cost, and the decisive *virtual-time* outcomes
//! are printed once per ablation (also available via
//! `repro -- ablations`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acc_cluster::LoadTrace;
use acc_core::Thresholds;
use acc_sim::cluster::{simulate, SimConfig};
use acc_sim::AppProfile;

/// Ablation 1 — Pause/Resume vs Stop/Start under transient load.
/// Disabling the Paused state (pause band collapsed into the stop band)
/// forces a full class reload after every transient, inflating parallel
/// time.
fn ablation_pause_vs_stop(c: &mut Criterion) {
    let mut printed = false;
    let mut group = c.benchmark_group("ablations/pause_vs_stop");
    for (label, thresholds) in [
        ("with_pause", Thresholds::paper()),
        ("stop_only", Thresholds::new(25, 25)),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &thresholds,
            |b, &thresholds| {
                b.iter(|| {
                    let mut cfg = SimConfig::new(AppProfile::ray_tracing(), 2);
                    cfg.cost.thresholds = thresholds;
                    cfg.traces[0] = Some(LoadTrace::flapping(40, 600_000, 4_000));
                    cfg.horizon_ms = 600_000.0;
                    let out = simulate(cfg);
                    assert!(out.complete);
                    out.times.parallel_ms
                });
            },
        );
    }
    group.finish();
    if !printed {
        printed = true;
        let run = |thresholds| {
            let mut cfg = SimConfig::new(AppProfile::ray_tracing(), 2);
            cfg.cost.thresholds = thresholds;
            cfg.traces[0] = Some(LoadTrace::flapping(40, 600_000, 4_000));
            cfg.horizon_ms = 600_000.0;
            simulate(cfg)
        };
        let with_pause = run(Thresholds::paper());
        let stop_only = run(Thresholds::new(25, 25));
        eprintln!(
            "[ablation pause_vs_stop] parallel: with_pause {:.0} ms, stop_only {:.0} ms; \
             signals: {} vs {}",
            with_pause.times.parallel_ms,
            stop_only.times.parallel_ms,
            with_pause.workers[0].signal_log.len(),
            stop_only.workers[0].signal_log.len(),
        );
        let _ = printed;
    }
}

/// Ablation 2 — SNMP poll interval: reaction latency vs overhead.
fn ablation_poll_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/poll_interval");
    for interval_ms in [50.0f64, 250.0, 1000.0, 4000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{interval_ms}ms")),
            &interval_ms,
            |b, &interval_ms| {
                b.iter(|| {
                    let mut cfg = SimConfig::new(AppProfile::ray_tracing(), 2);
                    cfg.cost.poll_interval_ms = interval_ms;
                    cfg.traces[0] = Some(LoadTrace::flapping(40, 600_000, 8_000));
                    cfg.horizon_ms = 600_000.0;
                    let out = simulate(cfg);
                    assert!(out.complete);
                    out.times.parallel_ms
                });
            },
        );
    }
    group.finish();
}

/// Ablation 3 — task granularity: reproduces the Fig. 6 planning-dominates
/// effect by sweeping the pricing decomposition at constant total work.
fn ablation_task_grain(c: &mut Criterion) {
    let base = AppProfile::option_pricing();
    let total_work = base.task_work_ms * base.tasks as f64;
    let mut group = c.benchmark_group("ablations/task_grain");
    for tasks in [10usize, 50, 100, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let mut profile = base.clone();
                profile.tasks = tasks;
                profile.task_work_ms = total_work / tasks as f64;
                let out = simulate(SimConfig::new(profile, 4));
                assert!(out.complete);
                out.times.parallel_ms
            });
        });
    }
    group.finish();
}

/// Ablation 4 — class-loading cost sensitivity under transient load.
fn ablation_class_load_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/class_load_cost");
    for cost_ms in [0.0f64, 350.0, 2000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cost_ms}ms")),
            &cost_ms,
            |b, &cost_ms| {
                b.iter(|| {
                    let mut cfg = SimConfig::new(AppProfile::ray_tracing(), 2);
                    cfg.cost.class_load_ms = cost_ms;
                    // Stop-inducing flaps: load rises into the stop band.
                    cfg.traces[0] = Some(LoadTrace::flapping(100, 600_000, 6_000));
                    cfg.horizon_ms = 600_000.0;
                    let out = simulate(cfg);
                    assert!(out.complete);
                    out.times.parallel_ms
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    ablation_pause_vs_stop,
    ablation_poll_interval,
    ablation_task_grain,
    ablation_class_load_cost
);
criterion_main!(benches);
