//! Price an American stock option on the adaptive cluster (paper §5.1.1).
//!
//! The Broadie–Glasserman random-tree estimators run as 100 independent
//! subtasks (50 high-estimate, 50 low-estimate); the master aggregates
//! them into a price bracket. A European contract is also priced and
//! checked against the Black–Scholes closed form.
//!
//! Run with: `cargo run --release --example option_pricing`

use std::time::Duration;

use adaptive_spaces::apps::pricing::{
    black_scholes_price, price_sequential, OptionSpec, OptionStyle, PricingApp,
};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{ClusterBuilder, FrameworkConfig};

fn main() {
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config).build();

    // The paper's configuration: 10 000 simulations in 100 subtasks.
    let mut app = PricingApp::paper_configuration();
    println!(
        "pricing American {:?} (spot {}, strike {}, r {}, q {}, sigma {}, T {})",
        app.spec.option_type,
        app.spec.spot,
        app.spec.strike,
        app.spec.rate,
        app.spec.dividend,
        app.spec.volatility,
        app.spec.expiry
    );

    cluster.install(&app);
    for i in 0..4 {
        cluster.add_worker(NodeSpec::new(format!("pricer-{i}"), 800, 256));
    }
    let report = cluster.run(&mut app);
    let parallel = app.result();

    println!();
    println!(
        "parallel  : high {:.4}  low {:.4}  point {:.4}",
        parallel.high,
        parallel.low,
        parallel.point()
    );

    // The sequential baseline is bit-identical by construction.
    let sequential = price_sequential(&PricingApp::paper_configuration());
    println!(
        "sequential: high {:.4}  low {:.4}  point {:.4}",
        sequential.high,
        sequential.low,
        sequential.point()
    );
    assert_eq!(parallel, sequential, "parallel must equal sequential");

    // Sanity: the European analogue against Black–Scholes.
    let euro_spec = OptionSpec {
        style: OptionStyle::European,
        ..app.spec
    };
    let euro = black_scholes_price(&euro_spec);
    println!("european Black–Scholes price (floor): {euro:.4}");

    println!();
    println!(
        "run: {} tasks, {:.1} ms parallel time, {} workers used",
        report.times.tasks,
        report.times.parallel_ms,
        report.times.workers_used()
    );
    cluster.shutdown();
}
