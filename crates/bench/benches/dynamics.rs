//! §5.2.3: the dynamic-worker-behaviour experiment as a Criterion bench —
//! one full simulated run per (application, loaded-fraction) pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acc_cluster::LoadTrace;
use acc_sim::cluster::{simulate, SimConfig};
use acc_sim::AppProfile;

fn bench_dynamics(c: &mut Criterion) {
    for profile in AppProfile::all() {
        let mut group = c.benchmark_group(format!("exp3/{}", profile.name));
        let n = profile.testbed.worker_count();
        for fraction in [0.0f64, 0.25, 0.5] {
            let loaded = (n as f64 * fraction).floor() as usize;
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{:.0}pct", fraction * 100.0)),
                &loaded,
                |b, &loaded| {
                    b.iter(|| {
                        let mut cfg = SimConfig::new(profile.clone(), n);
                        for trace in cfg.traces.iter_mut().take(loaded) {
                            *trace = Some(LoadTrace::simulator2(3_600_000));
                        }
                        cfg.horizon_ms = 3_600_000.0;
                        let out = simulate(cfg);
                        assert!(out.complete);
                        out.times.parallel_ms
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dynamics);
criterion_main!(benches);
