//! The tuple space proper: storage, associative matching, blocking
//! operations, leases, transactions and event dispatch.
//!
//! # Storage layout
//!
//! Entries are sharded by tuple type: each type owns a [`Shard`] with its
//! own mutex and condition variable, so traffic on one type never contends
//! with another and a write wakes only the waiters of its own type. Within
//! a shard, entries live in a `BTreeMap<EntryId, Stored>` — ids are
//! allocated from one monotone counter, so map order *is* arrival (FIFO)
//! order. Two indexes accelerate the non-scan paths:
//!
//! * a per-shard field index (`field name → value → entry ids`) answers
//!   `field == value` templates without scanning the shard;
//! * a space-wide `EntryId → type` map routes `renew_lease`/`cancel`
//!   straight to the owning shard.
//!
//! Templates with no type name ("wildcard" templates) are the rare case:
//! blocking wildcard waiters park on a dedicated global condvar, and
//! writers nudge it only when `wildcard_waiters` says somebody is parked.
//!
//! # Lock ordering
//!
//! To stay deadlock-free, locks are always acquired in this order (any
//! prefix may be skipped, never reordered):
//!
//! 0. `SpaceJournal::commit_gate` (durable spaces only — brackets a whole
//!    transaction commit or checkpoint scan)
//! 1. `global` (wildcard waiters only — held across their shard scan)
//! 2. `shards` (the shard-map RwLock, held only to look up/create a shard)
//! 3. `Shard::state` (at most one shard at a time)
//! 4. `txns`
//! 5. `entry_index` (leaf)
//!
//! The WAL's internal mutex (inside `SpaceJournal::append`) is a further
//! leaf: plain ops journal while holding their shard lock, and nothing is
//! acquired under it.
//!
//! Writers and `finish_txn` notify the global condvar only *after*
//! dropping every shard lock, so they never hold `Shard::state` while
//! acquiring `global`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use acc_durability::WalOptions;
use acc_telemetry::Timed;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use crate::error::{SpaceError, SpaceResult};
use crate::events::{EventCookie, Listener, SpaceEvent};
use crate::journal::{self, Op, SpaceJournal};
use crate::lease::Lease;
use crate::payload::{Payload, PayloadError, WireReader, WireWriter};
use crate::stats::series;
use crate::stats::{SpaceStats, StatsSnapshot};
use crate::template::{Constraint, Template};
use crate::tuple::Tuple;
use crate::txn::{Txn, TxnId};
use crate::value::Value;

/// Identifier of a stored entry (monotone per space, never reused).
pub type EntryId = u64;

/// Shared handle to a space.
pub type SpaceHandle = Arc<Space>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum LockState {
    /// Visible to everyone.
    Free,
    /// Written under a transaction; visible only to that transaction until
    /// commit.
    PendingWrite(TxnId),
    /// Taken under a transaction; invisible pending commit/abort.
    TakenBy(TxnId),
    /// Read under one or more transactions; readable by all, takeable by
    /// nobody else.
    ReadBy(Vec<TxnId>),
}

#[derive(Debug)]
struct Stored {
    id: EntryId,
    tuple: Tuple,
    expires: Option<Instant>,
    lock: LockState,
}

impl Stored {
    fn expired(&self, now: Instant) -> bool {
        self.expires.is_some_and(|e| e <= now)
    }

    fn visible_to_read(&self, reader: Option<TxnId>) -> bool {
        match &self.lock {
            LockState::Free | LockState::ReadBy(_) => true,
            LockState::PendingWrite(t) => reader == Some(*t),
            LockState::TakenBy(_) => false,
        }
    }

    fn takeable_by(&self, taker: Option<TxnId>) -> bool {
        match &self.lock {
            LockState::Free => true,
            LockState::PendingWrite(t) => taker == Some(*t),
            LockState::TakenBy(_) => false,
            LockState::ReadBy(readers) => match taker {
                Some(t) => readers.iter().all(|r| *r == t),
                None => readers.is_empty(),
            },
        }
    }
}

/// rustc-hash-style multiplicative hasher for the internal maps. Their
/// keys are short field names, entry ids and value hashes, where
/// SipHash's DoS resistance costs more than the whole map operation; the
/// maps are not exposed to untrusted key distributions.
#[derive(Default, Clone)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.mix(tail ^ bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[derive(Default, Clone)]
struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

type FxMap<K, V> = HashMap<K, V, FxBuild>;

/// Hash of an indexable [`Value`], used as the field-index key. Keying by
/// hash instead of by owned value keeps the write path allocation-free;
/// the (astronomically rare) collision only yields a false candidate,
/// which the template-match check filters out. Floats hash by bit
/// pattern, consistent with `Value`'s bitwise equality; `Bytes` and
/// `List` values are not indexed (exact-matching them falls back to a
/// scan).
fn value_index_hash(value: &Value) -> Option<u64> {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    match value {
        Value::Int(v) => (0u8, v).hash(&mut h),
        Value::Bool(v) => (1u8, v).hash(&mut h),
        Value::Str(v) => (2u8, v).hash(&mut h),
        Value::Float(v) => (3u8, v.to_bits()).hash(&mut h),
        Value::Bytes(_) | Value::List(_) => return None,
    }
    Some(h.finish())
}

#[derive(Debug, Default)]
struct ShardState {
    /// Monotone ids make iteration order the arrival (FIFO) order.
    entries: BTreeMap<EntryId, Stored>,
    /// `field name → value hash → ids of entries carrying that value`.
    /// Each id bucket is kept sorted, so index-served matches keep FIFO
    /// semantics. Ids arrive nearly in order (they are allocated from a
    /// monotone counter) and leave mostly from the front, so the sorted
    /// deque behaves like a queue: O(1) amortized insert and remove.
    index: FxMap<Arc<str>, FxMap<u64, VecDeque<EntryId>>>,
    /// Ids written since the last index probe, not yet folded into
    /// `index`. Writes only push here (O(1) per field set, no hashing);
    /// the first probe that actually needs the index pays the folding
    /// cost. Entries that are removed before any probe never touch the
    /// index at all — which is what makes pure write→expire→sweep
    /// traffic cheap again.
    pending_index: Vec<EntryId>,
}

impl ShardState {
    /// Queues a freshly inserted entry for lazy indexing. Must be called
    /// after the entry is in `entries`.
    fn note_pending(&mut self, id: EntryId) {
        // Under write-heavy, probe-free churn the queue accumulates ids of
        // entries that are long gone; compact it before it outgrows the
        // live set by more than a small constant factor.
        if self.pending_index.len() > self.entries.len() * 2 + 64 {
            let ShardState {
                entries,
                pending_index,
                ..
            } = self;
            pending_index.retain(|id| entries.contains_key(id));
        }
        self.pending_index.push(id);
    }

    /// Folds queued writes into the field index; called before any index
    /// probe. Ids whose entries were already removed are skipped, so the
    /// index never references missing entries.
    fn flush_pending_index(&mut self) {
        if self.pending_index.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending_index);
        let ShardState { entries, index, .. } = self;
        for id in pending {
            if let Some(stored) = entries.get(&id) {
                index_insert_into(index, stored);
            }
        }
    }

    /// Removes an entry's ids from the field index. Harmlessly misses for
    /// entries still sitting in `pending_index` (never folded in).
    fn index_remove(&mut self, stored: &Stored) {
        for (name, value) in stored.tuple.fields() {
            let Some(key) = value_index_hash(value) else {
                continue;
            };
            let Some(by_value) = self.index.get_mut(name) else {
                continue;
            };
            if let Some(ids) = by_value.get_mut(&key) {
                if let Ok(pos) = ids.binary_search(&stored.id) {
                    ids.remove(pos);
                }
                if ids.is_empty() {
                    by_value.remove(&key);
                }
            }
        }
    }
}

/// Inserts one entry's indexable fields into a shard's field index. A free
/// function (not a `ShardState` method) so [`ShardState::flush_pending_index`]
/// can split-borrow `entries` and `index`.
fn index_insert_into(index: &mut FxMap<Arc<str>, FxMap<u64, VecDeque<EntryId>>>, stored: &Stored) {
    for (name, value) in stored.tuple.fields() {
        let Some(key) = value_index_hash(value) else {
            continue;
        };
        // Field names are shared `Arc<str>`s, so keying the index is a
        // refcount bump, never an allocation.
        if !index.contains_key(name) {
            index.insert(name.clone(), FxMap::default());
        }
        let ids = index
            .get_mut(name)
            .expect("just ensured")
            .entry(key)
            .or_default();
        match ids.back() {
            Some(last) if *last > stored.id => {
                let pos = ids.partition_point(|id| *id < stored.id);
                ids.insert(pos, stored.id);
            }
            _ => ids.push_back(stored.id),
        }
    }
}

/// Per-type storage: its own lock and its own condvar, so only waiters of
/// this type are woken by writes of this type. `waiters` counts threads
/// parked on `cond`, letting writers skip the notify syscall entirely
/// when nobody is listening (the common case under steady throughput).
#[derive(Default)]
struct Shard {
    state: Mutex<ShardState>,
    cond: Condvar,
    waiters: AtomicUsize,
}

#[derive(Debug, Default)]
struct TxnRecord {
    /// `(type, id)` of entries pending-written under the transaction.
    writes: Vec<(Arc<str>, EntryId)>,
    /// `(type, id)` of entries take-locked under the transaction.
    takes: Vec<(Arc<str>, EntryId)>,
    /// `(type, id)` of entries read-locked under the transaction.
    reads: Vec<(Arc<str>, EntryId)>,
}

struct RegistrationSlot {
    cookie: EventCookie,
    template: Template,
    listener: Listener,
    seq: AtomicU64,
    active: AtomicBool,
}

/// A shared, associative repository of [`Tuple`]s — the Rust JavaSpaces.
///
/// All operations are thread-safe; blocking `read`/`take` calls park on
/// their type's condition variable and are woken by writes of that type,
/// transaction commits/aborts, and [`Space::close`].
pub struct Space {
    name: String,
    closed: AtomicBool,
    next_id: AtomicU64,
    next_txn: AtomicU64,
    next_cookie: AtomicU64,
    shards: RwLock<BTreeMap<Arc<str>, Arc<Shard>>>,
    txns: Mutex<FxMap<TxnId, TxnRecord>>,
    /// Routes an [`EntryId`] to its owning shard without scanning.
    entry_index: Mutex<FxMap<EntryId, Arc<str>>>,
    /// Number of blocked waiters using type-wildcard templates; writers
    /// skip the global condvar entirely while this is zero.
    wildcard_waiters: AtomicUsize,
    global: Mutex<()>,
    global_cond: Condvar,
    /// Copy-on-write so event dispatch snapshots the list with one Arc
    /// clone instead of copying it under the lock.
    registrations: Mutex<Arc<Vec<Arc<RegistrationSlot>>>>,
    /// Mirror of `registrations.len()`, so writers skip event dispatch
    /// without touching the registrations lock when nothing is registered.
    reg_count: AtomicUsize,
    stats: SpaceStats,
    /// Set once by [`Space::durable`]; `None` means a plain in-memory
    /// space. The `OnceLock::get` on every hot-path op is a single atomic
    /// load, so the disabled-journal overhead is negligible.
    journal: OnceLock<SpaceJournal>,
}

impl std::fmt::Debug for Space {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Space").field("name", &self.name).finish()
    }
}

impl Space {
    /// Creates a new, empty space.
    pub fn new(name: impl Into<String>) -> SpaceHandle {
        Arc::new(Space {
            name: name.into(),
            closed: AtomicBool::new(false),
            next_id: AtomicU64::new(0),
            next_txn: AtomicU64::new(0),
            next_cookie: AtomicU64::new(1),
            shards: RwLock::new(BTreeMap::new()),
            txns: Mutex::new(FxMap::default()),
            entry_index: Mutex::new(FxMap::default()),
            wildcard_waiters: AtomicUsize::new(0),
            global: Mutex::new(()),
            global_cond: Condvar::new(),
            registrations: Mutex::new(Arc::new(Vec::new())),
            reg_count: AtomicUsize::new(0),
            stats: SpaceStats::default(),
            journal: OnceLock::new(),
        })
    }

    #[inline]
    fn journal(&self) -> Option<&SpaceJournal> {
        self.journal.get()
    }

    /// The space's name (used for federation registration).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Operation counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Closes the space: all blocked operations and all future operations
    /// fail with [`SpaceError::Closed`]. Used to shut workers down.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        // Notify each shard while holding its lock: a waiter that read
        // `closed == false` still holds the shard lock until it parks, so
        // the notification cannot slip in between check and park.
        for (_, shard) in self.all_shards() {
            let _state = shard.state.lock();
            shard.cond.notify_all();
        }
        let _global = self.global.lock();
        self.global_cond.notify_all();
    }

    /// True once [`Space::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Writes a tuple with an infinite lease.
    pub fn write(&self, tuple: Tuple) -> SpaceResult<EntryId> {
        self.write_internal(tuple, Lease::Forever, None)
    }

    /// Writes a tuple under the given lease; the entry is reclaimed after
    /// the lease expires.
    pub fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        self.write_internal(tuple, lease, None)
    }

    /// Blocking, non-destructive associative lookup. Returns a copy of some
    /// tuple matching `template`, waiting up to `timeout` for one to arrive
    /// (`None` waits indefinitely). `Ok(None)` signals timeout.
    pub fn read(
        &self,
        template: &Template,
        timeout: Option<Duration>,
    ) -> SpaceResult<Option<Tuple>> {
        self.read_internal(template, timeout, None)
    }

    /// Non-blocking read.
    pub fn read_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.read_internal(template, Some(Duration::ZERO), None)
    }

    /// Blocking destructive lookup: removes and returns a matching tuple.
    pub fn take(
        &self,
        template: &Template,
        timeout: Option<Duration>,
    ) -> SpaceResult<Option<Tuple>> {
        self.take_internal(template, timeout, None)
    }

    /// Non-blocking take.
    pub fn take_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.take_internal(template, Some(Duration::ZERO), None)
    }

    /// Takes every currently matching tuple (non-blocking). Each shard is
    /// drained under a single lock acquisition.
    pub fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let mut out = Vec::new();
        for (ty, shard) in self.select_shards(template.type_name()) {
            let mut state = self.lock_shard(&shard);
            while let Some(tuple) = self.try_match_shard(&ty, &mut state, template, None, true) {
                self.stats.record_take();
                out.push(tuple);
            }
        }
        // The drain always ends on a failed probe, like the seed's
        // take-until-empty loop did.
        self.stats.record_miss();
        Ok(out)
    }

    /// Writes a batch of tuples under one lock acquisition per touched
    /// shard (the JavaSpaces05 `write` batch operation). All become visible
    /// together; waiters are woken once per shard and events fire once per
    /// tuple afterwards. Returns contiguous, input-ordered entry ids.
    pub fn write_all(&self, tuples: Vec<Tuple>) -> SpaceResult<Vec<EntryId>> {
        self.write_all_leased(tuples, Lease::Forever)
    }

    /// Batch write with an explicit lease applied to every tuple.
    pub fn write_all_leased(&self, tuples: Vec<Tuple>, lease: Lease) -> SpaceResult<Vec<EntryId>> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        // Reserve a contiguous id block so batch ids are dense even under
        // concurrent writers.
        let base = self
            .next_id
            .fetch_add(tuples.len() as u64, Ordering::Relaxed);
        let expires = lease.deadline();
        let mut by_type: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, tuple) in tuples.iter().enumerate() {
            by_type.entry(tuple.type_name()).or_default().push(i);
        }
        let mut touched = Vec::with_capacity(by_type.len());
        for (_, indexes) in by_type {
            let ty = tuples[indexes[0]].type_name_arc();
            let shard = self.shard_for(&ty);
            {
                let mut state = self.lock_shard(&shard);
                let mut entry_index = self.entry_index.lock();
                for i in indexes {
                    let id = base + i as u64 + 1;
                    if let Some(j) = self.journal() {
                        j.append(&Op::Write {
                            id,
                            deadline_ms: journal::wall_deadline(&lease),
                            tuple: tuples[i].clone(),
                        });
                    }
                    let stored = Stored {
                        id,
                        tuple: tuples[i].clone(),
                        expires,
                        lock: LockState::Free,
                    };
                    self.stats.record_write(stored.tuple.size_hint() as u64);
                    state.entries.insert(id, stored);
                    state.note_pending(id);
                    entry_index.insert(id, ty.clone());
                }
            }
            touched.push(shard);
        }
        for shard in touched {
            self.notify_shard(&shard);
        }
        self.notify_wildcard_waiters();
        self.fire_events(&tuples);
        Ok((base + 1..=base + tuples.len() as u64).collect())
    }

    /// Takes up to `max` matching tuples (the JavaSpaces05 `take` batch
    /// operation): blocks up to `timeout` for the *first* match, then
    /// drains whatever else currently matches — one shard lock acquisition
    /// per shard — without further waiting.
    pub fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        match self.take(template, timeout)? {
            None => return Ok(out),
            Some(first) => out.push(first),
        }
        'shards: for (ty, shard) in self.select_shards(template.type_name()) {
            let mut state = self.lock_shard(&shard);
            while out.len() < max {
                match self.try_match_shard(&ty, &mut state, template, None, true) {
                    Some(tuple) => {
                        self.stats.record_take();
                        out.push(tuple);
                    }
                    None => continue 'shards,
                }
            }
            break;
        }
        if out.len() < max {
            self.stats.record_miss();
        }
        Ok(out)
    }

    /// Copies every currently matching tuple (non-blocking). Each shard is
    /// scanned under a single lock acquisition.
    pub fn read_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let now = Instant::now();
        let mut out = Vec::new();
        for (_, shard) in self.select_shards(template.type_name()) {
            let state = self.lock_shard(&shard);
            for stored in state.entries.values() {
                if !stored.expired(now)
                    && stored.visible_to_read(None)
                    && template.matches(&stored.tuple)
                {
                    out.push(stored.tuple.clone());
                }
            }
        }
        Ok(out)
    }

    /// Counts currently matching, visible tuples.
    pub fn count(&self, template: &Template) -> usize {
        self.read_all(template).map(|v| v.len()).unwrap_or(0)
    }

    /// Number of entries a plain (non-transactional) `read` could observe
    /// right now: live, not taken and not pending inside a transaction.
    pub fn len(&self) -> usize {
        let now = Instant::now();
        self.all_shards()
            .into_iter()
            .map(|(_, shard)| {
                self.lock_shard(&shard)
                    .entries
                    .values()
                    .filter(|s| !s.expired(now) && s.visible_to_read(None))
                    .count()
            })
            .sum()
    }

    /// True when the space holds no read-visible entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renews the lease on an entry.
    pub fn renew_lease(&self, id: EntryId, lease: Lease) -> SpaceResult<()> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let Some(shard) = self.shard_of_entry(id) else {
            return Err(SpaceError::NoSuchEntry);
        };
        let mut state = self.lock_shard(&shard);
        let now = Instant::now();
        let expired = match state.entries.get_mut(&id) {
            None => return Err(SpaceError::NoSuchEntry),
            Some(stored) if stored.expired(now) => true,
            Some(stored) => {
                stored.expires = lease.deadline_from(now);
                if let Some(j) = self.journal() {
                    j.append(&Op::Renew {
                        id,
                        deadline_ms: journal::wall_deadline(&lease),
                    });
                }
                false
            }
        };
        if expired {
            self.remove_entry(&mut state, id);
            return Err(SpaceError::LeaseExpired);
        }
        Ok(())
    }

    /// Cancels an entry by id (equivalent to taking it). Distinguishes the
    /// failure modes: an entry that was never there (or already consumed)
    /// is [`SpaceError::NoSuchEntry`], one whose lease ran out is
    /// [`SpaceError::LeaseExpired`], and one locked by an active
    /// transaction is [`SpaceError::EntryLocked`].
    pub fn cancel(&self, id: EntryId) -> SpaceResult<Tuple> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let Some(shard) = self.shard_of_entry(id) else {
            return Err(SpaceError::NoSuchEntry);
        };
        let mut state = self.lock_shard(&shard);
        let now = Instant::now();
        let status = match state.entries.get(&id) {
            None => return Err(SpaceError::NoSuchEntry),
            Some(stored) if stored.expired(now) => Err(SpaceError::LeaseExpired),
            Some(stored) if !stored.takeable_by(None) => return Err(SpaceError::EntryLocked),
            Some(_) => Ok(()),
        };
        match status {
            Err(e) => {
                self.remove_entry(&mut state, id);
                Err(e)
            }
            Ok(()) => {
                if let Some(j) = self.journal() {
                    j.append(&Op::Cancel { id });
                }
                let stored = self.remove_entry(&mut state, id).expect("entry just found");
                Ok(stored.tuple)
            }
        }
    }

    /// Purges expired entries immediately; returns how many were reclaimed.
    pub fn sweep(&self) -> usize {
        let now = Instant::now();
        let mut removed = 0;
        for (_, shard) in self.all_shards() {
            let mut state = self.lock_shard(&shard);
            let dead: Vec<EntryId> = state
                .entries
                .values()
                .filter(|s| s.expired(now))
                .map(|s| s.id)
                .collect();
            removed += dead.len();
            if dead.is_empty() {
                continue;
            }
            // Batch the id-routing removals under one lock acquisition.
            let mut entry_index = self.entry_index.lock();
            if dead.len() == state.entries.len() {
                // Everything in the shard is dead: drop the storage
                // wholesale instead of unpicking the index id by id.
                for id in &dead {
                    entry_index.remove(id);
                }
                state.entries.clear();
                state.index.clear();
                state.pending_index.clear();
            } else {
                for id in dead {
                    if let Some(stored) = state.entries.remove(&id) {
                        state.index_remove(&stored);
                        entry_index.remove(&id);
                    }
                }
            }
        }
        self.stats.record_expired(removed as u64);
        removed
    }

    /// Begins a transaction.
    pub fn txn(self: &Arc<Self>) -> SpaceResult<Txn> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
        self.txns.lock().insert(id, TxnRecord::default());
        Ok(Txn::new(self.clone(), id))
    }

    /// Registers an event listener for writes matching `template`.
    pub fn notify(&self, template: Template, listener: Listener) -> EventCookie {
        let cookie = EventCookie(self.next_cookie.fetch_add(1, Ordering::Relaxed));
        let mut regs = self.registrations.lock();
        let mut next = Vec::clone(&regs);
        next.push(Arc::new(RegistrationSlot {
            cookie,
            template,
            listener,
            seq: AtomicU64::new(0),
            active: AtomicBool::new(true),
        }));
        self.reg_count.store(next.len(), Ordering::Release);
        *regs = Arc::new(next);
        cookie
    }

    /// Registers a channel-backed listener; events are sent into the
    /// returned receiver. The channel closes when the registration is
    /// cancelled and dropped.
    pub fn notify_channel(&self, template: Template) -> (EventCookie, mpsc::Receiver<SpaceEvent>) {
        let (tx, rx) = mpsc::channel();
        let cookie = self.notify(
            template,
            Box::new(move |ev| {
                let _ = tx.send(ev);
            }),
        );
        (cookie, rx)
    }

    /// Cancels an event registration.
    pub fn cancel_notify(&self, cookie: EventCookie) -> SpaceResult<()> {
        let mut regs = self.registrations.lock();
        let before = regs.len();
        let mut next = Vec::clone(&regs);
        next.retain(|slot| {
            if slot.cookie == cookie {
                // Mark inactive so in-flight event snapshots skip it too.
                slot.active.store(false, Ordering::Relaxed);
                false
            } else {
                true
            }
        });
        self.reg_count.store(next.len(), Ordering::Release);
        let removed = next.len() != before;
        *regs = Arc::new(next);
        if removed {
            Ok(())
        } else {
            Err(SpaceError::NoSuchRegistration)
        }
    }

    // ------------------------------------------------------------------
    // Shard plumbing.
    // ------------------------------------------------------------------

    /// Looks up the shard for `ty`, creating it on first use (waiters need
    /// a condvar to park on even before the first write of their type).
    /// Returns the shared name allocation alongside the shard so hot paths
    /// never re-allocate type names.
    fn shard_entry(&self, ty: &str) -> (Arc<str>, Arc<Shard>) {
        if let Some((name, shard)) = self.shards.read().get_key_value(ty) {
            return (name.clone(), shard.clone());
        }
        let name: Arc<str> = Arc::from(ty);
        let shard = self.shards.write().entry(name.clone()).or_default().clone();
        (name, shard)
    }

    /// Same as [`Space::shard_entry`] but reuses the tuple's own name
    /// allocation when the shard does not exist yet.
    fn shard_for(&self, name: &Arc<str>) -> Arc<Shard> {
        if let Some(shard) = self.shards.read().get(&**name) {
            return shard.clone();
        }
        self.shards.write().entry(name.clone()).or_default().clone()
    }

    fn existing_shard(&self, ty: &str) -> Option<Arc<Shard>> {
        self.shards.read().get(ty).cloned()
    }

    fn all_shards(&self) -> Vec<(Arc<str>, Arc<Shard>)> {
        self.shards
            .read()
            .iter()
            .map(|(ty, shard)| (ty.clone(), shard.clone()))
            .collect()
    }

    /// The shards a template of type `ty` could match, in type order.
    fn select_shards(&self, ty: Option<&str>) -> Vec<(Arc<str>, Arc<Shard>)> {
        match ty {
            Some(ty) => self
                .shards
                .read()
                .get_key_value(ty)
                .map(|(name, shard)| vec![(name.clone(), shard.clone())])
                .unwrap_or_default(),
            None => self.all_shards(),
        }
    }

    /// Acquires a shard's state lock, counting contended acquisitions.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardState> {
        match shard.state.try_lock() {
            Some(guard) => guard,
            None => {
                self.stats.record_contention();
                shard.state.lock()
            }
        }
    }

    fn shard_of_entry(&self, id: EntryId) -> Option<Arc<Shard>> {
        let ty = self.entry_index.lock().get(&id).cloned()?;
        self.existing_shard(&ty)
    }

    /// Removes an entry from a shard, keeping both indexes consistent.
    fn remove_entry(&self, state: &mut ShardState, id: EntryId) -> Option<Stored> {
        let stored = state.entries.remove(&id)?;
        state.index_remove(&stored);
        self.entry_index.lock().remove(&id);
        Some(stored)
    }

    /// Wakes a shard's parked waiters, if any. The waiter count is bumped
    /// under the shard lock before parking and the writer's data change
    /// happened under that same lock, so a zero count here proves no
    /// waiter can have missed the update — the syscall is safely skipped.
    fn notify_shard(&self, shard: &Shard) {
        if shard.waiters.load(Ordering::SeqCst) > 0 {
            shard.cond.notify_all();
        }
    }

    /// Wakes wildcard waiters, if any. Callers must not hold a shard lock:
    /// `global` is only ever taken with no shard lock held (see module
    /// docs), which is what makes the waiters' scan-then-park atomic.
    fn notify_wildcard_waiters(&self) {
        if self.wildcard_waiters.load(Ordering::SeqCst) > 0 {
            let _global = self.global.lock();
            self.global_cond.notify_all();
        }
    }

    // ------------------------------------------------------------------
    // Internals shared with Txn.
    // ------------------------------------------------------------------

    pub(crate) fn write_internal(
        &self,
        tuple: Tuple,
        lease: Lease,
        txn: Option<TxnId>,
    ) -> SpaceResult<EntryId> {
        if self.is_closed() {
            return Err(SpaceError::Closed);
        }
        let timed = Timed::start();
        let ty = tuple.type_name_arc();
        let shard = self.shard_for(&ty);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut state = self.lock_shard(&shard);
            let lock = match txn {
                Some(t) => {
                    let mut txns = self.txns.lock();
                    let rec = txns.get_mut(&t).ok_or(SpaceError::TxnInactive)?;
                    rec.writes.push((ty.clone(), id));
                    LockState::PendingWrite(t)
                }
                None => LockState::Free,
            };
            // Journal inside the shard-lock critical section, so WAL order
            // agrees with apply order for ops touching the same entry.
            // Transactional writes are journaled at commit, not here.
            if txn.is_none() {
                if let Some(j) = self.journal() {
                    j.append(&Op::Write {
                        id,
                        deadline_ms: journal::wall_deadline(&lease),
                        tuple: tuple.clone(),
                    });
                }
            }
            let stored = Stored {
                id,
                tuple: tuple.clone(),
                expires: lease.deadline(),
                lock,
            };
            self.stats.record_write(stored.tuple.size_hint() as u64);
            state.entries.insert(id, stored);
            state.note_pending(id);
            self.entry_index.lock().insert(id, ty);
        }
        // Plain writes are instantly visible: wake this type's waiters and
        // fire events. Transactional writes fire at commit instead.
        if txn.is_none() {
            self.notify_shard(&shard);
            self.notify_wildcard_waiters();
            self.fire_events(std::slice::from_ref(&tuple));
        }
        timed.observe(&series().write_us);
        Ok(id)
    }

    pub(crate) fn read_internal(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
    ) -> SpaceResult<Option<Tuple>> {
        self.wait_for(template, timeout, txn, false)
    }

    pub(crate) fn take_internal(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
    ) -> SpaceResult<Option<Tuple>> {
        self.wait_for(template, timeout, txn, true)
    }

    /// The single blocking matcher used by read and take.
    fn wait_for(
        &self,
        template: &Template,
        timeout: Option<Duration>,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> SpaceResult<Option<Tuple>> {
        let timed = Timed::start();
        let deadline = timeout.map(|d| Instant::now() + d);
        let result = match template.type_name() {
            Some(ty) => {
                let (ty, shard) = self.shard_entry(ty);
                self.wait_typed(&ty, &shard, template, deadline, txn, destructive)
            }
            None => {
                // Count ourselves before the first scan: a writer that
                // misses the counter must have run before the scan, so the
                // scan sees its tuple.
                self.wildcard_waiters.fetch_add(1, Ordering::SeqCst);
                let result = self.wait_wildcard(template, deadline, txn, destructive);
                self.wildcard_waiters.fetch_sub(1, Ordering::SeqCst);
                result
            }
        };
        timed.observe(if destructive {
            &series().take_us
        } else {
            &series().read_us
        });
        result
    }

    /// Records how long a blocking read/take spent parked, if it parked.
    /// Wait durations are recorded unconditionally (not gated by
    /// [`acc_telemetry::timing_enabled`]): the path already paid for a
    /// park/wake cycle, so two clock reads are noise.
    fn record_wait(destructive: bool, wait_start: Option<Instant>) {
        if let Some(start) = wait_start {
            let s = series();
            let h = if destructive {
                &s.take_wait_us
            } else {
                &s.read_wait_us
            };
            h.observe_duration(start.elapsed());
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn wait_typed(
        &self,
        ty: &Arc<str>,
        shard: &Shard,
        template: &Template,
        deadline: Option<Instant>,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> SpaceResult<Option<Tuple>> {
        let mut state = self.lock_shard(shard);
        let mut wait_start: Option<Instant> = None;
        loop {
            if self.is_closed() {
                return Err(SpaceError::Closed);
            }
            if let Some(t) = txn {
                if !self.txns.lock().contains_key(&t) {
                    return Err(SpaceError::TxnInactive);
                }
            }
            if let Some(tuple) = self.try_match_shard(ty, &mut state, template, txn, destructive) {
                self.bump_match(destructive);
                Self::record_wait(destructive, wait_start);
                return Ok(Some(tuple));
            }
            // No match: park until this type changes or the deadline hits.
            match deadline {
                Some(d) => {
                    if Instant::now() >= d {
                        self.stats.record_miss();
                        Self::record_wait(destructive, wait_start);
                        return Ok(None);
                    }
                    if wait_start.is_none() {
                        self.stats.record_blocked_wait();
                        wait_start = Some(Instant::now());
                    }
                    shard.waiters.fetch_add(1, Ordering::SeqCst);
                    let timed_out = shard.cond.wait_until(&mut state, d).timed_out();
                    shard.waiters.fetch_sub(1, Ordering::SeqCst);
                    if timed_out {
                        // Re-check one final time before reporting a miss: a
                        // write may have landed exactly at the deadline.
                        if let Some(tuple) =
                            self.try_match_shard(ty, &mut state, template, txn, destructive)
                        {
                            self.bump_match(destructive);
                            Self::record_wait(destructive, wait_start);
                            return Ok(Some(tuple));
                        }
                        if self.is_closed() {
                            return Err(SpaceError::Closed);
                        }
                        self.stats.record_miss();
                        Self::record_wait(destructive, wait_start);
                        return Ok(None);
                    }
                }
                None => {
                    if wait_start.is_none() {
                        self.stats.record_blocked_wait();
                        wait_start = Some(Instant::now());
                    }
                    shard.waiters.fetch_add(1, Ordering::SeqCst);
                    shard.cond.wait(&mut state);
                    shard.waiters.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Wildcard (untyped-template) blocking path. Holds `global` across the
    /// scan so a concurrent writer's wakeup (which also takes `global`)
    /// cannot slip between our last look and our park.
    fn wait_wildcard(
        &self,
        template: &Template,
        deadline: Option<Instant>,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> SpaceResult<Option<Tuple>> {
        let mut global = self.global.lock();
        let mut wait_start: Option<Instant> = None;
        loop {
            if self.is_closed() {
                return Err(SpaceError::Closed);
            }
            if let Some(t) = txn {
                if !self.txns.lock().contains_key(&t) {
                    return Err(SpaceError::TxnInactive);
                }
            }
            if let Some(tuple) = self.scan_all_shards(template, txn, destructive) {
                self.bump_match(destructive);
                Self::record_wait(destructive, wait_start);
                return Ok(Some(tuple));
            }
            match deadline {
                Some(d) => {
                    if Instant::now() >= d {
                        self.stats.record_miss();
                        Self::record_wait(destructive, wait_start);
                        return Ok(None);
                    }
                    if wait_start.is_none() {
                        self.stats.record_blocked_wait();
                        wait_start = Some(Instant::now());
                    }
                    if self.global_cond.wait_until(&mut global, d).timed_out() {
                        if let Some(tuple) = self.scan_all_shards(template, txn, destructive) {
                            self.bump_match(destructive);
                            Self::record_wait(destructive, wait_start);
                            return Ok(Some(tuple));
                        }
                        if self.is_closed() {
                            return Err(SpaceError::Closed);
                        }
                        self.stats.record_miss();
                        Self::record_wait(destructive, wait_start);
                        return Ok(None);
                    }
                }
                None => {
                    if wait_start.is_none() {
                        self.stats.record_blocked_wait();
                        wait_start = Some(Instant::now());
                    }
                    self.global_cond.wait(&mut global);
                }
            }
        }
    }

    fn scan_all_shards(
        &self,
        template: &Template,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> Option<Tuple> {
        for (ty, shard) in self.all_shards() {
            let mut state = self.lock_shard(&shard);
            if let Some(tuple) = self.try_match_shard(&ty, &mut state, template, txn, destructive) {
                return Some(tuple);
            }
        }
        None
    }

    fn bump_match(&self, destructive: bool) {
        if destructive {
            self.stats.record_take();
        } else {
            self.stats.record_read();
        }
    }

    /// Finds the oldest live entry in `state` matching `template` that the
    /// caller may see, purging expired entries it passes over.
    fn find_candidate(
        &self,
        state: &mut ShardState,
        template: &Template,
        txn: Option<TxnId>,
        destructive: bool,
        now: Instant,
    ) -> Option<EntryId> {
        let usable = |s: &Stored| {
            template.matches(&s.tuple)
                && if destructive {
                    s.takeable_by(txn)
                } else {
                    s.visible_to_read(txn)
                }
        };
        // An `==` constraint on an indexable value lets the field index
        // hand us exactly the entries carrying that value, oldest first.
        let probe = template.constraints().iter().find_map(|(name, c)| match c {
            Constraint::Exact(value) => value_index_hash(value).map(|key| (name.as_str(), key)),
            _ => None,
        });
        let mut dead = Vec::new();
        let mut found = None;
        if let Some((field, key)) = probe {
            self.stats.record_index_probe(true);
            state.flush_pending_index();
            if let Some(ids) = state
                .index
                .get(field)
                .and_then(|by_value| by_value.get(&key))
            {
                for &id in ids {
                    let stored = state.entries.get(&id).expect("indexed entry exists");
                    if stored.expired(now) {
                        dead.push(id);
                    } else if usable(stored) {
                        found = Some(id);
                        break;
                    }
                }
            }
        } else {
            self.stats.record_index_probe(false);
            for (id, stored) in state.entries.iter() {
                if stored.expired(now) {
                    dead.push(*id);
                } else if usable(stored) {
                    found = Some(*id);
                    break;
                }
            }
        }
        for id in dead {
            self.remove_entry(state, id);
        }
        found
    }

    /// Resolves a match inside one shard; applies take/read locking.
    fn try_match_shard(
        &self,
        ty: &Arc<str>,
        state: &mut ShardState,
        template: &Template,
        txn: Option<TxnId>,
        destructive: bool,
    ) -> Option<Tuple> {
        let now = Instant::now();
        let id = self.find_candidate(state, template, txn, destructive, now)?;
        if destructive {
            let Some(t) = txn else {
                if let Some(j) = self.journal() {
                    j.append(&Op::Take { id });
                }
                let stored = self.remove_entry(state, id).expect("candidate exists");
                return Some(stored.tuple);
            };
            let own_pending = state.entries[&id].lock == LockState::PendingWrite(t);
            // Hold the txn registry lock across the entry mutation: if the
            // transaction finished concurrently, we must not lock an entry
            // no committer will ever release.
            let mut txns = self.txns.lock();
            let rec = txns.get_mut(&t)?;
            if own_pending {
                // Taking back your own uncommitted write: the entry simply
                // disappears from the transaction.
                rec.writes.retain(|(_, w)| *w != id);
                drop(txns);
                let stored = self.remove_entry(state, id).expect("candidate exists");
                Some(stored.tuple)
            } else {
                rec.takes.push((ty.clone(), id));
                let stored = state.entries.get_mut(&id).expect("candidate exists");
                stored.lock = LockState::TakenBy(t);
                Some(stored.tuple.clone())
            }
        } else {
            if let Some(t) = txn {
                let needs_lock = match &state.entries[&id].lock {
                    LockState::Free => true,
                    LockState::ReadBy(readers) => !readers.contains(&t),
                    // Reading your own pending write takes no lock.
                    LockState::PendingWrite(_) | LockState::TakenBy(_) => false,
                };
                if needs_lock {
                    let mut txns = self.txns.lock();
                    let rec = txns.get_mut(&t)?;
                    rec.reads.push((ty.clone(), id));
                    drop(txns);
                    let stored = state.entries.get_mut(&id).expect("candidate exists");
                    match &mut stored.lock {
                        lock @ LockState::Free => *lock = LockState::ReadBy(vec![t]),
                        LockState::ReadBy(readers) => readers.push(t),
                        _ => unreachable!("needs_lock implies Free or ReadBy"),
                    }
                }
            }
            Some(state.entries[&id].tuple.clone())
        }
    }

    pub(crate) fn finish_txn(&self, id: TxnId, commit: bool) -> SpaceResult<()> {
        let timed = Timed::start();
        let rec = self
            .txns
            .lock()
            .remove(&id)
            .ok_or(SpaceError::TxnInactive)?;
        // Group the transaction's entries per shard so each shard is fixed
        // up under one lock acquisition.
        #[derive(Default)]
        struct Ops {
            writes: Vec<EntryId>,
            takes: Vec<EntryId>,
            reads: Vec<EntryId>,
        }
        let mut by_type: BTreeMap<Arc<str>, Ops> = BTreeMap::new();
        for (ty, e) in rec.writes {
            by_type.entry(ty).or_default().writes.push(e);
        }
        for (ty, e) in rec.takes {
            by_type.entry(ty).or_default().takes.push(e);
        }
        for (ty, e) in rec.reads {
            by_type.entry(ty).or_default().reads.push(e);
        }
        // Durable spaces journal a commit as one atomic record, and hold
        // the commit gate across both the append and the in-memory apply
        // below — a checkpoint (which captures its cut LSN under the same
        // gate) can therefore never land between the two. The entries are
        // stable between the collect pass and the apply pass: they are
        // locked by this transaction, so no other thread can remove them
        // (an expired locked entry can be purged concurrently, but its
        // journaled deadline is already past, so replay drops it again).
        let _gate = if commit {
            self.journal().map(|j| {
                let gate = j.commit_gate.lock();
                let mut writes = Vec::new();
                let mut takes = Vec::new();
                for (ty, ops) in &by_type {
                    let Some(shard) = self.existing_shard(ty) else {
                        continue;
                    };
                    let state = self.lock_shard(&shard);
                    for e in &ops.writes {
                        if let Some(s) = state.entries.get(e) {
                            if s.lock == LockState::PendingWrite(id) {
                                writes.push((
                                    *e,
                                    journal::wall_from_instant(s.expires),
                                    s.tuple.clone(),
                                ));
                            }
                        }
                    }
                    for e in &ops.takes {
                        if let Some(s) = state.entries.get(e) {
                            if s.lock == LockState::TakenBy(id) {
                                takes.push(*e);
                            }
                        }
                    }
                }
                if !writes.is_empty() || !takes.is_empty() {
                    j.append(&Op::TxnCommit { writes, takes });
                }
                gate
            })
        } else {
            // Aborts restore pre-transaction state, which the journal
            // already reflects: nothing to record.
            None
        };
        let mut fire: Vec<Tuple> = Vec::new();
        let mut touched = Vec::with_capacity(by_type.len());
        for (ty, ops) in by_type {
            let Some(shard) = self.existing_shard(&ty) else {
                continue;
            };
            {
                let mut state = self.lock_shard(&shard);
                for e in ops.writes {
                    let pending = state
                        .entries
                        .get(&e)
                        .is_some_and(|s| s.lock == LockState::PendingWrite(id));
                    if !pending {
                        continue;
                    }
                    if commit {
                        let stored = state.entries.get_mut(&e).expect("entry just checked");
                        stored.lock = LockState::Free;
                        fire.push(stored.tuple.clone());
                    } else {
                        self.remove_entry(&mut state, e);
                    }
                }
                for e in ops.takes {
                    let taken = state
                        .entries
                        .get(&e)
                        .is_some_and(|s| s.lock == LockState::TakenBy(id));
                    if !taken {
                        continue;
                    }
                    if commit {
                        self.remove_entry(&mut state, e);
                    } else {
                        state.entries.get_mut(&e).expect("entry just checked").lock =
                            LockState::Free;
                    }
                }
                for e in ops.reads {
                    if let Some(stored) = state.entries.get_mut(&e) {
                        if let LockState::ReadBy(readers) = &mut stored.lock {
                            readers.retain(|r| *r != id);
                            if readers.is_empty() {
                                stored.lock = LockState::Free;
                            }
                        }
                    }
                }
            }
            touched.push(shard);
        }
        self.stats.record_txn_finished(commit);
        // Entries became visible (commit) or available again (abort): wake
        // the affected types either way.
        for shard in touched {
            self.notify_shard(&shard);
        }
        self.notify_wildcard_waiters();
        if !fire.is_empty() {
            self.fire_events(&fire);
        }
        timed.observe(&series().txn_finish_us);
        Ok(())
    }

    /// Dispatches events for newly visible tuples. Invokes listeners with
    /// no space lock held, so a listener may freely call back into the
    /// space (write a reply, register/cancel notifications, …).
    fn fire_events(&self, tuples: &[Tuple]) {
        if self.reg_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let slots: Arc<Vec<Arc<RegistrationSlot>>> = self.registrations.lock().clone();
        let mut dispatched = 0u64;
        for slot in slots.iter() {
            if !slot.active.load(Ordering::Relaxed) {
                continue;
            }
            for tuple in tuples {
                if slot.template.matches(tuple) {
                    let seq = slot.seq.fetch_add(1, Ordering::Relaxed) + 1;
                    (slot.listener)(SpaceEvent {
                        cookie: slot.cookie,
                        seq,
                        tuple: tuple.clone(),
                    });
                    dispatched += 1;
                }
            }
        }
        if dispatched > 0 {
            series().events_dispatched.add(dispatched);
        }
    }
}

fn storage_err(e: std::io::Error) -> SpaceError {
    SpaceError::Storage(e.to_string())
}

/// Encodes the snapshot body: the id counter plus every committed, live
/// entry with its absolute wall-clock deadline.
fn encode_snapshot_body(next_id: u64, entries: &[(EntryId, Option<u64>, Tuple)]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(next_id);
    w.put_u32(entries.len() as u32);
    for (id, deadline_ms, tuple) in entries {
        w.put_u64(*id);
        match deadline_ms {
            Some(ms) => {
                w.put_bool(true);
                w.put_u64(*ms);
            }
            None => w.put_bool(false),
        }
        tuple.encode(&mut w);
    }
    w.finish().to_vec()
}

type SnapshotEntries = Vec<(EntryId, Option<u64>, Tuple)>;

fn decode_snapshot_body(body: &[u8]) -> Result<(u64, SnapshotEntries), PayloadError> {
    let mut r = WireReader::new(bytes::Bytes::copy_from_slice(body));
    let next_id = r.get_u64()?;
    let n = r.get_u32()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let id = r.get_u64()?;
        let deadline_ms = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        entries.push((id, deadline_ms, Tuple::decode(&mut r)?));
    }
    if r.remaining() != 0 {
        return Err(PayloadError::Corrupt("trailing snapshot bytes"));
    }
    Ok((next_id, entries))
}

/// Durability: journaling, checkpointing and crash recovery. See the
/// `journal` module for the record format and `acc-durability` for the
/// WAL/snapshot machinery.
impl Space {
    /// Opens a durable space backed by `dir`: recovers whatever state the
    /// directory holds (snapshot plus committed WAL tail, exactly as a
    /// crashed process left it) and journals every subsequent mutation.
    ///
    /// Recovery semantics:
    ///
    /// * a torn WAL tail (crash mid-append) is truncated, never fatal;
    /// * entries whose lease deadline passed while the process was down are
    ///   dropped, not resurrected (deadlines are journaled as absolute
    ///   wall-clock times);
    /// * uncommitted transactional writes vanish and take/read locks are
    ///   released — a transaction either committed entirely or not at all.
    pub fn durable(
        name: impl Into<String>,
        dir: impl AsRef<Path>,
        opts: WalOptions,
    ) -> SpaceResult<SpaceHandle> {
        let dir = dir.as_ref();
        // Opening the WAL first truncates any torn tail, so the replay
        // below reads exactly the committed prefix.
        let journal = SpaceJournal::open(dir, opts).map_err(storage_err)?;
        let snapshot = SpaceJournal::load_snapshot(dir).map_err(storage_err)?;
        let replay = SpaceJournal::replay(dir).map_err(storage_err)?;

        let mut entries: BTreeMap<EntryId, (Option<u64>, Tuple)> = BTreeMap::new();
        let mut max_id = 0u64;
        let mut cut = 0u64;
        if let Some((cut_lsn, body)) = snapshot {
            cut = cut_lsn;
            let (snap_next, snap_entries) = decode_snapshot_body(&body)
                .map_err(|e| SpaceError::Storage(format!("snapshot: {e}")))?;
            max_id = snap_next;
            for (id, deadline_ms, tuple) in snap_entries {
                entries.insert(id, (deadline_ms, tuple));
            }
        }
        for rec in replay.records {
            if rec.lsn < cut {
                continue;
            }
            let op = Op::from_bytes(&rec.payload)
                .map_err(|e| SpaceError::Storage(format!("wal record {}: {e}", rec.lsn)))?;
            // Replay is idempotent per entry (insert-if-absent /
            // remove-if-present): records at or past the cut may describe
            // mutations the snapshot already observed.
            match op {
                Op::Write {
                    id,
                    deadline_ms,
                    tuple,
                } => {
                    max_id = max_id.max(id);
                    entries.entry(id).or_insert((deadline_ms, tuple));
                }
                Op::Take { id } | Op::Cancel { id } => {
                    max_id = max_id.max(id);
                    entries.remove(&id);
                }
                Op::Renew { id, deadline_ms } => {
                    max_id = max_id.max(id);
                    if let Some(slot) = entries.get_mut(&id) {
                        slot.0 = deadline_ms;
                    }
                }
                Op::TxnCommit { writes, takes } => {
                    for (id, deadline_ms, tuple) in writes {
                        max_id = max_id.max(id);
                        entries.entry(id).or_insert((deadline_ms, tuple));
                    }
                    for id in takes {
                        max_id = max_id.max(id);
                        entries.remove(&id);
                    }
                }
            }
        }

        let inst_now = Instant::now();
        let wall_now = journal::wall_now_ms();
        let mut restored = 0u64;
        let mut expired_dropped = 0u64;
        let space = Space::new(name);
        for (id, (deadline_ms, tuple)) in entries {
            max_id = max_id.max(id);
            let expires = match deadline_ms {
                None => None,
                Some(ms) => match journal::instant_from_wall(ms, inst_now, wall_now) {
                    // The lease ran out during the downtime: stay dead.
                    None => {
                        expired_dropped += 1;
                        continue;
                    }
                    some => some,
                },
            };
            let ty = tuple.type_name_arc();
            let shard = space.shard_for(&ty);
            {
                let mut state = space.lock_shard(&shard);
                state.entries.insert(
                    id,
                    Stored {
                        id,
                        tuple,
                        expires,
                        lock: LockState::Free,
                    },
                );
                state.note_pending(id);
                space.entry_index.lock().insert(id, ty);
            }
            restored += 1;
        }
        space.next_id.store(max_id, Ordering::Relaxed);
        let r = acc_telemetry::registry();
        r.counter("recovery.entries_restored").add(restored);
        r.counter("recovery.expired_dropped").add(expired_dropped);
        space
            .journal
            .set(journal)
            .unwrap_or_else(|_| unreachable!("journal set once on a fresh space"));
        Ok(space)
    }

    /// [`Space::durable`] with default WAL options and a generic name —
    /// the one-argument "bring my space back" entry point.
    pub fn recover(dir: impl AsRef<Path>) -> SpaceResult<SpaceHandle> {
        Space::durable("recovered", dir, WalOptions::default())
    }

    /// True when this space journals its mutations to disk.
    pub fn is_durable(&self) -> bool {
        self.journal().is_some()
    }

    /// Writes a snapshot of the current committed state and compacts the
    /// WAL segments it covers. Returns the snapshot's cut LSN. Fails with
    /// [`SpaceError::Storage`] on a non-durable space.
    ///
    /// The snapshot contains every live committed entry (take/read locks
    /// are recorded as free — an in-flight transaction that never commits
    /// must leave no trace) and skips uncommitted pending writes; lease
    /// deadlines are stored as absolute wall-clock times.
    pub fn checkpoint(&self) -> SpaceResult<u64> {
        let Some(j) = self.journal() else {
            return Err(SpaceError::Storage(
                "checkpoint on a space with no durability journal".into(),
            ));
        };
        // The gate makes the cut LSN safe: no transaction commit can be
        // between its journal append and its in-memory apply while we hold
        // it, and plain ops append+apply atomically under their shard lock.
        let _gate = j.commit_gate.lock();
        let cut = j.next_lsn();
        let now = Instant::now();
        let mut entries: Vec<(EntryId, Option<u64>, Tuple)> = Vec::new();
        for (_, shard) in self.all_shards() {
            let state = self.lock_shard(&shard);
            for s in state.entries.values() {
                if s.expired(now) || matches!(s.lock, LockState::PendingWrite(_)) {
                    continue;
                }
                entries.push((s.id, journal::wall_from_instant(s.expires), s.tuple.clone()));
            }
        }
        let body = encode_snapshot_body(self.next_id.load(Ordering::Relaxed), &entries);
        j.write_snapshot(cut, &body).map_err(storage_err)?;
        Ok(cut)
    }

    /// Forces journaled ops to stable storage regardless of the configured
    /// sync policy. No-op on a non-durable space.
    pub fn flush_journal(&self) -> SpaceResult<()> {
        match self.journal() {
            Some(j) => j.sync().map_err(storage_err),
            None => Ok(()),
        }
    }

    /// Test/diagnostic view: every live, committed entry as `(id, tuple)`,
    /// in id order. Used by the crash-recovery tests to compare a recovered
    /// space against a live one.
    #[doc(hidden)]
    pub fn dump(&self) -> Vec<(EntryId, Tuple)> {
        let now = Instant::now();
        let mut out = Vec::new();
        for (_, shard) in self.all_shards() {
            let state = self.lock_shard(&shard);
            for s in state.entries.values() {
                if !s.expired(now) && s.visible_to_read(None) {
                    out.push((s.id, s.tuple.clone()));
                }
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use crate::tuple::Tuple;
    use std::thread;

    fn task(id: i64) -> Tuple {
        Tuple::build("task").field("id", id).done()
    }

    #[test]
    fn write_then_take() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let got = s.take_if_exists(&Template::of_type("task")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(1));
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn read_does_not_remove() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn fifo_matching_order() {
        let s = Space::new("t");
        for i in 0..5 {
            s.write(task(i)).unwrap();
        }
        for i in 0..5 {
            let got = s
                .take_if_exists(&Template::of_type("task"))
                .unwrap()
                .unwrap();
            assert_eq!(got.get_int("id"), Some(i));
        }
    }

    #[test]
    fn blocking_take_waits_for_writer() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take(&Template::of_type("task"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        s.write(task(42)).unwrap();
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(42));
    }

    #[test]
    fn blocking_wildcard_take_waits_for_writer() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take(&Template::any_type().done(), Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        s.write(task(42)).unwrap();
        let got = h.join().unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(42));
    }

    #[test]
    fn take_timeout_returns_none() {
        let s = Space::new("t");
        let got = s
            .take(&Template::of_type("task"), Some(Duration::from_millis(20)))
            .unwrap();
        assert!(got.is_none());
        assert_eq!(s.stats().misses, 1);
    }

    #[test]
    fn close_wakes_blocked_takers() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || s2.take(&Template::of_type("task"), None));
        thread::sleep(Duration::from_millis(30));
        s.close();
        assert_eq!(h.join().unwrap(), Err(SpaceError::Closed));
        assert!(s.write(task(1)).is_err());
    }

    #[test]
    fn close_wakes_blocked_wildcard_takers() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || s2.take(&Template::any_type().done(), None));
        thread::sleep(Duration::from_millis(30));
        s.close();
        assert_eq!(h.join().unwrap(), Err(SpaceError::Closed));
    }

    #[test]
    fn lease_expiry_reclaims_entry() {
        let s = Space::new("t");
        s.write_leased(task(1), Lease::for_millis(10)).unwrap();
        thread::sleep(Duration::from_millis(25));
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn renew_extends_lease() {
        let s = Space::new("t");
        let id = s.write_leased(task(1), Lease::for_millis(40)).unwrap();
        s.renew_lease(id, Lease::forever()).unwrap();
        thread::sleep(Duration::from_millis(60));
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn cancel_removes_by_id() {
        let s = Space::new("t");
        let id = s.write(task(7)).unwrap();
        let t = s.cancel(id).unwrap();
        assert_eq!(t.get_int("id"), Some(7));
        assert_eq!(s.cancel(id), Err(SpaceError::NoSuchEntry));
    }

    #[test]
    fn cancel_expired_entry_reports_lease_expired() {
        let s = Space::new("t");
        let id = s.write_leased(task(1), Lease::for_millis(5)).unwrap();
        thread::sleep(Duration::from_millis(15));
        assert_eq!(s.cancel(id), Err(SpaceError::LeaseExpired));
        // The expired entry was reclaimed by the failed cancel: a second
        // attempt no longer finds it at all.
        assert_eq!(s.cancel(id), Err(SpaceError::NoSuchEntry));
    }

    #[test]
    fn cancel_take_locked_entry_reports_entry_locked() {
        let s = Space::new("t");
        let id = s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.take_if_exists(&Template::of_type("task"))
            .unwrap()
            .unwrap();
        assert_eq!(s.cancel(id), Err(SpaceError::EntryLocked));
        txn.abort().unwrap();
        assert_eq!(s.cancel(id).unwrap().get_int("id"), Some(1));
    }

    #[test]
    fn cancel_read_locked_entry_reports_entry_locked() {
        let s = Space::new("t");
        let id = s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.read(&Template::of_type("task"), Some(Duration::ZERO))
            .unwrap()
            .unwrap();
        assert_eq!(s.cancel(id), Err(SpaceError::EntryLocked));
        txn.commit().unwrap();
        assert!(s.cancel(id).is_ok());
    }

    #[test]
    fn renew_expired_entry_reports_lease_expired() {
        let s = Space::new("t");
        let id = s.write_leased(task(1), Lease::for_millis(5)).unwrap();
        thread::sleep(Duration::from_millis(15));
        assert_eq!(
            s.renew_lease(id, Lease::forever()),
            Err(SpaceError::LeaseExpired)
        );
        assert_eq!(
            s.renew_lease(id, Lease::forever()),
            Err(SpaceError::NoSuchEntry)
        );
    }

    #[test]
    fn sweep_counts_expired() {
        let s = Space::new("t");
        s.write_leased(task(1), Lease::for_millis(5)).unwrap();
        s.write(task(2)).unwrap();
        thread::sleep(Duration::from_millis(15));
        assert_eq!(s.sweep(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn txn_write_invisible_until_commit() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
        txn.commit().unwrap();
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn txn_write_visible_to_self() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(txn
            .read(&Template::of_type("task"), Some(Duration::ZERO))
            .unwrap()
            .is_some());
        txn.abort().unwrap();
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn txn_take_restored_on_abort() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        let got = txn.take_if_exists(&Template::of_type("task")).unwrap();
        assert!(got.is_some());
        // Invisible to others while taken.
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
        txn.abort().unwrap();
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn txn_take_removed_on_commit() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.take_if_exists(&Template::of_type("task")).unwrap();
        txn.commit().unwrap();
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn txn_drop_aborts() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        {
            let txn = s.txn().unwrap();
            txn.take_if_exists(&Template::of_type("task")).unwrap();
            // Dropped without commit — simulated crash.
        }
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
        assert_eq!(s.stats().txns_aborted, 1);
    }

    #[test]
    fn read_lock_blocks_other_take_but_not_read() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        txn.read(&Template::of_type("task"), Some(Duration::ZERO))
            .unwrap()
            .unwrap();
        // Others can still read…
        assert!(s
            .read_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
        // …but not take.
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
        txn.commit().unwrap();
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn take_back_own_pending_write() {
        let s = Space::new("t");
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        let got = txn.take_if_exists(&Template::of_type("task")).unwrap();
        assert!(got.is_some());
        txn.commit().unwrap();
        // The write never became visible: taking your own pending write
        // cancels it.
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn commit_wakes_blocked_taker() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take(&Template::of_type("task"), Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        let txn = s.txn().unwrap();
        txn.write(task(5)).unwrap();
        txn.commit().unwrap();
        assert_eq!(h.join().unwrap().unwrap().get_int("id"), Some(5));
    }

    #[test]
    fn len_counts_only_read_visible_entries() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        let txn = s.txn().unwrap();
        // A take-locked entry and an uncommitted write are both invisible
        // to plain readers, so neither may count.
        txn.take_if_exists(&Template::of_type("task"))
            .unwrap()
            .unwrap();
        txn.write(task(2)).unwrap();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        txn.commit().unwrap();
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn notify_fires_on_matching_write_only() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::build("task").eq("id", 2i64).done());
        s.write(task(1)).unwrap();
        s.write(task(2)).unwrap();
        let ev = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(ev.tuple.get_int("id"), Some(2));
        assert_eq!(ev.seq, 1);
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn notify_fires_on_commit_not_before() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::of_type("task"));
        let txn = s.txn().unwrap();
        txn.write(task(1)).unwrap();
        assert!(rx.try_recv().is_err());
        txn.commit().unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn cancel_notify_stops_events() {
        let s = Space::new("t");
        let (cookie, rx) = s.notify_channel(Template::of_type("task"));
        s.cancel_notify(cookie).unwrap();
        s.write(task(1)).unwrap();
        assert!(rx.try_recv().is_err());
        assert_eq!(s.cancel_notify(cookie), Err(SpaceError::NoSuchRegistration));
    }

    #[test]
    fn listener_may_call_back_into_the_space() {
        // Regression: listeners used to be invoked while holding the
        // registration's lock, so a listener that wrote a reply tuple
        // (re-entering event dispatch) deadlocked the writing thread.
        let s = Space::new("t");
        let replier = s.clone();
        s.notify(
            Template::of_type("task"),
            Box::new(move |ev| {
                let id = ev.tuple.get_int("id").unwrap();
                replier
                    .write(Tuple::build("reply").field("id", id).done())
                    .unwrap();
            }),
        );
        s.write(task(7)).unwrap();
        let reply = s.read_if_exists(&Template::of_type("reply")).unwrap();
        assert_eq!(reply.unwrap().get_int("id"), Some(7));
    }

    #[test]
    fn many_concurrent_takers_each_get_distinct_task() {
        let s = Space::new("t");
        let n = 64;
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s2 = s.clone();
            handles.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(t) = s2
                    .take(&Template::of_type("task"), Some(Duration::from_millis(200)))
                    .unwrap()
                {
                    got.push(t.get_int("id").unwrap());
                }
                got
            }));
        }
        for i in 0..n {
            s.write(task(i)).unwrap();
        }
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn write_all_is_batched_and_ordered() {
        let s = Space::new("t");
        let ids = s.write_all((0..5).map(task).collect()).unwrap();
        assert_eq!(ids.len(), 5);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1), "contiguous ids");
        for i in 0..5 {
            let got = s
                .take_if_exists(&Template::of_type("task"))
                .unwrap()
                .unwrap();
            assert_eq!(got.get_int("id"), Some(i), "FIFO preserved");
        }
    }

    #[test]
    fn write_all_fires_events_per_tuple() {
        let s = Space::new("t");
        let (_, rx) = s.notify_channel(Template::of_type("task"));
        s.write_all(vec![task(1), task(2), task(3)]).unwrap();
        let mut seen = 0;
        while rx.recv_timeout(Duration::from_millis(200)).is_ok() {
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn write_all_wakes_blocked_taker() {
        let s = Space::new("t");
        let s2 = s.clone();
        let h = thread::spawn(move || {
            s2.take_up_to(&Template::of_type("task"), 10, Some(Duration::from_secs(5)))
                .unwrap()
        });
        thread::sleep(Duration::from_millis(30));
        s.write_all((0..4).map(task).collect()).unwrap();
        let got = h.join().unwrap();
        assert_eq!(got.len(), 4, "first blocks, rest drained");
    }

    #[test]
    fn write_all_leased_honors_lease() {
        let s = Space::new("t");
        let ids = s
            .write_all_leased((0..3).map(task).collect(), Lease::for_millis(100))
            .unwrap();
        assert_eq!(ids.len(), 3);
        assert_eq!(s.len(), 3);
        thread::sleep(Duration::from_millis(150));
        assert_eq!(s.len(), 0);
        assert!(s
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn take_up_to_caps_at_max() {
        let s = Space::new("t");
        s.write_all((0..10).map(task).collect()).unwrap();
        let got = s
            .take_up_to(&Template::of_type("task"), 3, Some(Duration::ZERO))
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(s.len(), 7);
        let none = s
            .take_up_to(&Template::of_type("task"), 0, Some(Duration::ZERO))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn take_up_to_timeout_empty() {
        let s = Space::new("t");
        let got = s
            .take_up_to(
                &Template::of_type("task"),
                5,
                Some(Duration::from_millis(20)),
            )
            .unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn stats_track_operations() {
        let s = Space::new("t");
        s.write(task(1)).unwrap();
        s.read_if_exists(&Template::of_type("task")).unwrap();
        s.take_if_exists(&Template::of_type("task")).unwrap();
        s.take_if_exists(&Template::of_type("task")).unwrap();
        let st = s.stats();
        assert_eq!(st.writes, 1);
        assert_eq!(st.reads, 1);
        assert_eq!(st.takes, 1);
        assert_eq!(st.misses, 1);
        assert!(st.bytes_written > 0);
    }

    #[test]
    fn exact_match_lookups_use_the_field_index() {
        let s = Space::new("t");
        for i in 0..100 {
            s.write(task(i)).unwrap();
        }
        let tmpl = Template::build("task").eq("id", 99i64).done();
        let got = s.read_if_exists(&tmpl).unwrap().unwrap();
        assert_eq!(got.get_int("id"), Some(99));
        assert_eq!(s.stats().index_hits, 1);
        // A type-only scan cannot use the index.
        s.take_if_exists(&Template::of_type("task"))
            .unwrap()
            .unwrap();
        assert_eq!(s.stats().index_misses, 1);
    }

    #[test]
    fn index_stays_consistent_across_take_and_rewrite() {
        let s = Space::new("t");
        let tmpl = |i: i64| Template::build("task").eq("id", i).done();
        s.write(task(1)).unwrap();
        s.write(task(1)).unwrap();
        s.write(task(2)).unwrap();
        // Two entries share the value; FIFO picks the older one first.
        let a = s.take_if_exists(&tmpl(1)).unwrap().unwrap();
        assert_eq!(a.get_int("id"), Some(1));
        assert!(s.take_if_exists(&tmpl(1)).unwrap().is_some());
        assert!(s.take_if_exists(&tmpl(1)).unwrap().is_none());
        // The id=2 entry is untouched and still indexed.
        assert!(s.read_if_exists(&tmpl(2)).unwrap().is_some());
        // Rewriting a taken value re-indexes it.
        s.write(task(1)).unwrap();
        assert!(s.take_if_exists(&tmpl(1)).unwrap().is_some());
    }

    #[test]
    fn indexed_lookup_respects_txn_locks() {
        let s = Space::new("t");
        s.write(task(3)).unwrap();
        let tmpl = Template::build("task").eq("id", 3i64).done();
        let txn = s.txn().unwrap();
        txn.take_if_exists(&tmpl).unwrap().unwrap();
        // Index still knows the entry, but visibility must hide it.
        assert!(s.read_if_exists(&tmpl).unwrap().is_none());
        assert!(s.take_if_exists(&tmpl).unwrap().is_none());
        txn.abort().unwrap();
        assert!(s.take_if_exists(&tmpl).unwrap().is_some());
    }

    #[test]
    fn type_wildcard_template_scans_all_types() {
        let s = Space::new("t");
        s.write(Tuple::build("alpha").field("x", 1i64).done())
            .unwrap();
        s.write(Tuple::build("beta").field("x", 1i64).done())
            .unwrap();
        let all = s
            .read_all(&Template::any_type().eq("x", 1i64).done())
            .unwrap();
        assert_eq!(all.len(), 2);
    }

    fn durable_dir(label: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("acc-space-{}-{label}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_space_recovers_writes_and_takes() {
        let dir = durable_dir("roundtrip");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            assert!(s.is_durable());
            for i in 0..10 {
                s.write(task(i)).unwrap();
            }
            for _ in 0..3 {
                s.take_if_exists(&Template::of_type("task")).unwrap();
            }
            s.cancel(s.write(task(99)).unwrap()).unwrap();
            // No clean shutdown: recovery must work from the raw files.
        }
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        let ids: Vec<i64> = r
            .dump()
            .into_iter()
            .map(|(_, t)| t.get_int("id").unwrap())
            .collect();
        assert_eq!(ids, vec![3, 4, 5, 6, 7, 8, 9]);
        // FIFO order and id allocation continue where they left off.
        let got = r.take_if_exists(&Template::of_type("task")).unwrap();
        assert_eq!(got.unwrap().get_int("id"), Some(3));
        let fresh = r.write(task(100)).unwrap();
        assert!(fresh > 11, "recovered id counter must not reuse ids");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_expired_during_downtime_is_not_resurrected() {
        let dir = durable_dir("lease");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            s.write_leased(task(1), Lease::for_millis(30)).unwrap();
            s.write(task(2)).unwrap();
        }
        // The lease runs out while no process has the space open.
        thread::sleep(Duration::from_millis(60));
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        let ids: Vec<i64> = r
            .dump()
            .into_iter()
            .map(|(_, t)| t.get_int("id").unwrap())
            .collect();
        assert_eq!(ids, vec![2], "expired entry must stay dead after replay");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn renewed_lease_survives_recovery() {
        let dir = durable_dir("renew");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            let id = s.write_leased(task(1), Lease::for_millis(30)).unwrap();
            s.renew_lease(id, Lease::for_millis(60_000)).unwrap();
        }
        thread::sleep(Duration::from_millis(60));
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        assert_eq!(r.dump().len(), 1, "renewal must be replayed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn committed_txn_survives_recovery_uncommitted_does_not() {
        let dir = durable_dir("txn");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            s.write(task(0)).unwrap();
            let committed = s.txn().unwrap();
            committed.write(task(1)).unwrap();
            committed
                .take_if_exists(&Template::build("task").eq("id", 0i64).done())
                .unwrap()
                .unwrap();
            committed.commit().unwrap();
            // This transaction is still open at "crash" time.
            let open = s.txn().unwrap();
            open.write(task(2)).unwrap();
            std::mem::forget(open);
        }
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        let ids: Vec<i64> = r
            .dump()
            .into_iter()
            .map(|(_, t)| t.get_int("id").unwrap())
            .collect();
        assert_eq!(
            ids,
            vec![1],
            "commit is atomic: its write landed, its take landed, \
             and the uncommitted write vanished"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_recovery_uses_snapshot_plus_tail() {
        let dir = durable_dir("ckpt");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            for i in 0..20 {
                s.write(task(i)).unwrap();
            }
            for _ in 0..5 {
                s.take_if_exists(&Template::of_type("task")).unwrap();
            }
            let cut = s.checkpoint().unwrap();
            assert_eq!(cut, 25);
            // Ops after the checkpoint live only in the WAL tail.
            s.write(task(100)).unwrap();
            s.take_if_exists(&Template::of_type("task")).unwrap();
        }
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        let ids: Vec<i64> = r
            .dump()
            .into_iter()
            .map(|(_, t)| t.get_int("id").unwrap())
            .collect();
        let expected: Vec<i64> = (6..20).chain([100]).collect();
        assert_eq!(ids, expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_on_plain_space_is_a_storage_error() {
        let s = Space::new("plain");
        assert!(!s.is_durable());
        assert!(matches!(s.checkpoint(), Err(SpaceError::Storage(_))));
        assert_eq!(s.flush_journal(), Ok(()));
    }

    #[test]
    fn durable_batch_writes_recover_in_order() {
        let dir = durable_dir("batch");
        {
            let s = Space::durable("d", &dir, WalOptions::default()).unwrap();
            s.write_all((0..8).map(task).collect()).unwrap();
        }
        let r = Space::durable("d", &dir, WalOptions::default()).unwrap();
        for i in 0..8 {
            let got = r
                .take_if_exists(&Template::of_type("task"))
                .unwrap()
                .unwrap();
            assert_eq!(got.get_int("id"), Some(i));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn distinct_types_do_not_contend_for_wakeups() {
        // One taker per type; each write must wake (at most) its own
        // type's waiter and every taker must still drain its own queue.
        let s = Space::new("t");
        let types = 4;
        let per = 16;
        let mut handles = Vec::new();
        for t in 0..types {
            let s2 = s.clone();
            handles.push(thread::spawn(move || {
                let tmpl = Template::of_type(format!("ty{t}"));
                let mut got = 0;
                for _ in 0..per {
                    s2.take(&tmpl, Some(Duration::from_secs(5)))
                        .unwrap()
                        .unwrap();
                    got += 1;
                }
                got
            }));
        }
        for i in 0..per {
            for t in 0..types {
                s.write(Tuple::build(format!("ty{t}")).field("n", i as i64).done())
                    .unwrap();
            }
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), per);
        }
        assert_eq!(s.len(), 0);
    }
}
