//! Power-iteration PageRank and prefetch selection.

use super::matrix::StochasticMatrix;

/// PageRank solver parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRank {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// L1 convergence tolerance between iterations.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 100,
        }
    }
}

impl PageRank {
    /// One power-iteration step: `d·(M·r) + (1-d)/n`, with the matvec
    /// supplied so strip-parallel and sequential paths share this code.
    pub fn step_from_product(&self, product: &[f64]) -> Vec<f64> {
        let n = product.len();
        let teleport = (1.0 - self.damping) / n as f64;
        product
            .iter()
            .map(|&x| self.damping * x + teleport)
            .collect()
    }

    /// L1 distance between successive iterates.
    pub fn delta(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    /// Sequential PageRank: returns `(ranks, iterations)`.
    pub fn compute(&self, matrix: &StochasticMatrix) -> (Vec<f64>, usize) {
        let n = matrix.n();
        let mut rank = vec![1.0 / n as f64; n];
        for iter in 1..=self.max_iterations {
            let next = self.step_from_product(&matrix.multiply(&rank));
            let delta = Self::delta(&next, &rank);
            rank = next;
            if delta < self.tolerance {
                return (rank, iter);
            }
        }
        (rank, self.max_iterations)
    }
}

/// Prefetch selection: among the pages `current` links to, the `k` with the
/// highest rank — "if the requested pages link to an important page, that
/// page has a higher probability of being the next one requested".
pub fn top_linked_pages(successors: &[u32], ranks: &[f64], k: usize) -> Vec<u32> {
    let mut candidates: Vec<u32> = successors.to_vec();
    candidates.sort_by(|&a, &b| {
        ranks[b as usize]
            .partial_cmp(&ranks[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::web::{generate_cluster, LinkGraph};

    fn matrix(n: usize, seed: u64) -> StochasticMatrix {
        StochasticMatrix::from_graph(&LinkGraph::from_pages(&generate_cluster("t", n, seed)))
    }

    #[test]
    fn ranks_sum_to_one_and_are_positive() {
        let m = matrix(150, 4);
        let (ranks, iters) = PageRank::default().compute(&m);
        assert!(iters < 100, "should converge, took {iters}");
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
        assert!(
            ranks.iter().all(|&r| r > 0.0),
            "teleport keeps all positive"
        );
    }

    #[test]
    fn known_two_node_chain() {
        // 0 <-> 1 symmetric: ranks must be equal.
        let graph = LinkGraph {
            n: 2,
            successors: vec![vec![1], vec![0]],
        };
        let m = StochasticMatrix::from_graph(&graph);
        let (ranks, _) = PageRank::default().compute(&m);
        assert!((ranks[0] - 0.5).abs() < 1e-9);
        assert!((ranks[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sink_hub_attracts_rank() {
        // Everyone links to page 0; page 0 dangles.
        let graph = LinkGraph {
            n: 5,
            successors: vec![vec![], vec![0], vec![0], vec![0], vec![0]],
        };
        let m = StochasticMatrix::from_graph(&graph);
        let (ranks, _) = PageRank::default().compute(&m);
        assert!(
            ranks[0] > ranks[1] * 2.0,
            "hub {} vs leaf {}",
            ranks[0],
            ranks[1]
        );
    }

    #[test]
    fn hubs_outrank_leaves_in_generated_cluster() {
        let pages = generate_cluster("acme", 250, 6);
        let graph = LinkGraph::from_pages(&pages);
        let m = StochasticMatrix::from_graph(&graph);
        let (ranks, _) = PageRank::default().compute(&m);
        let hubs = 250 / 50 + 1;
        let hub_mean: f64 = ranks[..hubs].iter().sum::<f64>() / hubs as f64;
        let rest_mean: f64 = ranks[hubs..].iter().sum::<f64>() / (250 - hubs) as f64;
        assert!(hub_mean > 3.0 * rest_mean);
    }

    #[test]
    fn top_linked_pages_orders_by_rank() {
        let ranks = vec![0.1, 0.5, 0.2, 0.05];
        assert_eq!(top_linked_pages(&[0, 1, 2, 3], &ranks, 2), vec![1, 2]);
        assert_eq!(top_linked_pages(&[3, 0], &ranks, 5), vec![0, 3]);
        assert!(top_linked_pages(&[], &ranks, 3).is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let ranks = vec![0.25, 0.25, 0.25, 0.25];
        assert_eq!(top_linked_pages(&[2, 0, 3, 1], &ranks, 2), vec![0, 1]);
    }
}
