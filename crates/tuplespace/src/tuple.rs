//! Tuples: typed, named-field entries stored in a space.
//!
//! A [`Tuple`] is the Rust analogue of a JavaSpaces `Entry`: it carries a
//! type name (the Java class) and a set of named fields (the entry's public
//! fields). Fields are kept sorted by name so tuples have a canonical form.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable, named-field record stored in a [`crate::Space`].
///
/// Field names are shared `Arc<str>`s: tuples decoded off the wire with an
/// interner attached reuse one allocation per distinct name across every
/// tuple on the connection, instead of one `String` per field per tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    type_name: Arc<str>,
    /// Sorted by field name; unique names.
    fields: Arc<[(Arc<str>, Value)]>,
}

impl Tuple {
    /// Starts building a tuple of the given type. (`Into<Arc<str>>` so a
    /// `&str` name costs one allocation, not a `String` detour.)
    pub fn build(type_name: impl Into<Arc<str>>) -> TupleBuilder {
        TupleBuilder {
            type_name: type_name.into(),
            fields: Vec::new(),
        }
    }

    /// The tuple's type name (the analogue of the entry's Java class).
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// The shared type-name allocation (cheap to clone on hot paths).
    pub(crate) fn type_name_arc(&self) -> Arc<str> {
        self.type_name.clone()
    }

    /// All fields, sorted by name.
    pub fn fields(&self) -> &[(Arc<str>, Value)] {
        &self.fields
    }

    /// Builds a tuple straight from decoded parts, canonicalising only
    /// when needed. Encoders emit fields in canonical (sorted, unique)
    /// order, so the wire hot path takes the no-op fast path; inputs that
    /// arrive unsorted or with duplicates fall back to builder semantics
    /// (sort; later duplicates overwrite earlier ones).
    pub(crate) fn from_decoded(type_name: Arc<str>, fields: Vec<(Arc<str>, Value)>) -> Tuple {
        let canonical = fields.windows(2).all(|w| w[0].0 < w[1].0);
        if canonical {
            return Tuple {
                type_name,
                fields: fields.into(),
            };
        }
        let mut out: Vec<(Arc<str>, Value)> = Vec::with_capacity(fields.len());
        for (name, value) in fields {
            if let Some(slot) = out.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value;
            } else {
                out.push((name, value));
            }
        }
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        Tuple {
            type_name,
            fields: out.into(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .binary_search_by(|(n, _)| n.as_ref().cmp(name))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Integer field accessor.
    pub fn get_int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Value::as_int)
    }

    /// Float field accessor.
    pub fn get_float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_float)
    }

    /// Bool field accessor.
    pub fn get_bool(&self, name: &str) -> Option<bool> {
        self.get(name).and_then(Value::as_bool)
    }

    /// String field accessor.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// Bytes field accessor.
    pub fn get_bytes(&self, name: &str) -> Option<&[u8]> {
        self.get(name).and_then(Value::as_bytes)
    }

    /// List field accessor.
    pub fn get_list(&self, name: &str) -> Option<&[Value]> {
        self.get(name).and_then(Value::as_list)
    }

    /// Approximate serialized size of the tuple in bytes. Drives space
    /// statistics and the simulator's communication-cost model.
    pub fn size_hint(&self) -> usize {
        self.type_name.len()
            + self
                .fields
                .iter()
                .map(|(n, v)| n.len() + v.size_hint())
                .sum::<usize>()
    }

    /// Returns a copy of this tuple with one field replaced or added.
    pub fn with_field(&self, name: impl Into<Arc<str>>, value: impl Into<Value>) -> Tuple {
        let name = name.into();
        let mut fields: Vec<(Arc<str>, Value)> = self.fields.to_vec();
        match fields.binary_search_by(|(n, _)| n.cmp(&name)) {
            Ok(i) => fields[i].1 = value.into(),
            Err(i) => fields.insert(i, (name, value.into())),
        }
        Tuple {
            type_name: self.type_name.clone(),
            fields: fields.into(),
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.type_name)?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Tuple`]; later duplicate field names overwrite earlier ones.
#[derive(Debug)]
pub struct TupleBuilder {
    type_name: Arc<str>,
    fields: Vec<(Arc<str>, Value)>,
}

impl TupleBuilder {
    /// Adds (or overwrites) a field. `Into<Arc<str>>` (rather than
    /// `Into<String>`) keeps a `&str` name at exactly one allocation —
    /// fields are stored `Arc<str>`-named, and routing through `String`
    /// would pay a second alloc-and-copy on conversion.
    pub fn field(mut self, name: impl Into<Arc<str>>, value: impl Into<Value>) -> Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
        self
    }

    /// Finishes the tuple.
    pub fn done(mut self) -> Tuple {
        self.fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Tuple {
            type_name: self.type_name,
            fields: self.fields.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_access() {
        let t = Tuple::build("task")
            .field("id", 3i64)
            .field("label", "strip")
            .field("weight", 2.5f64)
            .field("done", false)
            .done();
        assert_eq!(t.type_name(), "task");
        assert_eq!(t.len(), 4);
        assert_eq!(t.get_int("id"), Some(3));
        assert_eq!(t.get_str("label"), Some("strip"));
        assert_eq!(t.get_float("weight"), Some(2.5));
        assert_eq!(t.get_bool("done"), Some(false));
        assert!(t.get("missing").is_none());
    }

    #[test]
    fn duplicate_field_overwrites() {
        let t = Tuple::build("t").field("x", 1i64).field("x", 2i64).done();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get_int("x"), Some(2));
    }

    #[test]
    fn fields_are_sorted_canonically() {
        let a = Tuple::build("t").field("b", 1i64).field("a", 2i64).done();
        let b = Tuple::build("t").field("a", 2i64).field("b", 1i64).done();
        assert_eq!(a, b);
        assert_eq!(&*a.fields()[0].0, "a");
    }

    #[test]
    fn with_field_replaces_and_inserts() {
        let t = Tuple::build("t").field("a", 1i64).done();
        let t2 = t.with_field("a", 9i64).with_field("z", "new");
        assert_eq!(t2.get_int("a"), Some(9));
        assert_eq!(t2.get_str("z"), Some("new"));
        // Original untouched (immutability).
        assert_eq!(t.get_int("a"), Some(1));
        assert!(t.get("z").is_none());
    }

    #[test]
    fn display_is_readable() {
        let t = Tuple::build("task").field("id", 1i64).done();
        assert_eq!(format!("{t}"), "task{id: 1}");
    }

    #[test]
    fn size_hint_counts_names_and_values() {
        let t = Tuple::build("tt").field("ab", 1i64).done();
        assert_eq!(t.size_hint(), 2 + 2 + 8);
    }

    #[test]
    fn from_decoded_canonicalises_when_needed() {
        let mk = |n: &str| -> Arc<str> { Arc::from(n) };
        // Canonical input: fast path, order preserved verbatim.
        let sorted = Tuple::from_decoded(
            mk("t"),
            vec![(mk("a"), Value::Int(1)), (mk("b"), Value::Int(2))],
        );
        assert_eq!(
            sorted,
            Tuple::build("t").field("a", 1i64).field("b", 2i64).done()
        );
        // Unsorted + duplicate input: builder semantics (sort, later wins).
        let messy = Tuple::from_decoded(
            mk("t"),
            vec![
                (mk("b"), Value::Int(2)),
                (mk("a"), Value::Int(1)),
                (mk("b"), Value::Int(9)),
            ],
        );
        assert_eq!(
            messy,
            Tuple::build("t")
                .field("b", 2i64)
                .field("a", 1i64)
                .field("b", 9i64)
                .done()
        );
        assert_eq!(messy.get_int("b"), Some(9));
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::build("empty").done();
        assert!(t.is_empty());
        assert_eq!(t.size_hint(), 5);
    }
}
