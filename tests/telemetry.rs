//! Telemetry integration: a real master/worker round emits the expected
//! span tree, and one cluster run populates the global metrics registry
//! with series from every layer.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::Payload;
use adaptive_spaces::telemetry::trace::{RingBufferSubscriber, TraceKind};
use adaptive_spaces::telemetry::{flight, registry, trace, TraceAssembler};

/// The trace subscriber is process-global; tests that install one
/// serialise here so captures don't interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

struct Doubler {
    n: u64,
    total: u64,
}

struct DoubleExecutor;

impl TaskExecutor for DoubleExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        Ok((2 * x).to_bytes())
    }
}

impl Application for Doubler {
    fn job_name(&self) -> String {
        "doubler".into()
    }
    fn bundle_name(&self) -> String {
        "doubler-worker".into()
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(DoubleExecutor)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        Ok(())
    }
}

fn fast_config() -> FrameworkConfig {
    FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        class_load_base: Duration::from_millis(2),
        class_load_per_kb: Duration::ZERO,
        task_poll_timeout: Duration::from_millis(10),
        ..FrameworkConfig::default()
    }
}

fn run_job(tasks: u64, workers: usize) -> Doubler {
    let mut app = Doubler { n: tasks, total: 0 };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    for i in 0..workers {
        cluster.add_worker(NodeSpec::new(format!("w{i:02}"), 800, 256));
    }
    let report = cluster.run(&mut app);
    assert_eq!(report.results_collected, tasks as usize);
    cluster.shutdown();
    app
}

#[test]
fn master_worker_round_emits_expected_span_tree() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let ring = RingBufferSubscriber::new(16_384);
    trace::install(ring.clone());
    let app = run_job(8, 2);
    trace::uninstall();
    assert_eq!(app.total, (0..8).map(|i| 2 * i).sum::<u64>());

    let names = ring.names();
    let first = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("no {name:?} record in {names:?}"))
    };
    let last = |name: &str| names.iter().rposition(|n| *n == name).unwrap();

    // The whole pipeline is present: planning → task take → compute →
    // result write → aggregation.
    let planning = first("master.planning");
    let take = first("worker.task.take");
    let compute = first("worker.compute");
    let write = first("worker.result.write");
    let aggregation_end = last("master.aggregation");
    assert!(
        planning < take,
        "tasks are taken only after planning starts"
    );
    assert!(take < compute, "compute happens inside the taken task");
    assert!(compute < write, "the result is written after computing");
    assert!(
        write < aggregation_end,
        "aggregation outlives the first result"
    );

    // Every task produced exactly one take and one result write.
    assert_eq!(ring.count("worker.task.take"), 8);
    assert_eq!(ring.count("worker.result.write"), 8);

    // Spans nest: worker.compute sits inside the worker.task span.
    let events = ring.events();
    let task_enter = events
        .iter()
        .find(|e| e.name == "worker.task" && e.kind == TraceKind::SpanEnter)
        .expect("worker.task span");
    let compute_enter = events
        .iter()
        .find(|e| e.name == "worker.compute" && e.kind == TraceKind::SpanEnter)
        .expect("worker.compute span");
    assert_eq!(compute_enter.depth, task_enter.depth + 1);

    // Workers start via a Start signal, which is traced as a transition.
    assert!(ring.count("worker.transition") >= 2, "one Start per worker");

    // Span exits carry elapsed time.
    let exit = events
        .iter()
        .find(|e| matches!(e.kind, TraceKind::SpanExit { .. }) && e.name == "master.aggregation")
        .expect("aggregation exit");
    let TraceKind::SpanExit { .. } = exit.kind else {
        unreachable!()
    };
}

#[test]
fn cluster_run_populates_registry_across_layers() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    run_job(16, 2);

    let snapshot = registry().snapshot();
    let mut names: Vec<&str> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .copied()
        .collect();
    names.sort_unstable();
    names.dedup();
    assert!(
        names.len() >= 20,
        "expected at least 20 distinct series, got {}: {names:?}",
        names.len()
    );
    for prefix in [
        "space.",
        "master.",
        "worker.",
        "monitor.",
        "snmp.",
        "federation.",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* series in {names:?}"
        );
    }

    // Core counters moved with the run.
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert!(counter("master.runs") >= 1);
    assert!(counter("master.tasks.planned") >= 16);
    assert!(counter("worker.task.completed") >= 16);
    assert!(counter("space.write.count") >= 16);
    assert!(counter("space.take.count") >= 16);
    assert!(counter("federation.lease.granted") >= 1);
    assert!(counter("snmp.poll.requests") >= 1);
}

/// One raw HTTP/1.0 GET; returns the body (everything past the header
/// block).
fn http_get_body(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.0 200"), "got: {out:.200}");
    out.split_once("\r\n\r\n")
        .expect("header block")
        .1
        .to_owned()
}

/// The tentpole end to end: a master driving a TCP-served space, a worker
/// reaching the same space over its own TCP connection, the flight
/// recorder on, and `/spans` scraped from both the space server's
/// observability endpoint and a second locally mounted one. The scraped
/// dumps must assemble into a single trace whose spans cross the wire —
/// master.dispatch → remote.take → space.serve — and reach the worker's
/// compute through the task tuple's trace-context field.
#[test]
fn one_trace_crosses_wire_space_and_worker() {
    use adaptive_spaces::framework::{
        BundleServer, CodeBundle, ExecutorRegistry, Master, RuleBaseServer, Signal, WorkerConfig,
        WorkerRuntime,
    };
    use adaptive_spaces::space::remote::{ServerOptions, SpaceServer};
    use adaptive_spaces::space::{RemoteSpace, Space, StoreHandle};

    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    flight::install();
    flight::clear();

    // Server side: the space, served over TCP with its scrape endpoint.
    let space = Space::new("wire-trace");
    let server = SpaceServer::spawn_observed(
        space.clone(),
        "127.0.0.1:0",
        ServerOptions::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let space_addr = server.addr();
    let server_observe = server.observe_addr().unwrap();

    // Worker side: a runtime whose space access goes through the proxy.
    let rulebase = RuleBaseServer::new(Arc::new(|_, _| {}));
    let bundle_server = BundleServer::new(Duration::from_millis(1), Duration::ZERO);
    bundle_server.publish(CodeBundle::synthetic("doubler-worker", 1, 1));
    let executors = ExecutorRegistry::new();
    executors.register("doubler-worker", Arc::new(DoubleExecutor));
    let (client_side, server_side) = adaptive_spaces::framework::duplex_pair();
    let rb = rulebase.clone();
    let accept =
        std::thread::spawn(move || rb.accept(server_side, Duration::from_secs(5)).unwrap());
    let worker_store: StoreHandle = Arc::new(RemoteSpace::connect(space_addr).unwrap());
    let worker = WorkerRuntime::spawn(WorkerConfig {
        name: "remote-w".into(),
        space: worker_store,
        bundle_server,
        registry: executors,
        duplex: client_side,
        bundle_name: "doubler-worker".into(),
        job: "doubler".into(),
        node_load: None,
        epoch: std::time::Instant::now(),
        framework: FrameworkConfig {
            task_poll_timeout: Duration::from_millis(10),
            ..FrameworkConfig::default()
        },
        publish_metrics: false,
    })
    .unwrap();
    let worker_id = accept.join().unwrap();
    rulebase.send_signal(worker_id, Signal::Start);

    // Master side: its own TCP connection to the same space.
    let master_store: StoreHandle = Arc::new(RemoteSpace::connect(space_addr).unwrap());
    let master = Master::new(master_store);
    let mut app = Doubler { n: 4, total: 0 };
    let report = master.run(&mut app).unwrap();
    assert!(report.complete, "failures: {:?}", report.failures);
    assert_eq!(app.total, (0..4).map(|i| 2 * i).sum::<u64>());

    // Scrape /spans from both sides of the deployment, plus the metrics
    // and health routes while a live cluster is up.
    let local_observe = adaptive_spaces::telemetry::serve(
        "127.0.0.1:0",
        adaptive_spaces::telemetry::HealthChecks::new(),
    )
    .unwrap();
    let server_spans = http_get_body(server_observe, "/spans");
    let local_spans = http_get_body(local_observe.addr(), "/spans");
    let metrics = http_get_body(server_observe, "/metrics");
    assert!(metrics.contains("process.uptime_seconds"), "{metrics:.300}");
    let health = http_get_body(server_observe, "/healthz");
    assert!(health.starts_with("ok"), "{health}");

    // Assemble the dumps into one tree.
    let mut asm = TraceAssembler::new();
    asm.add_flight_json("server", &server_spans);
    asm.add_flight_json("local", &local_spans);
    let dispatch = asm.find("master.dispatch").expect("master.dispatch span");
    let trace_id = dispatch.trace_id;
    let dispatch_span = dispatch.span_id;
    let in_trace = asm.spans(trace_id);

    // The master's wire calls join its trace with dispatch as an ancestor.
    let take = in_trace
        .iter()
        .find(|s| s.name == "remote.take")
        .expect("remote.take in the master's trace");
    assert!(
        asm.ancestry(take.span_id)
            .iter()
            .any(|s| s.span_id == dispatch_span),
        "master.dispatch not an ancestor of remote.take:\n{}",
        asm.render_tree(trace_id)
    );
    // The server adopted the wire context for its serve spans.
    assert!(
        in_trace.iter().any(|s| s.name == "space.serve"),
        "no space.serve span in trace:\n{}",
        asm.render_tree(trace_id)
    );
    // The worker adopted the tuple-borne context for its compute.
    assert!(
        in_trace.iter().any(|s| s.name == "worker.compute"),
        "no worker.compute span in trace:\n{}",
        asm.render_tree(trace_id)
    );
    // And the trace genuinely crosses execution contexts.
    let mut threads: Vec<&str> = in_trace.iter().map(|s| s.thread.as_str()).collect();
    threads.sort_unstable();
    threads.dedup();
    assert!(
        threads.len() >= 2,
        "expected spans from at least 2 threads, got {threads:?}:\n{}",
        asm.render_tree(trace_id)
    );

    worker.shutdown();
    drop(server);
    flight::uninstall();
    flight::clear();
}

/// A panicking thread leaves a parseable `flight-<pid>.json` behind.
#[test]
fn panic_dumps_parseable_flight_recording() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    flight::install();
    flight::clear();
    let dir = std::env::temp_dir().join(format!("acc-flight-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    flight::set_dump_dir(&dir);
    flight::install_panic_hook();

    let crash = std::thread::Builder::new()
        .name("doomed".into())
        .spawn(|| {
            let _span = adaptive_spaces::telemetry::span!("doomed.final_descent");
            adaptive_spaces::telemetry::event!("doomed.mayday", altitude = 0);
            panic!("controlled flight into terrain");
        })
        .unwrap();
    assert!(crash.join().is_err(), "thread must panic");

    let dump_path = dir.join(format!("flight-{}.json", std::process::id()));
    let dump = std::fs::read_to_string(&dump_path).expect("panic hook wrote the flight file");
    let mut asm = TraceAssembler::new();
    let parsed = asm.add_flight_json("crashed", &dump);
    assert!(parsed > 0, "no events parsed from: {dump:.400}");
    let span = asm
        .find("doomed.final_descent")
        .expect("the doomed span is in the recording");
    assert_eq!(span.thread, "doomed");

    let _ = std::fs::remove_dir_all(&dir);
    flight::uninstall();
    flight::clear();
}
