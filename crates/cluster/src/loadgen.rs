//! Synthetic load generators.
//!
//! The paper's adaptation experiments needed *repeatable* loading sequences,
//! so the authors built two load simulators (§5.2.2). We reproduce them as
//! deterministic [`LoadTrace`]s — piecewise-constant background-load
//! schedules — plus a [`LoadGenerator`] that plays a trace against a node in
//! real time (the thread runtime) or hands the phases to the discrete-event
//! simulator (virtual time).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::node::Node;

/// The traffic pattern a phase models. Load simulator 1 cycles through
/// voice, web and multimedia traffic; simulator 2 is a pure CPU hog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficKind {
    /// RTP packets for voice traffic.
    RtpVoice,
    /// Plain HTTP request/response traffic.
    Http,
    /// Multimedia streaming over HTTP.
    MultimediaHttp,
    /// CPU-bound busy loop (simulator 2).
    CpuHog,
    /// No generated load.
    Idle,
}

/// One piecewise-constant segment of a load schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPhase {
    /// Phase start, milliseconds from trace start.
    pub at_ms: u64,
    /// Background CPU percent the generator imposes during the phase.
    pub level: u64,
    /// What the phase models.
    pub kind: TrafficKind,
}

/// A deterministic background-load schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadTrace {
    phases: Vec<LoadPhase>,
    duration_ms: u64,
}

impl LoadTrace {
    /// Builds a trace from phases (sorted by start time) and a total
    /// duration after which the generator goes idle.
    pub fn new(mut phases: Vec<LoadPhase>, duration_ms: u64) -> LoadTrace {
        phases.sort_by_key(|p| p.at_ms);
        LoadTrace {
            phases,
            duration_ms,
        }
    }

    /// A constant-level trace.
    pub fn constant(level: u64, kind: TrafficKind, duration_ms: u64) -> LoadTrace {
        LoadTrace::new(
            vec![LoadPhase {
                at_ms: 0,
                level,
                kind,
            }],
            duration_ms,
        )
    }

    /// **Load simulator 1**: scripted data transfers — RTP voice, HTTP and
    /// multimedia-over-HTTP — that hold the worker between 30% and 50% CPU.
    /// The pattern cycles deterministically every 3 segments.
    pub fn simulator1(duration_ms: u64) -> LoadTrace {
        let segment_ms = 500u64.min(duration_ms.max(1));
        let mut phases = Vec::new();
        let pattern = [
            (34, TrafficKind::RtpVoice),
            (46, TrafficKind::Http),
            (40, TrafficKind::MultimediaHttp),
            (30, TrafficKind::RtpVoice),
            (50, TrafficKind::MultimediaHttp),
            (38, TrafficKind::Http),
        ];
        let mut at = 0;
        let mut i = 0;
        while at < duration_ms {
            let (level, kind) = pattern[i % pattern.len()];
            phases.push(LoadPhase {
                at_ms: at,
                level,
                kind,
            });
            at += segment_ms;
            i += 1;
        }
        LoadTrace::new(phases, duration_ms)
    }

    /// **Load simulator 2**: pegs the CPU at 100% for the whole duration.
    pub fn simulator2(duration_ms: u64) -> LoadTrace {
        LoadTrace::constant(100, TrafficKind::CpuHog, duration_ms)
    }

    /// A square wave between idle and `level`, switching every
    /// `period_ms` — the transient-load pattern used by the ablation
    /// experiments (starts idle).
    pub fn flapping(level: u64, duration_ms: u64, period_ms: u64) -> LoadTrace {
        assert!(period_ms > 0);
        let kind = if level >= 100 {
            TrafficKind::CpuHog
        } else {
            TrafficKind::Http
        };
        let mut phases = Vec::new();
        let mut at = 0;
        let mut current = 0;
        while at < duration_ms {
            phases.push(LoadPhase {
                at_ms: at,
                level: current,
                kind: if current == 0 {
                    TrafficKind::Idle
                } else {
                    kind
                },
            });
            current = if current == 0 { level } else { 0 };
            at += period_ms;
        }
        LoadTrace::new(phases, duration_ms)
    }

    /// The scheduled phases.
    pub fn phases(&self) -> &[LoadPhase] {
        &self.phases
    }

    /// Total duration, after which the level is 0.
    pub fn duration_ms(&self) -> u64 {
        self.duration_ms
    }

    /// The load level at `t_ms` from trace start (0 after the end).
    pub fn level_at(&self, t_ms: u64) -> u64 {
        if t_ms >= self.duration_ms {
            return 0;
        }
        self.phases
            .iter()
            .take_while(|p| p.at_ms <= t_ms)
            .last()
            .map(|p| p.level)
            .unwrap_or(0)
    }

    /// Total time within `[from_ms, to_ms)` during which the trace level
    /// is at least `threshold` — used to measure exactly how long a
    /// framework task overlapped with externally generated load.
    pub fn time_at_or_above(&self, threshold: u64, from_ms: u64, to_ms: u64) -> u64 {
        if from_ms >= to_ms {
            return 0;
        }
        // Build the boundary list: phase starts plus the trace end.
        let mut total = 0;
        let mut cursor = from_ms;
        while cursor < to_ms {
            let level = self.level_at(cursor);
            // Next change point after `cursor`.
            let next_change = self
                .phases
                .iter()
                .map(|p| p.at_ms)
                .chain(std::iter::once(self.duration_ms))
                .filter(|&at| at > cursor)
                .min()
                .unwrap_or(to_ms)
                .min(to_ms);
            if level >= threshold {
                total += next_change - cursor;
            }
            if next_change == cursor {
                break; // defensive: no progress possible
            }
            cursor = next_change;
        }
        total
    }

    /// The traffic kind at `t_ms`.
    pub fn kind_at(&self, t_ms: u64) -> TrafficKind {
        if t_ms >= self.duration_ms {
            return TrafficKind::Idle;
        }
        self.phases
            .iter()
            .take_while(|p| p.at_ms <= t_ms)
            .last()
            .map(|p| p.kind)
            .unwrap_or(TrafficKind::Idle)
    }
}

/// Plays a [`LoadTrace`] against a node's background load in real time.
#[derive(Debug)]
pub struct LoadGenerator {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl LoadGenerator {
    /// Starts playback in a background thread; the node's background load
    /// follows the trace until it ends (then drops to 0) or the generator
    /// is stopped.
    pub fn start(node: &Node, trace: LoadTrace) -> LoadGenerator {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let load = node.load();
        let thread = std::thread::spawn(move || {
            let begun = Instant::now();
            while !stop2.load(Ordering::SeqCst) {
                let t_ms = begun.elapsed().as_millis() as u64;
                if t_ms >= trace.duration_ms() {
                    break;
                }
                load.set_background(trace.level_at(t_ms));
                std::thread::sleep(Duration::from_millis(5));
            }
            load.set_background(0);
        });
        LoadGenerator {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops playback and restores 0% background load.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LoadGenerator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;

    #[test]
    fn simulator1_stays_in_band() {
        let trace = LoadTrace::simulator1(10_000);
        for t in (0..10_000).step_by(100) {
            let level = trace.level_at(t);
            assert!((30..=50).contains(&level), "t={t} level={level}");
        }
        assert_eq!(trace.level_at(10_000), 0);
    }

    #[test]
    fn simulator1_is_deterministic() {
        assert_eq!(LoadTrace::simulator1(5000), LoadTrace::simulator1(5000));
    }

    #[test]
    fn simulator1_cycles_traffic_kinds() {
        let trace = LoadTrace::simulator1(3000);
        let kinds: std::collections::HashSet<_> = (0..3000)
            .step_by(250)
            .map(|t| format!("{:?}", trace.kind_at(t)))
            .collect();
        assert!(kinds.len() >= 3, "kinds seen: {kinds:?}");
    }

    #[test]
    fn simulator2_pegs_cpu() {
        let trace = LoadTrace::simulator2(1000);
        assert_eq!(trace.level_at(0), 100);
        assert_eq!(trace.level_at(999), 100);
        assert_eq!(trace.level_at(1000), 0);
        assert_eq!(trace.kind_at(500), TrafficKind::CpuHog);
    }

    #[test]
    fn level_before_first_phase_is_zero() {
        let trace = LoadTrace::new(
            vec![LoadPhase {
                at_ms: 100,
                level: 60,
                kind: TrafficKind::Http,
            }],
            200,
        );
        assert_eq!(trace.level_at(0), 0);
        assert_eq!(trace.level_at(150), 60);
        assert_eq!(trace.kind_at(0), TrafficKind::Idle);
    }

    #[test]
    fn flapping_square_wave() {
        let trace = LoadTrace::flapping(40, 10_000, 1_000);
        assert_eq!(trace.level_at(0), 0);
        assert_eq!(trace.level_at(1_500), 40);
        assert_eq!(trace.level_at(2_500), 0);
        assert_eq!(trace.level_at(9_500), 40);
        assert_eq!(trace.level_at(10_000), 0, "past the end");
        // Exactly half the time is loaded.
        assert_eq!(trace.time_at_or_above(25, 0, 10_000), 5_000);
    }

    #[test]
    fn time_at_or_above_integrates_windows() {
        let trace = LoadTrace::new(
            vec![
                LoadPhase {
                    at_ms: 0,
                    level: 0,
                    kind: TrafficKind::Idle,
                },
                LoadPhase {
                    at_ms: 100,
                    level: 50,
                    kind: TrafficKind::Http,
                },
                LoadPhase {
                    at_ms: 300,
                    level: 0,
                    kind: TrafficKind::Idle,
                },
            ],
            400,
        );
        assert_eq!(trace.time_at_or_above(25, 0, 400), 200);
        assert_eq!(trace.time_at_or_above(25, 150, 250), 100);
        assert_eq!(trace.time_at_or_above(25, 0, 100), 0);
        assert_eq!(trace.time_at_or_above(60, 0, 400), 0, "above the level");
        // Beyond the trace end the level is 0.
        assert_eq!(trace.time_at_or_above(25, 250, 1000), 50);
        assert_eq!(trace.time_at_or_above(25, 300, 200), 0, "empty interval");
    }

    #[test]
    fn generator_drives_node_background_load() {
        let node = Node::new(NodeSpec::new("w", 800, 256));
        let generator = LoadGenerator::start(&node, LoadTrace::simulator2(10_000));
        // Wait for the generator thread to apply the level.
        let begun = Instant::now();
        while node.cpu_load() != 100 && begun.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(node.cpu_load(), 100);
        generator.stop();
        assert_eq!(node.cpu_load(), 0, "stop restores idle");
    }

    #[test]
    fn generator_ends_with_trace() {
        let node = Node::new(NodeSpec::new("w", 800, 256));
        let generator = LoadGenerator::start(&node, LoadTrace::simulator2(30));
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(node.cpu_load(), 0);
        drop(generator);
    }
}
