//! The SNMP worker-agent: services requests against a MIB.
//!
//! In the paper, a worker-agent component runs on every monitored node and
//! answers the monitoring agent's queries for system parameters. [`Agent`]
//! is that component: hand it a [`Mib`] and raw request bytes and it
//! produces raw response bytes. Transports (in-process or TCP) move the
//! bytes.

use crate::codec::{decode_message, encode_message};
use crate::mib::Mib;
use crate::oid::oids;
use crate::pdu::{ErrorStatus, Message, Pdu, PduType, SnmpError, SnmpValue, VERSION_2C};

/// An SNMP agent bound to one node's MIB.
#[derive(Debug)]
pub struct Agent {
    community: String,
    mib: Mib,
}

impl Agent {
    /// Creates an agent guarding `mib` with the given community string.
    pub fn new(community: impl Into<String>, mib: Mib) -> Agent {
        Agent {
            community: community.into(),
            mib,
        }
    }

    /// Read access to the MIB.
    pub fn mib(&self) -> &Mib {
        &self.mib
    }

    /// Handles one raw request, producing one raw response.
    pub fn handle_bytes(&self, request: &[u8]) -> Result<Vec<u8>, SnmpError> {
        let msg = decode_message(request)?;
        let response = self.handle(msg)?;
        Ok(encode_message(&response))
    }

    /// Handles one decoded request message.
    pub fn handle(&self, msg: Message) -> Result<Message, SnmpError> {
        let (base, ctx) = crate::pdu::split_community(&msg.community);
        if base != self.community {
            // Real agents silently drop bad-community packets; we surface an
            // error so callers can diagnose misconfiguration.
            return Err(SnmpError::BadCommunity);
        }
        // Adopt the manager's trace context (if it sent one) so the agent's
        // spans join the manager's distributed trace.
        let _ctx = ctx.map(acc_telemetry::TraceContext::attach);
        let _span = acc_telemetry::span!("snmp.agent.handle");
        let pdu = match msg.pdu_type {
            PduType::Get => self.serve_get(msg.pdu),
            PduType::GetNext => self.serve_get_next(msg.pdu),
            PduType::Set => self.serve_set(msg.pdu),
            PduType::Response | PduType::Trap => {
                return Err(SnmpError::Decode("agent received a non-request PDU".into()))
            }
        };
        Ok(Message {
            version: VERSION_2C,
            community: msg.community,
            pdu_type: PduType::Response,
            pdu,
        })
    }

    fn serve_get(&self, request: Pdu) -> Pdu {
        let varbinds = request
            .varbinds
            .into_iter()
            .map(|(oid, _)| {
                let value = self.mib.get(&oid).unwrap_or(SnmpValue::NoSuchObject);
                (oid, value)
            })
            .collect();
        Pdu {
            request_id: request.request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            varbinds,
        }
    }

    fn serve_get_next(&self, request: Pdu) -> Pdu {
        let varbinds = request
            .varbinds
            .into_iter()
            .map(|(oid, _)| match self.mib.next(&oid) {
                Some((next_oid, value)) => (next_oid, value),
                None => (oid, SnmpValue::EndOfMibView),
            })
            .collect();
        Pdu {
            request_id: request.request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            varbinds,
        }
    }

    fn serve_set(&self, request: Pdu) -> Pdu {
        for (index, (oid, value)) in request.varbinds.iter().enumerate() {
            if let Err(status) = self.mib.set(oid, value.clone()) {
                return Pdu {
                    request_id: request.request_id,
                    error_status: status,
                    error_index: index as i64 + 1,
                    varbinds: request.varbinds,
                };
            }
        }
        self.serve_get(request)
    }
}

/// Builds the standard host-resources MIB the framework polls: CPU load,
/// memory size, free memory, user count, plus sysDescr/sysUpTime. The
/// closures sample live node state.
pub fn host_resources_mib(
    descr: String,
    memory_kb: u64,
    cpu_load: impl Fn() -> u64 + Send + Sync + 'static,
    free_memory_kb: impl Fn() -> u64 + Send + Sync + 'static,
    uptime_ticks: impl Fn() -> u64 + Send + Sync + 'static,
) -> Mib {
    let mut mib = Mib::new();
    mib.register_const(oids::sys_descr(), SnmpValue::Str(descr.into_bytes()));
    mib.register(oids::sys_uptime(), move || {
        SnmpValue::TimeTicks(uptime_ticks())
    });
    mib.register_const(oids::hr_memory_size(), SnmpValue::Int(memory_kb as i64));
    mib.register_gauge(oids::hr_processor_load_1(), cpu_load);
    mib.register_gauge(oids::acc_free_memory(), free_memory_kb);
    mib.register_const(oids::hr_system_num_users(), SnmpValue::Gauge(0));
    mib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::Oid;

    fn agent() -> Agent {
        let mib = host_resources_mib("test-node".into(), 65536, || 42, || 1024, || 100);
        Agent::new("public", mib)
    }

    fn get(agent: &Agent, oid: &Oid) -> SnmpValue {
        let msg = Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Get,
            pdu: Pdu::request(1, std::slice::from_ref(oid)),
        };
        let resp = agent.handle(msg).unwrap();
        resp.pdu.varbinds[0].1.clone()
    }

    #[test]
    fn get_known_variables() {
        let a = agent();
        assert_eq!(get(&a, &oids::hr_processor_load_1()), SnmpValue::Gauge(42));
        assert_eq!(get(&a, &oids::hr_memory_size()), SnmpValue::Int(65536));
        assert_eq!(get(&a, &oids::acc_free_memory()), SnmpValue::Gauge(1024));
        assert_eq!(
            get(&a, &oids::sys_descr()),
            SnmpValue::Str(b"test-node".to_vec())
        );
    }

    #[test]
    fn get_unknown_yields_no_such_object() {
        let a = agent();
        assert_eq!(
            get(&a, &Oid::parse("1.2.3.4").unwrap()),
            SnmpValue::NoSuchObject
        );
    }

    #[test]
    fn bad_community_rejected() {
        let a = agent();
        let msg = Message {
            version: VERSION_2C,
            community: "private".into(),
            pdu_type: PduType::Get,
            pdu: Pdu::request(1, &[oids::sys_descr()]),
        };
        assert_eq!(a.handle(msg), Err(SnmpError::BadCommunity));
    }

    #[test]
    fn context_suffixed_community_accepted_and_echoed() {
        let a = agent();
        let ctx = acc_telemetry::TraceContext {
            trace_id: 0xdead,
            span_id: 0xbeef,
        };
        let community = crate::pdu::community_with_context("public", &ctx);
        let msg = Message {
            version: VERSION_2C,
            community: community.clone(),
            pdu_type: PduType::Get,
            pdu: Pdu::request(9, &[oids::hr_memory_size()]),
        };
        let resp = a.handle(msg).unwrap();
        // The response echoes the community exactly as received, context
        // suffix included, so the manager's own check also passes.
        assert_eq!(resp.community, community);
        assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Int(65536));
        // A context suffix does not let a wrong community through.
        let bad = Message {
            version: VERSION_2C,
            community: crate::pdu::community_with_context("private", &ctx),
            pdu_type: PduType::Get,
            pdu: Pdu::request(9, &[oids::hr_memory_size()]),
        };
        assert_eq!(a.handle(bad), Err(SnmpError::BadCommunity));
    }

    #[test]
    fn get_next_walks_mib() {
        let a = agent();
        // Walk from the root and collect all OIDs; must match mib.walk().
        let mut walked = Vec::new();
        let mut cursor = Oid::from_arcs(vec![0]);
        loop {
            let msg = Message {
                version: VERSION_2C,
                community: "public".into(),
                pdu_type: PduType::GetNext,
                pdu: Pdu::request(1, std::slice::from_ref(&cursor)),
            };
            let resp = a.handle(msg).unwrap();
            let (oid, value) = resp.pdu.varbinds[0].clone();
            if value == SnmpValue::EndOfMibView {
                break;
            }
            cursor = oid.clone();
            walked.push(oid);
        }
        assert_eq!(walked.len(), a.mib().len());
    }

    #[test]
    fn non_request_pdu_rejected() {
        let a = agent();
        let msg = Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Response,
            pdu: Pdu::request(1, &[oids::sys_descr()]),
        };
        assert!(a.handle(msg).is_err());
    }

    #[test]
    fn set_read_only_errors_with_index() {
        let a = agent();
        let msg = Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Set,
            pdu: Pdu {
                request_id: 9,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                varbinds: vec![(oids::hr_memory_size(), SnmpValue::Int(1))],
            },
        };
        let resp = a.handle(msg).unwrap();
        assert_eq!(resp.pdu.error_status, ErrorStatus::ReadOnly);
        assert_eq!(resp.pdu.error_index, 1);
    }

    #[test]
    fn handle_bytes_roundtrip() {
        let a = agent();
        let msg = Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Get,
            pdu: Pdu::request(3, &[oids::hr_processor_load_1()]),
        };
        let resp_bytes = a.handle_bytes(&crate::codec::encode_message(&msg)).unwrap();
        let resp = crate::codec::decode_message(&resp_bytes).unwrap();
        assert_eq!(resp.pdu.request_id, 3);
        assert_eq!(resp.pdu.varbinds[0].1, SnmpValue::Gauge(42));
    }

    #[test]
    fn malformed_bytes_error() {
        let a = agent();
        assert!(a.handle_bytes(&[0xde, 0xad]).is_err());
    }
}
