//! Parallel Monte-Carlo simulation for stock-option pricing (paper §5.1.1).
//!
//! A stock option is defined by the underlying security, the option type
//! (call or put), the strike price and an expiration date; interest rate
//! and volatility affect its price. We price European options by
//! risk-neutral GBM simulation (with the Black–Scholes closed form as the
//! correctness oracle) and American options with the Broadie–Glasserman
//! random-tree algorithm, whose paired high/low estimators bracket the true
//! price — the paper's "first iteration obtains a high estimate, the second
//! a low estimate".
//!
//! The paper's configuration: 10 000 simulations divided into 50 tasks of
//! 100 simulations; the high/low split doubles this to 100 subtasks in the
//! space.

mod model;
mod seq;
mod tasks;
mod tree;

pub use model::{black_scholes_price, norm_cdf, OptionSpec, OptionStyle, OptionType};
pub use seq::price_sequential;
pub use tasks::{Estimator, PricingApp, PricingResult, PricingTaskInput};
pub use tree::{bg_tree_estimate, european_mc_antithetic, european_mc_estimate};
