//! The join protocol: how a service becomes part of the federation.
//!
//! A service provider discovers every lookup service on the bus and
//! registers itself with each; the [`Registrar`] tracks the granted
//! registrations so they can be renewed or cancelled together.

use std::sync::Arc;
use std::time::Duration;

use crate::discovery::DiscoveryBus;
use crate::lookup::{LookupError, LookupService, ServiceId, ServiceItem};

/// Tracks one service's registrations across all discovered lookup services.
#[derive(Debug)]
pub struct Registrar {
    registrations: Vec<(Arc<LookupService>, ServiceId)>,
    lease: Option<Duration>,
}

impl Registrar {
    /// Runs the join protocol: discover all lookup services and register
    /// `item` with each under `lease`.
    pub fn join(
        bus: &DiscoveryBus,
        item: ServiceItem,
        lease: Option<Duration>,
    ) -> Result<Registrar, LookupError> {
        let mut registrations = Vec::new();
        for lookup in bus.discover() {
            // Each lookup assigns its own id; the proxy Arc is shared.
            let reg = lookup.register(item.clone(), lease)?;
            registrations.push((lookup, reg.id));
        }
        Ok(Registrar {
            registrations,
            lease,
        })
    }

    /// Number of lookup services this service is registered with.
    pub fn len(&self) -> usize {
        self.registrations.len()
    }

    /// True when the service is registered nowhere.
    pub fn is_empty(&self) -> bool {
        self.registrations.is_empty()
    }

    /// Renews every registration for this service. Registrations that have
    /// lapsed are dropped from the set; returns how many were renewed.
    pub fn renew_all(&mut self) -> usize {
        let lease = self.lease;
        self.registrations
            .retain(|(lookup, id)| lookup.renew(*id, lease).is_ok());
        self.registrations.len()
    }

    /// Cancels every registration.
    pub fn cancel_all(&mut self) {
        for (lookup, id) in self.registrations.drain(..) {
            let _ = lookup.cancel(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::Attributes;
    use std::time::Duration;

    fn item() -> ServiceItem {
        ServiceItem::new(
            "JavaSpaces",
            Attributes::build().set("kind", "tuple-space").done(),
            Arc::new(7u32),
        )
    }

    #[test]
    fn join_registers_with_every_lookup() {
        let bus = DiscoveryBus::new();
        bus.announce(LookupService::new("a"));
        bus.announce(LookupService::new("b"));
        let reg = Registrar::join(&bus, item(), None).unwrap();
        assert_eq!(reg.len(), 2);
        for lookup in bus.discover() {
            let found = lookup.lookup(&Attributes::build().set("kind", "tuple-space").done());
            assert_eq!(found.len(), 1);
            assert_eq!(*found[0].proxy::<u32>().unwrap(), 7);
        }
    }

    #[test]
    fn cancel_all_unregisters() {
        let bus = DiscoveryBus::new();
        bus.announce(LookupService::new("a"));
        let mut reg = Registrar::join(&bus, item(), None).unwrap();
        reg.cancel_all();
        assert!(reg.is_empty());
        assert!(bus.discover()[0].is_empty());
    }

    #[test]
    fn renew_all_counts_live_registrations() {
        let bus = DiscoveryBus::new();
        bus.announce(LookupService::new("a"));
        let mut reg = Registrar::join(&bus, item(), Some(Duration::from_secs(60))).unwrap();
        assert_eq!(reg.renew_all(), 1);
    }

    #[test]
    fn renew_all_drops_lapsed() {
        let bus = DiscoveryBus::new();
        bus.announce(LookupService::new("a"));
        let mut reg = Registrar::join(&bus, item(), Some(Duration::from_millis(5))).unwrap();
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(reg.renew_all(), 0);
        assert!(reg.is_empty());
    }

    #[test]
    fn join_with_no_lookups_is_empty() {
        let bus = DiscoveryBus::new();
        let reg = Registrar::join(&bus, item(), None).unwrap();
        assert!(reg.is_empty());
    }
}
