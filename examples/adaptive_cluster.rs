//! Full adaptation demo (paper §5.2.2): the framework backs off a worker
//! whose machine gets busy, and reclaims it when the machine is idle
//! again — without losing any work.
//!
//! One worker node is hit first by load simulator 2 (100% CPU → Stop) and
//! then by load simulator 1 (30–50% CPU → Pause), while a second node
//! stays idle and keeps computing. The example prints the signal log with
//! reaction times — the data of Figures 9(b)–11(b).
//!
//! Run with: `cargo run --release --example adaptive_cluster`

use std::sync::Arc;
use std::time::Duration;

use adaptive_spaces::cluster::{LoadGenerator, LoadTrace, NodeSpec};
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::Payload;

/// A slow-ish task so signals visibly interleave with computation.
struct BusyWork {
    tasks: u64,
    done: u64,
}

struct SpinExecutor;

impl TaskExecutor for SpinExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        std::thread::sleep(Duration::from_millis(15));
        Ok(x.to_bytes())
    }
}

impl Application for BusyWork {
    fn job_name(&self) -> String {
        "busy-work".into()
    }
    fn bundle_name(&self) -> String {
        "busy-work-worker".into()
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.tasks).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(SpinExecutor)
    }
    fn absorb(&mut self, _task_id: u64, _payload: &[u8]) -> Result<(), ExecError> {
        self.done += 1;
        Ok(())
    }
}

fn main() {
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(15),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config).build();
    let mut app = BusyWork {
        tasks: 150,
        done: 0,
    };
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("victim", 800, 256));
    cluster.add_worker(NodeSpec::new("steady", 800, 256));
    cluster.start_usage_sampler(Duration::from_millis(20));

    // Script the interference against the "victim" node while the job
    // runs: 300 ms of 100% CPU (simulator 2), a quiet gap, then 300 ms in
    // the 30–50% band (simulator 1).
    let victim = cluster.workers()[0].node.clone();
    let script = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        let hog = LoadGenerator::start(&victim, LoadTrace::simulator2(300));
        std::thread::sleep(Duration::from_millis(400));
        hog.stop();
        std::thread::sleep(Duration::from_millis(200));
        let moderate = LoadGenerator::start(&victim, LoadTrace::simulator1(300));
        std::thread::sleep(Duration::from_millis(400));
        moderate.stop();
    });

    let report = cluster.run(&mut app);
    script.join().unwrap();

    println!(
        "job complete: {}/{} results, parallel time {:.1} ms",
        report.results_collected, report.times.tasks, report.times.parallel_ms
    );
    println!();
    for worker in cluster.workers() {
        println!(
            "{} ({} tasks) signal log:",
            worker.name(),
            worker.tasks_done()
        );
        for entry in worker.signal_log() {
            println!(
                "  {:>6} at {:6} ms -> {:<7} (reaction {:3} ms)",
                entry.signal.to_string(),
                entry.client_signal_ms,
                entry.new_state.to_string(),
                entry.reaction_ms()
            );
        }
    }
    println!();
    println!(
        "no work was lost: every one of the {} tasks completed.",
        report.times.tasks
    );
    cluster.shutdown();

    // The run above fed latency histograms and counters from every layer
    // (space, master, workers, monitor, federation) into the global
    // registry; dump the whole thing in text exposition format.
    println!();
    println!("--- telemetry ---");
    print!("{}", adaptive_spaces::telemetry::registry().render_text());
}
