//! The unified metrics registry.
//!
//! Series are registered by static name and live forever: a handle
//! ([`Counter`], [`Gauge`], [`Histogram`]) is an `Arc` into the global
//! registry, so instrumented code looks its series up once (typically at
//! construction) and then records through plain relaxed atomics with no
//! further locking. One process-wide registry ([`registry`]) aggregates
//! every layer — tuple space, framework, SNMP, federation, simulator —
//! into a single [`Registry::snapshot`], a Prometheus-style text
//! exposition ([`Registry::render_text`]) and a JSON dump
//! ([`Registry::render_json`]) for the bench harness.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of every registered series.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by series name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by series name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram snapshots by series name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl Snapshot {
    /// Total number of distinct named series in the snapshot.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

/// The metrics registry: a name-indexed set of counters, gauges and
/// histograms.
#[derive(Default)]
pub struct Registry {
    series: Mutex<Series>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("counters", &series.counters.len())
            .field("gauges", &series.gauges.len())
            .field("histograms", &series.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry (tests; production code uses the global
    /// [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Series> {
        // The registry has no lock-poisoning story to tell: all mutation
        // is a BTreeMap insert.
        self.series.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.lock().counters.entry(name).or_default().clone()
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.lock().gauges.entry(name).or_default().clone()
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.lock().histograms.entry(name).or_default().clone()
    }

    /// Takes a consistent-enough snapshot of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let series = self.lock();
        Snapshot {
            counters: series
                .counters
                .iter()
                .map(|(name, c)| (*name, c.get()))
                .collect(),
            gauges: series
                .gauges
                .iter()
                .map(|(name, g)| (*name, g.get()))
                .collect(),
            histograms: series
                .histograms
                .iter()
                .map(|(name, h)| (*name, h.snapshot()))
                .collect(),
        }
    }

    /// Renders every series as Prometheus-style text exposition: one
    /// `name value` line per counter/gauge, and per-histogram quantile
    /// lines (`name{q="0.5"} v`) plus `_count`, `_sum` and `_max`.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snap.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &snap.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &snap.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let v = h.quantile(q).unwrap_or(0);
                out.push_str(&format!("{name}{{q=\"{label}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }

    /// Renders every series as a JSON object (hand-rolled: the workspace
    /// has no serde), shaped as
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    /// sum, max, p50, p90, p99}}}`.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in &snap.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{name}\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &snap.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.max,
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// The process-wide registry every layer records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counters["x.count"], 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("x.level");
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauges["x.level"], 7);
    }

    #[test]
    fn text_exposition_contains_all_series() {
        let r = Registry::new();
        r.counter("space.write.count").add(5);
        r.gauge("cluster.workers").set(3);
        r.histogram("space.take.wait_us").observe(100);
        let text = r.render_text();
        assert!(text.contains("space.write.count 5"));
        assert!(text.contains("cluster.workers 3"));
        assert!(text.contains("space.take.wait_us{q=\"0.5\"}"));
        assert!(text.contains("space.take.wait_us_count 1"));
        assert!(text.contains("space.take.wait_us_max 100"));
    }

    #[test]
    fn json_dump_is_shaped() {
        let r = Registry::new();
        r.counter("a").inc();
        r.histogram("h_us").observe(7);
        let json = r.render_json();
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"h_us\": {\"count\": 1, \"sum\": 7, \"max\": 7"));
        // Crude but effective: braces balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn snapshot_counts_series() {
        let r = Registry::new();
        r.counter("a");
        r.counter("b");
        r.gauge("c");
        r.histogram("d");
        assert_eq!(r.snapshot().series_count(), 4);
    }

    #[test]
    fn global_registry_is_shared() {
        registry().counter("telemetry.test.shared").inc();
        assert!(registry().snapshot().counters["telemetry.test.shared"] >= 1);
    }
}
