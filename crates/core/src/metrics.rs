//! The timing metrics the paper's evaluation reports (§5.2).

use std::collections::BTreeMap;

/// Phase timings for one application run, in milliseconds. These are the
/// exact quantities plotted in Figures 6–8 and measured again in the
/// dynamic-behaviour experiment (§5.2.3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseTimes {
    /// Total time the master spent decomposing the application and writing
    /// task entries into the space.
    pub task_planning_ms: f64,
    /// Total time the master spent collecting and assimilating results.
    pub task_aggregation_ms: f64,
    /// Maximum worker computation span (first task access → last result
    /// write) across all participating workers.
    pub max_worker_ms: f64,
    /// Maximum instantaneous per-task master overhead (planning or
    /// aggregating one task) — "Maximum Master Overhead" in §5.2.3.
    pub max_master_overhead_ms: f64,
    /// End-to-end parallel execution time measured at the master.
    pub parallel_ms: f64,
    /// Number of tasks planned.
    pub tasks: usize,
    /// Final busy span per worker (keyed by worker name).
    pub per_worker_ms: BTreeMap<String, f64>,
}

impl PhaseTimes {
    /// Task planning + aggregation — the combined master-side cost the
    /// dynamic-behaviour experiment reports.
    pub fn planning_and_aggregation_ms(&self) -> f64 {
        self.task_planning_ms + self.task_aggregation_ms
    }

    /// Number of distinct workers that returned at least one result.
    pub fn workers_used(&self) -> usize {
        self.per_worker_ms.len()
    }

    /// Speedup of this run relative to a baseline run (typically 1 worker).
    pub fn speedup_vs(&self, baseline: &PhaseTimes) -> f64 {
        if self.parallel_ms <= 0.0 {
            return 0.0;
        }
        baseline.parallel_ms / self.parallel_ms
    }

    /// Folds this run's phase timings into the global telemetry registry
    /// (`master.planning.us` etc.), so per-run `PhaseTimes` values and the
    /// process-wide histograms always agree. Called by [`crate::Master`]
    /// at the end of every run; also usable for simulated runs, where the
    /// millisecond fields carry virtual time.
    pub fn publish(&self) {
        let s = crate::series::series();
        s.planning_us.observe(ms_to_us(self.task_planning_ms));
        s.aggregation_us.observe(ms_to_us(self.task_aggregation_ms));
        s.parallel_us.observe(ms_to_us(self.parallel_ms));
        s.master_overhead_us
            .observe(ms_to_us(self.max_master_overhead_ms));
    }
}

fn ms_to_us(ms: f64) -> u64 {
    (ms * 1e3).max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let mut t = PhaseTimes {
            task_planning_ms: 100.0,
            task_aggregation_ms: 50.0,
            parallel_ms: 500.0,
            ..PhaseTimes::default()
        };
        t.per_worker_ms.insert("w01".into(), 300.0);
        t.per_worker_ms.insert("w02".into(), 400.0);
        assert_eq!(t.planning_and_aggregation_ms(), 150.0);
        assert_eq!(t.workers_used(), 2);
        let baseline = PhaseTimes {
            parallel_ms: 1000.0,
            ..PhaseTimes::default()
        };
        assert_eq!(t.speedup_vs(&baseline), 2.0);
    }

    #[test]
    fn zero_parallel_time_speedup_is_zero() {
        let t = PhaseTimes::default();
        let b = PhaseTimes {
            parallel_ms: 100.0,
            ..PhaseTimes::default()
        };
        assert_eq!(t.speedup_vs(&b), 0.0);
    }
}
