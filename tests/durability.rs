//! Crash-recovery integration tests: kill-point injection against the
//! durable space.
//!
//! The strategy is model-based: run a known op sequence against a durable
//! space, and after every op record the WAL length together with the
//! space's visible state. Each recorded boundary is a *kill point* — a
//! place a `kill -9` could have landed. For each one we copy the storage
//! directory, truncate the log to that boundary (and a few bytes past it,
//! to model a torn in-flight frame), recover, and require the recovered
//! state to equal exactly the state recorded at that boundary: the
//! committed prefix, nothing more, nothing less.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adaptive_spaces::space::{EntryId, Lease, Space, SpaceHandle, Template, Tuple, WalOptions};

fn tdir(label: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "acc-durability-it-{}-{label}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn task(id: i64) -> Tuple {
    Tuple::build("task").field("id", id).done()
}

/// The single active WAL segment (these tests stay below one segment).
fn wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "tests assume a single active segment");
    segments.pop().unwrap()
}

/// Copies a flat storage directory (WAL segments + snapshots).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

type Boundary = (u64, Vec<(EntryId, Tuple)>);

fn record(dir: &Path, space: &SpaceHandle) -> Boundary {
    let len = std::fs::metadata(wal_segment(dir)).unwrap().len();
    (len, space.dump())
}

/// Truncates a copy of the storage dir to `len` log bytes and recovers.
fn recover_at(src: &Path, kill_dir: &Path, len: u64) -> Vec<(EntryId, Tuple)> {
    let _ = std::fs::remove_dir_all(kill_dir);
    copy_dir(src, kill_dir);
    let segment = wal_segment(kill_dir);
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len).unwrap();
    drop(file);
    let recovered = Space::recover(kill_dir).unwrap();
    recovered.dump()
}

#[test]
fn every_kill_point_recovers_exactly_the_committed_prefix() {
    let dir = tdir("matrix");
    let space = Space::durable("kp", &dir, WalOptions::default()).unwrap();
    let all = Template::of_type("task");
    let mut boundaries: Vec<Boundary> = vec![record(&dir, &space)];

    // A representative op mix: plain writes, leased writes, takes, cancel,
    // renew, a committed transaction, and an aborted one.
    for i in 0..6 {
        space.write(task(i)).unwrap();
        boundaries.push(record(&dir, &space));
    }
    let leased = space
        .write_leased(task(100), Lease::for_millis(120_000))
        .unwrap();
    boundaries.push(record(&dir, &space));
    space.take_if_exists(&all).unwrap().unwrap();
    boundaries.push(record(&dir, &space));
    space
        .renew_lease(leased, Lease::for_millis(240_000))
        .unwrap();
    boundaries.push(record(&dir, &space));
    let victim = space.write(task(200)).unwrap();
    boundaries.push(record(&dir, &space));
    space.cancel(victim).unwrap();
    boundaries.push(record(&dir, &space));

    let txn = space.txn().unwrap();
    txn.write(task(300)).unwrap();
    txn.take_if_exists(&Template::build("task").eq("id", 1i64).done())
        .unwrap()
        .unwrap();
    txn.commit().unwrap();
    boundaries.push(record(&dir, &space));

    let aborted = space.txn().unwrap();
    aborted.write(task(400)).unwrap();
    aborted.abort().unwrap();
    boundaries.push(record(&dir, &space));

    space.take_if_exists(&all).unwrap().unwrap();
    boundaries.push(record(&dir, &space));

    drop(space);

    // The log grows monotonically, and an aborted txn journals nothing.
    for pair in boundaries.windows(2) {
        assert!(pair[0].0 <= pair[1].0);
    }

    let kill_dir = tdir("matrix-kill");
    for (i, (len, expected)) in boundaries.iter().enumerate() {
        let got = recover_at(&dir, &kill_dir, *len);
        assert_eq!(&got, expected, "kill point {i} (log length {len})");

        // A torn frame past the boundary must recover to the same state.
        let next_len = boundaries.get(i + 1).map(|b| b.0);
        if next_len.is_some_and(|n| n > *len) {
            let got = recover_at(&dir, &kill_dir, *len + 3);
            assert_eq!(&got, expected, "torn frame after kill point {i}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

#[test]
fn kill_after_checkpoint_recovers_snapshot_plus_wal_tail() {
    let dir = tdir("ckpt-tail");
    let space = Space::durable("ct", &dir, WalOptions::default()).unwrap();
    let all = Template::of_type("task");
    for i in 0..10 {
        space.write(task(i)).unwrap();
    }
    space.take_if_exists(&all).unwrap().unwrap();
    space.checkpoint().unwrap();

    // Boundaries strictly after the checkpoint: each pairs the snapshot
    // with a growing WAL tail.
    let mut boundaries: Vec<Boundary> = vec![record(&dir, &space)];
    for i in 10..15 {
        space.write(task(i)).unwrap();
        boundaries.push(record(&dir, &space));
    }
    for _ in 0..3 {
        space.take_if_exists(&all).unwrap().unwrap();
        boundaries.push(record(&dir, &space));
    }
    drop(space);

    let kill_dir = tdir("ckpt-tail-kill");
    for (i, (len, expected)) in boundaries.iter().enumerate() {
        let got = recover_at(&dir, &kill_dir, *len);
        assert_eq!(&got, expected, "post-checkpoint kill point {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&kill_dir);
}

#[test]
fn recovery_is_idempotent_and_preserves_fifo_order() {
    let dir = tdir("twice");
    {
        let space = Space::durable("tw", &dir, WalOptions::default()).unwrap();
        for i in 0..8 {
            space.write(task(i)).unwrap();
        }
        space
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .unwrap();
    }
    // Recover, mutate nothing, recover again: same state both times.
    let first = Space::recover(&dir).unwrap().dump();
    let second = Space::recover(&dir).unwrap().dump();
    assert_eq!(first, second);
    // FIFO order survives recovery: the oldest remaining entry comes out.
    let space = Space::recover(&dir).unwrap();
    let got = space
        .take_if_exists(&Template::of_type("task"))
        .unwrap()
        .unwrap();
    assert_eq!(got.get_int("id"), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lease_expiring_during_downtime_stays_dead() {
    let dir = tdir("downtime");
    {
        let space = Space::durable("dt", &dir, WalOptions::default()).unwrap();
        space.write_leased(task(1), Lease::for_millis(40)).unwrap();
        space.write(task(2)).unwrap();
        // Renewal of an already-long lease must also be honored.
        let id = space.write_leased(task(3), Lease::for_millis(40)).unwrap();
        space.renew_lease(id, Lease::for_millis(120_000)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(80));
    let space = Space::recover(&dir).unwrap();
    let ids: Vec<i64> = space
        .dump()
        .into_iter()
        .map(|(_, t)| t.get_int("id").unwrap())
        .collect();
    assert_eq!(ids, vec![2, 3], "entry 1 expired while the space was down");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_space_keeps_accepting_and_journaling_ops() {
    let dir = tdir("continue");
    {
        let space = Space::durable("ct", &dir, WalOptions::default()).unwrap();
        for i in 0..5 {
            space.write(task(i)).unwrap();
        }
    }
    // First restart: consume some, add some.
    {
        let space = Space::recover(&dir).unwrap();
        space
            .take_if_exists(&Template::of_type("task"))
            .unwrap()
            .unwrap();
        space.write(task(50)).unwrap();
        space.checkpoint().unwrap();
        space.write(task(51)).unwrap();
    }
    // Second restart: everything from both generations is there.
    let space = Space::recover(&dir).unwrap();
    let ids: Vec<i64> = space
        .dump()
        .into_iter()
        .map(|(_, t)| t.get_int("id").unwrap())
        .collect();
    assert_eq!(ids, vec![1, 2, 3, 4, 50, 51]);
    let _ = std::fs::remove_dir_all(&dir);
}
