//! Task and result entries, and the application interface.
//!
//! The master decomposes an application into tasks that are "JavaSpaces
//! enabled": serialized into tuples and written into the space. Workers
//! retrieve them by value-based lookup on the job name, compute, and write
//! result tuples back (paper §4.2).

use std::fmt;
use std::sync::Arc;

use acc_tuplespace::{Payload, PayloadError, Template, Tuple};

/// Tuple type for task entries.
pub const TASK_TYPE: &str = "acc.task";
/// Tuple type for result entries.
pub const RESULT_TYPE: &str = "acc.result";
/// Field carrying a serialized [`acc_telemetry::TraceContext`] on task and
/// result tuples. The wire envelope only links one request to its reply;
/// the master→worker hop happens through the space (the worker's `take` is
/// its own request), so the context has to ride the tuple itself.
pub const TRACE_FIELD: &str = "tctx";
/// Field carrying the serialized [`acc_cluster::TaskTiming`] attribution
/// record on result tuples (same compact-bytes style as [`TRACE_FIELD`]).
pub const TIMING_FIELD: &str = "timing";

/// Extracts the distributed trace context a tuple carries, if any.
pub fn tuple_trace_context(tuple: &Tuple) -> Option<acc_telemetry::TraceContext> {
    acc_telemetry::TraceContext::from_bytes(tuple.get_bytes(TRACE_FIELD)?)
}

fn current_trace_bytes() -> Option<Vec<u8>> {
    acc_telemetry::TraceContext::current_if_enabled().map(|ctx| ctx.to_bytes().to_vec())
}

/// A unit of work produced during task planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSpec {
    /// Unique id within the job.
    pub task_id: u64,
    /// Serialized application input (a [`Payload`] encoding).
    pub payload: Vec<u8>,
}

impl TaskSpec {
    /// Creates a spec from an encodable input.
    pub fn new(task_id: u64, input: &impl Payload) -> TaskSpec {
        TaskSpec {
            task_id,
            payload: input.to_bytes(),
        }
    }
}

/// A task as it travels through the space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskEntry {
    /// The job this task belongs to.
    pub job: String,
    /// Unique id within the job.
    pub task_id: u64,
    /// Serialized application input.
    pub payload: Vec<u8>,
    /// How many times this task has failed and been requeued.
    pub retries: u32,
}

impl TaskEntry {
    /// A fresh task (no retries yet).
    pub fn new(job: impl Into<String>, task_id: u64, payload: Vec<u8>) -> TaskEntry {
        TaskEntry {
            job: job.into(),
            task_id,
            payload,
            retries: 0,
        }
    }

    /// Serializes into a space tuple. When tracing is active the current
    /// [`acc_telemetry::TraceContext`] rides along as a `tctx` field so the
    /// worker that takes this task can join the master's trace.
    pub fn to_tuple(&self) -> Tuple {
        let mut builder = Tuple::build(TASK_TYPE)
            .field("job", self.job.as_str())
            .field("task_id", self.task_id as i64)
            .field("payload", self.payload.clone())
            .field("retries", self.retries as i64);
        if let Some(ctx) = current_trace_bytes() {
            builder = builder.field(TRACE_FIELD, ctx);
        }
        builder.done()
    }

    /// Deserializes from a space tuple.
    pub fn from_tuple(tuple: &Tuple) -> Option<TaskEntry> {
        if tuple.type_name() != TASK_TYPE {
            return None;
        }
        Some(TaskEntry {
            job: tuple.get_str("job")?.to_owned(),
            task_id: tuple.get_int("task_id")? as u64,
            payload: tuple.get_bytes("payload")?.to_vec(),
            retries: tuple.get_int("retries").unwrap_or(0) as u32,
        })
    }

    /// Decodes the payload into the application's input type.
    pub fn input<T: Payload>(&self) -> Result<T, ExecError> {
        T::from_bytes(&self.payload).map_err(ExecError::Decode)
    }
}

/// A result as it travels through the space.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEntry {
    /// The job this result belongs to.
    pub job: String,
    /// Which task produced it.
    pub task_id: u64,
    /// The worker that computed it.
    pub worker: String,
    /// Serialized application output (empty when `error` is set).
    pub payload: Vec<u8>,
    /// How long the task's computation took at the worker (ms).
    pub compute_ms: f64,
    /// The worker's cumulative busy span — first task access to this result
    /// write (ms). The paper's Max Worker Time is the max of the final
    /// spans.
    pub span_ms: f64,
    /// Set when the task exhausted its retries: the terminal error, so the
    /// master can account for the task instead of waiting forever.
    pub error: Option<String>,
    /// Per-task cost attribution (space-wait / transfer / compute /
    /// result-write), feeding the federation plane's per-worker and
    /// per-job histograms. Rides the tuple as a compact bytes field;
    /// results from older workers decode to all-zero timing.
    pub timing: acc_cluster::TaskTiming,
}

impl ResultEntry {
    /// Serializes into a space tuple.
    pub fn to_tuple(&self) -> Tuple {
        let mut builder = Tuple::build(RESULT_TYPE)
            .field("job", self.job.as_str())
            .field("task_id", self.task_id as i64)
            .field("worker", self.worker.as_str())
            .field("payload", self.payload.clone())
            .field("compute_ms", self.compute_ms)
            .field("span_ms", self.span_ms);
        if self.timing != acc_cluster::TaskTiming::default() {
            builder = builder.field(TIMING_FIELD, self.timing.to_bytes());
        }
        if let Some(error) = &self.error {
            builder = builder.field("error", error.as_str());
        }
        if let Some(ctx) = current_trace_bytes() {
            builder = builder.field(TRACE_FIELD, ctx);
        }
        builder.done()
    }

    /// Deserializes from a space tuple.
    pub fn from_tuple(tuple: &Tuple) -> Option<ResultEntry> {
        if tuple.type_name() != RESULT_TYPE {
            return None;
        }
        Some(ResultEntry {
            job: tuple.get_str("job")?.to_owned(),
            task_id: tuple.get_int("task_id")? as u64,
            worker: tuple.get_str("worker")?.to_owned(),
            payload: tuple.get_bytes("payload")?.to_vec(),
            compute_ms: tuple.get_float("compute_ms")?,
            span_ms: tuple.get_float("span_ms")?,
            error: tuple.get_str("error").map(str::to_owned),
            timing: tuple
                .get_bytes(TIMING_FIELD)
                .and_then(acc_cluster::TaskTiming::from_bytes)
                .unwrap_or_default(),
        })
    }
}

/// Template matching every task of a job — the worker's value-based lookup.
pub fn task_template(job: &str) -> Template {
    Template::build(TASK_TYPE).eq("job", job).done()
}

/// Template matching every result of a job — the master's aggregation
/// lookup.
pub fn result_template(job: &str) -> Template {
    Template::build(RESULT_TYPE).eq("job", job).done()
}

/// Errors surfaced while executing or aggregating tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A payload failed to decode.
    Decode(PayloadError),
    /// Application-level failure.
    App(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Decode(e) => write!(f, "payload decode failed: {e}"),
            ExecError::App(msg) => write!(f, "application error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The worker-side solution content: what the dynamically loaded classes do.
/// Implementations are registered in the [`crate::ExecutorRegistry`] and
/// linked when a worker loads the application's code bundle.
pub trait TaskExecutor: Send + Sync {
    /// Computes one task, returning the serialized result payload.
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError>;
}

/// An application as the framework sees it: planning, the executor bundle,
/// and result aggregation. Concrete applications expose richer typed APIs
/// on top.
pub trait Application {
    /// Unique job name (tags task and result entries in the space).
    fn job_name(&self) -> String;

    /// Name of the code bundle workers must load to compute this job.
    fn bundle_name(&self) -> String;

    /// Approximate size of the code bundle in KB (drives the modeled
    /// class-loading cost).
    fn bundle_kb(&self) -> usize {
        64
    }

    /// Task-planning phase: decompose the problem into task specs.
    fn plan(&mut self) -> Vec<TaskSpec>;

    /// The executor the bundle links to (runs on workers).
    fn executor(&self) -> Arc<dyn TaskExecutor>;

    /// Result-aggregation phase: absorb one task's result payload.
    fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError>;

    /// Serializes the aggregation-in-progress state for a master
    /// checkpoint. Returning `None` (the default) stores an empty
    /// aggregate; applications that accumulate partial results should
    /// return an encoding [`restore_partials`](Self::restore_partials) can
    /// rebuild from.
    fn snapshot_partials(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores aggregation state captured by
    /// [`snapshot_partials`](Self::snapshot_partials) when a master resumes
    /// from a checkpoint. The default accepts any bytes and restores
    /// nothing.
    fn restore_partials(&mut self, _bytes: &[u8]) -> Result<(), ExecError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> TaskEntry {
        TaskEntry::new("render", 5, vec![1, 2, 3])
    }

    fn result() -> ResultEntry {
        ResultEntry {
            job: "render".into(),
            task_id: 5,
            worker: "w01".into(),
            payload: vec![9, 9],
            compute_ms: 12.5,
            span_ms: 40.0,
            error: None,
            timing: acc_cluster::TaskTiming::default(),
        }
    }

    #[test]
    fn task_tuple_roundtrip() {
        let t = task();
        assert_eq!(TaskEntry::from_tuple(&t.to_tuple()), Some(t));
    }

    #[test]
    fn result_tuple_roundtrip() {
        let r = result();
        assert_eq!(ResultEntry::from_tuple(&r.to_tuple()), Some(r));
    }

    #[test]
    fn from_tuple_rejects_other_types() {
        assert_eq!(TaskEntry::from_tuple(&result().to_tuple()), None);
        assert_eq!(ResultEntry::from_tuple(&task().to_tuple()), None);
    }

    #[test]
    fn templates_select_by_job() {
        let t1 = task().to_tuple();
        let mut other = task();
        other.job = "other".into();
        let t2 = other.to_tuple();
        let tmpl = task_template("render");
        assert!(tmpl.matches(&t1));
        assert!(!tmpl.matches(&t2));
        assert!(!result_template("render").matches(&t1));
        assert!(result_template("render").matches(&result().to_tuple()));
    }

    #[test]
    fn retried_task_roundtrips() {
        let mut t = task();
        t.retries = 2;
        assert_eq!(TaskEntry::from_tuple(&t.to_tuple()), Some(t));
    }

    #[test]
    fn error_result_roundtrips() {
        let mut r = result();
        r.error = Some("exhausted retries".into());
        r.payload = vec![];
        assert_eq!(ResultEntry::from_tuple(&r.to_tuple()), Some(r));
    }

    #[test]
    fn timed_result_roundtrips_and_untimed_decodes_to_zero() {
        let mut r = result();
        r.timing = acc_cluster::TaskTiming {
            wait_us: 100,
            xfer_us: 20,
            compute_us: 3_000,
            write_us: 40,
        };
        assert_eq!(ResultEntry::from_tuple(&r.to_tuple()), Some(r.clone()));
        // A v0-style result tuple without the timing field (an older
        // worker) decodes with zeroed attribution, not a failure.
        let bare = Tuple::build(RESULT_TYPE)
            .field("job", "render")
            .field("task_id", 5i64)
            .field("worker", "w01")
            .field("payload", vec![9u8])
            .field("compute_ms", 12.5)
            .field("span_ms", 40.0)
            .done();
        let decoded = ResultEntry::from_tuple(&bare).unwrap();
        assert_eq!(decoded.timing, acc_cluster::TaskTiming::default());
    }

    #[test]
    fn tuple_trace_context_extraction() {
        // No tracing active in tests: to_tuple adds no context field.
        assert_eq!(tuple_trace_context(&task().to_tuple()), None);
        // A tuple carrying one yields it back.
        let ctx = acc_telemetry::TraceContext {
            trace_id: 0x1122,
            span_id: 0x3344,
        };
        let tuple = Tuple::build(TASK_TYPE)
            .field("job", "render")
            .field("task_id", 5i64)
            .field("payload", vec![1u8])
            .field("retries", 0i64)
            .field(TRACE_FIELD, ctx.to_bytes().to_vec())
            .done();
        assert_eq!(tuple_trace_context(&tuple), Some(ctx));
        // The extra field does not confuse entry deserialization.
        let entry = TaskEntry::from_tuple(&tuple).unwrap();
        assert_eq!(entry.task_id, 5);
    }

    #[test]
    fn task_spec_encodes_payload() {
        let spec = TaskSpec::new(3, &42u64);
        let entry = TaskEntry::new("j", spec.task_id, spec.payload);
        assert_eq!(entry.input::<u64>().unwrap(), 42);
        assert!(matches!(entry.input::<String>(), Err(ExecError::Decode(_))));
    }
}
