//! Telemetry integration: a real master/worker round emits the expected
//! span tree, and one cluster run populates the global metrics registry
//! with series from every layer.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::Payload;
use adaptive_spaces::telemetry::trace::{RingBufferSubscriber, TraceKind};
use adaptive_spaces::telemetry::{registry, trace};

/// The trace subscriber is process-global; tests that install one
/// serialise here so captures don't interleave.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

struct Doubler {
    n: u64,
    total: u64,
}

struct DoubleExecutor;

impl TaskExecutor for DoubleExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        Ok((2 * x).to_bytes())
    }
}

impl Application for Doubler {
    fn job_name(&self) -> String {
        "doubler".into()
    }
    fn bundle_name(&self) -> String {
        "doubler-worker".into()
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(DoubleExecutor)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        Ok(())
    }
}

fn fast_config() -> FrameworkConfig {
    FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        class_load_base: Duration::from_millis(2),
        class_load_per_kb: Duration::ZERO,
        task_poll_timeout: Duration::from_millis(10),
        ..FrameworkConfig::default()
    }
}

fn run_job(tasks: u64, workers: usize) -> Doubler {
    let mut app = Doubler { n: tasks, total: 0 };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    for i in 0..workers {
        cluster.add_worker(NodeSpec::new(format!("w{i:02}"), 800, 256));
    }
    let report = cluster.run(&mut app);
    assert_eq!(report.results_collected, tasks as usize);
    cluster.shutdown();
    app
}

#[test]
fn master_worker_round_emits_expected_span_tree() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let ring = RingBufferSubscriber::new(16_384);
    trace::install(ring.clone());
    let app = run_job(8, 2);
    trace::uninstall();
    assert_eq!(app.total, (0..8).map(|i| 2 * i).sum::<u64>());

    let names = ring.names();
    let first = |name: &str| {
        names
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("no {name:?} record in {names:?}"))
    };
    let last = |name: &str| names.iter().rposition(|n| *n == name).unwrap();

    // The whole pipeline is present: planning → task take → compute →
    // result write → aggregation.
    let planning = first("master.planning");
    let take = first("worker.task.take");
    let compute = first("worker.compute");
    let write = first("worker.result.write");
    let aggregation_end = last("master.aggregation");
    assert!(
        planning < take,
        "tasks are taken only after planning starts"
    );
    assert!(take < compute, "compute happens inside the taken task");
    assert!(compute < write, "the result is written after computing");
    assert!(
        write < aggregation_end,
        "aggregation outlives the first result"
    );

    // Every task produced exactly one take and one result write.
    assert_eq!(ring.count("worker.task.take"), 8);
    assert_eq!(ring.count("worker.result.write"), 8);

    // Spans nest: worker.compute sits inside the worker.task span.
    let events = ring.events();
    let task_enter = events
        .iter()
        .find(|e| e.name == "worker.task" && e.kind == TraceKind::SpanEnter)
        .expect("worker.task span");
    let compute_enter = events
        .iter()
        .find(|e| e.name == "worker.compute" && e.kind == TraceKind::SpanEnter)
        .expect("worker.compute span");
    assert_eq!(compute_enter.depth, task_enter.depth + 1);

    // Workers start via a Start signal, which is traced as a transition.
    assert!(ring.count("worker.transition") >= 2, "one Start per worker");

    // Span exits carry elapsed time.
    let exit = events
        .iter()
        .find(|e| matches!(e.kind, TraceKind::SpanExit { .. }) && e.name == "master.aggregation")
        .expect("aggregation exit");
    let TraceKind::SpanExit { .. } = exit.kind else {
        unreachable!()
    };
}

#[test]
fn cluster_run_populates_registry_across_layers() {
    let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    run_job(16, 2);

    let snapshot = registry().snapshot();
    let mut names: Vec<&str> = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .copied()
        .collect();
    names.sort_unstable();
    names.dedup();
    assert!(
        names.len() >= 20,
        "expected at least 20 distinct series, got {}: {names:?}",
        names.len()
    );
    for prefix in [
        "space.",
        "master.",
        "worker.",
        "monitor.",
        "snmp.",
        "federation.",
    ] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no {prefix}* series in {names:?}"
        );
    }

    // Core counters moved with the run.
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    assert!(counter("master.runs") >= 1);
    assert!(counter("master.tasks.planned") >= 16);
    assert!(counter("worker.task.completed") >= 16);
    assert!(counter("space.write.count") >= 16);
    assert!(counter("space.take.count") >= 16);
    assert!(counter("federation.lease.granted") >= 1);
    assert!(counter("snmp.poll.requests") >= 1);
}
