//! BER-style TLV codec for SNMP messages.
//!
//! This is a faithful subset of BER: definite-length TLV framing,
//! minimal-octet two's-complement integers, base-128 OID arcs and the
//! application tags SNMP assigns to counters/gauges/timeticks. It is enough
//! to speak the protocol over a real socket and to exercise malformed-input
//! handling in tests.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Message, Pdu, PduType, SnmpError, SnmpValue};

const TAG_INTEGER: u8 = 0x02;
const TAG_OCTET_STRING: u8 = 0x04;
const TAG_NULL: u8 = 0x05;
const TAG_OID: u8 = 0x06;
const TAG_SEQUENCE: u8 = 0x30;
const TAG_COUNTER: u8 = 0x41;
const TAG_GAUGE: u8 = 0x42;
const TAG_TIMETICKS: u8 = 0x43;
const TAG_NO_SUCH_OBJECT: u8 = 0x80;
const TAG_END_OF_MIB_VIEW: u8 = 0x82;

fn put_length(buf: &mut BytesMut, len: usize) {
    if len < 0x80 {
        buf.put_u8(len as u8);
    } else if len <= 0xFF {
        buf.put_u8(0x81);
        buf.put_u8(len as u8);
    } else {
        buf.put_u8(0x82);
        buf.put_u16(len as u16);
    }
}

fn put_tlv(buf: &mut BytesMut, tag: u8, body: &[u8]) {
    buf.put_u8(tag);
    put_length(buf, body.len());
    buf.put_slice(body);
}

fn encode_i64(v: i64) -> Vec<u8> {
    // Minimal two's-complement big-endian encoding.
    let bytes = v.to_be_bytes();
    let mut start = 0;
    while start < 7 {
        let cur = bytes[start];
        let next_hi = bytes[start + 1] & 0x80;
        if (cur == 0x00 && next_hi == 0) || (cur == 0xFF && next_hi != 0) {
            start += 1;
        } else {
            break;
        }
    }
    bytes[start..].to_vec()
}

fn encode_u64(v: u64) -> Vec<u8> {
    let bytes = v.to_be_bytes();
    let mut start = 0;
    while start < 7 && bytes[start] == 0 {
        start += 1;
    }
    let mut out = Vec::with_capacity(9);
    if bytes[start] & 0x80 != 0 {
        out.push(0); // keep the value positive
    }
    out.extend_from_slice(&bytes[start..]);
    out
}

fn encode_oid_body(oid: &Oid) -> Vec<u8> {
    let arcs = oid.arcs();
    let mut out = Vec::with_capacity(arcs.len() + 1);
    match arcs.len() {
        0 => {}
        1 => out.push((arcs[0] * 40) as u8),
        _ => {
            // First two arcs pack into one byte, which cannot represent a
            // second arc ≥ 40 (only legal under the rarely-used root arc
            // 2); clamp rather than corrupt neighbouring arcs.
            debug_assert!(arcs[1] < 40, "second OID arc ≥ 40 is unsupported");
            out.push((arcs[0] * 40 + arcs[1].min(39)) as u8);
            for &arc in &arcs[2..] {
                push_base128(&mut out, arc);
            }
        }
    }
    out
}

fn push_base128(out: &mut Vec<u8>, mut v: u32) {
    let mut tmp = [0u8; 5];
    let mut n = 0;
    loop {
        tmp[n] = (v & 0x7F) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            break;
        }
    }
    for i in (0..n).rev() {
        let mut byte = tmp[i];
        if i != 0 {
            byte |= 0x80;
        }
        out.push(byte);
    }
}

fn encode_value(buf: &mut BytesMut, value: &SnmpValue) {
    match value {
        SnmpValue::Int(v) => put_tlv(buf, TAG_INTEGER, &encode_i64(*v)),
        SnmpValue::Str(bytes) => put_tlv(buf, TAG_OCTET_STRING, bytes),
        SnmpValue::Oid(oid) => put_tlv(buf, TAG_OID, &encode_oid_body(oid)),
        SnmpValue::Null => put_tlv(buf, TAG_NULL, &[]),
        SnmpValue::Counter(v) => put_tlv(buf, TAG_COUNTER, &encode_u64(*v)),
        SnmpValue::Gauge(v) => put_tlv(buf, TAG_GAUGE, &encode_u64(*v)),
        SnmpValue::TimeTicks(v) => put_tlv(buf, TAG_TIMETICKS, &encode_u64(*v)),
        SnmpValue::NoSuchObject => put_tlv(buf, TAG_NO_SUCH_OBJECT, &[]),
        SnmpValue::EndOfMibView => put_tlv(buf, TAG_END_OF_MIB_VIEW, &[]),
    }
}

/// Encodes a full message to wire bytes.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    // varbind list
    let mut vbl = BytesMut::new();
    for (oid, value) in &msg.pdu.varbinds {
        let mut vb = BytesMut::new();
        put_tlv(&mut vb, TAG_OID, &encode_oid_body(oid));
        encode_value(&mut vb, value);
        put_tlv(&mut vbl, TAG_SEQUENCE, &vb);
    }
    // pdu body
    let mut pdu = BytesMut::new();
    put_tlv(&mut pdu, TAG_INTEGER, &encode_i64(msg.pdu.request_id));
    put_tlv(
        &mut pdu,
        TAG_INTEGER,
        &encode_i64(msg.pdu.error_status.code()),
    );
    put_tlv(&mut pdu, TAG_INTEGER, &encode_i64(msg.pdu.error_index));
    put_tlv(&mut pdu, TAG_SEQUENCE, &vbl);
    // message
    let mut body = BytesMut::new();
    put_tlv(&mut body, TAG_INTEGER, &encode_i64(msg.version as i64));
    put_tlv(&mut body, TAG_OCTET_STRING, msg.community.as_bytes());
    put_tlv(&mut body, msg.pdu_type.tag(), &pdu);
    let mut out = BytesMut::new();
    put_tlv(&mut out, TAG_SEQUENCE, &body);
    out.to_vec()
}

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn new(bytes: &[u8]) -> Reader {
        Reader {
            buf: Bytes::copy_from_slice(bytes),
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, SnmpError> {
        Err(SnmpError::Decode(what.to_owned()))
    }

    fn get_u8(&mut self) -> Result<u8, SnmpError> {
        if self.buf.remaining() < 1 {
            return self.err("truncated");
        }
        Ok(self.buf.get_u8())
    }

    fn get_length(&mut self) -> Result<usize, SnmpError> {
        let first = self.get_u8()?;
        if first < 0x80 {
            return Ok(first as usize);
        }
        match first {
            0x81 => Ok(self.get_u8()? as usize),
            0x82 => {
                let hi = self.get_u8()? as usize;
                let lo = self.get_u8()? as usize;
                Ok((hi << 8) | lo)
            }
            _ => self.err("unsupported length form"),
        }
    }

    fn get_tlv(&mut self) -> Result<(u8, Bytes), SnmpError> {
        let tag = self.get_u8()?;
        let len = self.get_length()?;
        if self.buf.remaining() < len {
            return self.err("TLV body truncated");
        }
        Ok((tag, self.buf.split_to(len)))
    }

    fn expect_tlv(&mut self, want: u8, what: &str) -> Result<Bytes, SnmpError> {
        let (tag, body) = self.get_tlv()?;
        if tag != want {
            return Err(SnmpError::Decode(format!(
                "expected {what} (tag {want:#x}), got tag {tag:#x}"
            )));
        }
        Ok(body)
    }

    fn done(&self) -> bool {
        self.buf.remaining() == 0
    }
}

fn decode_i64(body: &[u8]) -> Result<i64, SnmpError> {
    if body.is_empty() || body.len() > 8 {
        return Err(SnmpError::Decode("integer length".into()));
    }
    let mut v: i64 = if body[0] & 0x80 != 0 { -1 } else { 0 };
    for &b in body {
        v = (v << 8) | b as i64;
    }
    Ok(v)
}

fn decode_u64(body: &[u8]) -> Result<u64, SnmpError> {
    if body.is_empty() || body.len() > 9 || (body.len() == 9 && body[0] != 0) {
        return Err(SnmpError::Decode("unsigned length".into()));
    }
    let mut v: u64 = 0;
    for &b in body {
        v = (v << 8) | b as u64;
    }
    Ok(v)
}

fn decode_oid_body(body: &[u8]) -> Result<Oid, SnmpError> {
    if body.is_empty() {
        return Ok(Oid::from_arcs(Vec::new()));
    }
    let mut arcs = Vec::with_capacity(body.len() + 1);
    arcs.push((body[0] / 40) as u32);
    arcs.push((body[0] % 40) as u32);
    let mut acc: u32 = 0;
    let mut mid = false;
    for &b in &body[1..] {
        acc = acc
            .checked_shl(7)
            .ok_or_else(|| SnmpError::Decode("oid arc overflow".into()))?
            | (b & 0x7F) as u32;
        if b & 0x80 != 0 {
            mid = true;
        } else {
            arcs.push(acc);
            acc = 0;
            mid = false;
        }
    }
    if mid {
        return Err(SnmpError::Decode("oid arc truncated".into()));
    }
    Ok(Oid::from_arcs(arcs))
}

fn decode_value(tag: u8, body: &[u8]) -> Result<SnmpValue, SnmpError> {
    match tag {
        TAG_INTEGER => Ok(SnmpValue::Int(decode_i64(body)?)),
        TAG_OCTET_STRING => Ok(SnmpValue::Str(body.to_vec())),
        TAG_OID => Ok(SnmpValue::Oid(decode_oid_body(body)?)),
        TAG_NULL => Ok(SnmpValue::Null),
        TAG_COUNTER => Ok(SnmpValue::Counter(decode_u64(body)?)),
        TAG_GAUGE => Ok(SnmpValue::Gauge(decode_u64(body)?)),
        TAG_TIMETICKS => Ok(SnmpValue::TimeTicks(decode_u64(body)?)),
        TAG_NO_SUCH_OBJECT => Ok(SnmpValue::NoSuchObject),
        TAG_END_OF_MIB_VIEW => Ok(SnmpValue::EndOfMibView),
        _ => Err(SnmpError::Decode(format!("unknown value tag {tag:#x}"))),
    }
}

/// Decodes a full message from wire bytes.
pub fn decode_message(bytes: &[u8]) -> Result<Message, SnmpError> {
    let mut outer = Reader::new(bytes);
    let body = outer.expect_tlv(TAG_SEQUENCE, "message sequence")?;
    if !outer.done() {
        return Err(SnmpError::Decode("trailing bytes after message".into()));
    }
    let mut r = Reader { buf: body };
    let version = decode_i64(&r.expect_tlv(TAG_INTEGER, "version")?)?;
    let community_raw = r.expect_tlv(TAG_OCTET_STRING, "community")?;
    let community = String::from_utf8(community_raw.to_vec())
        .map_err(|_| SnmpError::Decode("community utf8".into()))?;
    let (pdu_tag, pdu_body) = r.get_tlv()?;
    let pdu_type = PduType::from_tag(pdu_tag).ok_or_else(|| SnmpError::Decode("pdu tag".into()))?;
    let mut p = Reader { buf: pdu_body };
    let request_id = decode_i64(&p.expect_tlv(TAG_INTEGER, "request id")?)?;
    let error_code = decode_i64(&p.expect_tlv(TAG_INTEGER, "error status")?)?;
    let error_status =
        ErrorStatus::from_code(error_code).ok_or_else(|| SnmpError::Decode("error code".into()))?;
    let error_index = decode_i64(&p.expect_tlv(TAG_INTEGER, "error index")?)?;
    let vbl = p.expect_tlv(TAG_SEQUENCE, "varbind list")?;
    let mut varbinds = Vec::new();
    let mut v = Reader { buf: vbl };
    while !v.done() {
        let vb = v.expect_tlv(TAG_SEQUENCE, "varbind")?;
        let mut b = Reader { buf: vb };
        let oid = decode_oid_body(&b.expect_tlv(TAG_OID, "varbind oid")?)?;
        let (tag, val_body) = b.get_tlv()?;
        varbinds.push((oid, decode_value(tag, &val_body)?));
    }
    Ok(Message {
        version: version as u8,
        community,
        pdu_type,
        pdu: Pdu {
            request_id,
            error_status,
            error_index,
            varbinds,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::VERSION_2C;

    fn sample_message() -> Message {
        Message {
            version: VERSION_2C,
            community: "public".into(),
            pdu_type: PduType::Response,
            pdu: Pdu {
                request_id: 12345,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                varbinds: vec![
                    (
                        Oid::parse("1.3.6.1.2.1.25.3.3.1.2.1").unwrap(),
                        SnmpValue::Gauge(73),
                    ),
                    (
                        Oid::parse("1.3.6.1.2.1.1.1.0").unwrap(),
                        SnmpValue::Str(b"worker-3".to_vec()),
                    ),
                    (
                        Oid::parse("1.3.6.1.2.1.1.3.0").unwrap(),
                        SnmpValue::TimeTicks(987654),
                    ),
                ],
            },
        }
    }

    #[test]
    fn message_roundtrip() {
        let msg = sample_message();
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_value_types_roundtrip() {
        let values = vec![
            SnmpValue::Int(0),
            SnmpValue::Int(-1),
            SnmpValue::Int(i64::MAX),
            SnmpValue::Int(i64::MIN),
            SnmpValue::Str(Vec::new()),
            SnmpValue::Str(vec![0xFF; 300]),
            SnmpValue::Oid(Oid::parse("1.3.6.1.4.1.59999.1.1.0").unwrap()),
            SnmpValue::Null,
            SnmpValue::Counter(u64::MAX),
            SnmpValue::Gauge(100),
            SnmpValue::TimeTicks(0),
            SnmpValue::NoSuchObject,
            SnmpValue::EndOfMibView,
        ];
        let msg = Message {
            version: VERSION_2C,
            community: "c".into(),
            pdu_type: PduType::Get,
            pdu: Pdu {
                request_id: -7,
                error_status: ErrorStatus::GenErr,
                error_index: 2,
                varbinds: values
                    .into_iter()
                    .enumerate()
                    .map(|(i, v)| (Oid::from_arcs(vec![1, 3, i as u32 + 1]), v))
                    .collect(),
            },
        };
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = encode_message(&sample_message());
        for cut in 0..bytes.len() {
            assert!(decode_message(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let bytes = encode_message(&sample_message());
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xFF;
            // Must not panic; may or may not decode.
            let _ = decode_message(&mutated);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_message(&sample_message());
        bytes.push(0x00);
        assert!(decode_message(&bytes).is_err());
    }

    #[test]
    fn integer_minimal_encoding() {
        assert_eq!(encode_i64(0), vec![0x00]);
        assert_eq!(encode_i64(127), vec![0x7F]);
        assert_eq!(encode_i64(128), vec![0x00, 0x80]);
        assert_eq!(encode_i64(-1), vec![0xFF]);
        assert_eq!(encode_i64(-129), vec![0xFF, 0x7F]);
        assert_eq!(decode_i64(&encode_i64(-129)).unwrap(), -129);
    }

    #[test]
    fn unsigned_high_bit_gets_leading_zero() {
        let enc = encode_u64(0x80);
        assert_eq!(enc, vec![0x00, 0x80]);
        assert_eq!(decode_u64(&enc).unwrap(), 0x80);
    }

    #[test]
    fn oid_base128_arcs() {
        // Arc 59999 needs multi-byte base-128 encoding.
        let oid = Oid::parse("1.3.6.1.4.1.59999.1").unwrap();
        let body = encode_oid_body(&oid);
        assert_eq!(decode_oid_body(&body).unwrap(), oid);
    }

    #[test]
    fn long_form_lengths() {
        // A payload > 127 bytes forces long-form length encoding.
        let msg = Message {
            version: VERSION_2C,
            community: "x".repeat(200),
            pdu_type: PduType::Get,
            pdu: Pdu::request(1, &[Oid::parse("1.3").unwrap()]),
        };
        let bytes = encode_message(&msg);
        assert_eq!(decode_message(&bytes).unwrap(), msg);
    }
}
