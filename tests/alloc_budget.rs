//! Hard allocation budgets for the wire path's hot operations.
//!
//! The zero-copy decode work (borrowed `Bytes` frames, name interning,
//! pooled buffers) is only real if it stays real: this binary installs a
//! counting global allocator and gates the per-operation allocation
//! counts. CI runs it as a hard gate — a regression that quietly
//! reintroduces per-field copies fails the build, not a dashboard.
//!
//! Everything lives in ONE `#[test]` so no sibling test thread can
//! allocate inside a measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use adaptive_spaces::space::{
    decode_frame, Bytes, NameInterner, Payload, Space, Template, Tuple, Value, WireReader,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocation count of `f`, on this thread's watch.
fn allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCS.load(Ordering::Relaxed) - before, out)
}

/// A representative 6-field task tuple (mostly scalars plus one blob —
/// the shape the cluster framework actually ships).
fn task_tuple(id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "alloc-budget")
        .field("task_id", id)
        .field("attempt", 1i64)
        .field("live", true)
        .field("weight", 0.5f64)
        .field("payload", vec![0xA5u8; 64])
        .done()
}

/// What the decoder did before the zero-copy rework: an owned `String`
/// per name, a copied `Vec<u8>` per blob, no interning, and the builder's
/// canonicalising path. Kept as the baseline the ≥5× gate measures
/// against — observationally equivalent, allocationally honest.
fn legacy_copying_decode(frame: Bytes) -> Tuple {
    fn legacy_value(r: &mut WireReader) -> Value {
        match r.get_u8().unwrap() {
            0 => Value::Int(r.get_i64().unwrap()),
            1 => Value::Float(r.get_f64().unwrap()),
            2 => Value::Bool(r.get_bool().unwrap()),
            3 => Value::Str(r.get_str().unwrap()),
            4 => Value::from(r.get_blob().unwrap()),
            5 => {
                let n = r.get_u32().unwrap() as usize;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(legacy_value(r));
                }
                Value::List(items)
            }
            _ => panic!("bad value tag"),
        }
    }
    let mut r = WireReader::new(frame);
    let type_name = r.get_str().unwrap();
    let n = r.get_u32().unwrap() as usize;
    let mut builder = Tuple::build(type_name);
    for _ in 0..n {
        let name = r.get_str().unwrap();
        let value = legacy_value(&mut r);
        builder = builder.field(name, value);
    }
    builder.done()
}

#[test]
fn wire_path_allocation_budgets() {
    // --- Gate 1: borrowed decode beats the copying decode ≥5× ---------
    let frame = Bytes::from(task_tuple(7).to_bytes());
    let mut interner = NameInterner::new();
    // Warm the name cache (a real connection decodes thousands of frames
    // with the same half-dozen field names; the first is the odd one out).
    let warm: Tuple = decode_frame(frame.clone(), &mut interner).unwrap();
    assert_eq!(warm, task_tuple(7));

    const ROUNDS: u64 = 100;
    let (borrowed, last) = allocs(|| {
        let mut last = None;
        for _ in 0..ROUNDS {
            let t: Tuple = decode_frame(frame.clone(), &mut interner).unwrap();
            last = Some(t);
        }
        last
    });
    let (copying, legacy_last) = allocs(|| {
        let mut last = None;
        for _ in 0..ROUNDS {
            last = Some(legacy_copying_decode(frame.clone()));
        }
        last
    });
    // Same observable tuple either way.
    assert_eq!(last.unwrap(), legacy_last.unwrap());
    eprintln!(
        "alloc_budget: borrowed={:.2}/op copying={:.2}/op ({:.1}x)",
        borrowed as f64 / ROUNDS as f64,
        copying as f64 / ROUNDS as f64,
        copying as f64 / borrowed.max(1) as f64,
    );
    assert!(
        borrowed * 5 <= copying,
        "borrowed decode must allocate ≥5x less than the copying decode: \
         {} vs {} allocs over {ROUNDS} rounds",
        borrowed,
        copying,
    );
    // And an absolute ceiling so the ratio can't drift upward in tandem:
    // fields Vec + Arc<[..]> per decode, plus slack.
    assert!(
        borrowed <= 4 * ROUNDS,
        "borrowed 6-field decode exceeded 4 allocs/op: {borrowed} over {ROUNDS} rounds"
    );

    // --- Gate 2: batch decode stays linear with a small constant ------
    const BATCH: usize = 64;
    let batch_frames: Vec<Bytes> = (0..BATCH)
        .map(|i| Bytes::from(task_tuple(i as i64).to_bytes()))
        .collect();
    let (batch_allocs, decoded) = allocs(|| {
        batch_frames
            .iter()
            .map(|f| decode_frame::<Tuple>(f.clone(), &mut interner).unwrap())
            .collect::<Vec<Tuple>>()
    });
    assert_eq!(decoded.len(), BATCH);
    assert!(
        batch_allocs as usize <= 4 * BATCH + 16,
        "batch decode of {BATCH} tuples exceeded its budget: {batch_allocs} allocs"
    );

    // --- Gate 3: local write+take budget -------------------------------
    let space = Space::new("alloc-budget");
    let template = Template::build("acc.task").eq("job", "alloc-budget").done();
    // Warm the space's shard maps and index buckets.
    space.write(task_tuple(0)).unwrap();
    assert!(space.take_if_exists(&template).unwrap().is_some());
    let tuple = task_tuple(1);
    let (write_take, got) = allocs(|| {
        for _ in 0..ROUNDS {
            space.write(tuple.clone()).unwrap();
        }
        let mut got = 0;
        for _ in 0..ROUNDS {
            if space.take_if_exists(&template).unwrap().is_some() {
                got += 1;
            }
        }
        got
    });
    assert_eq!(got, ROUNDS);
    assert!(
        write_take <= 40 * ROUNDS,
        "write+take cycle exceeded 40 allocs/op: {write_take} over {ROUNDS} rounds"
    );
}
