//! Atomic snapshot files.
//!
//! A snapshot is a single file `snapshot-<cut-lsn>.snap` whose body is an
//! opaque blob produced by the layer above (the tuple space serializes its
//! live entries with its wire codec). The file carries a magic, the WAL cut
//! LSN it corresponds to, and a CRC over the body, and is always written
//! atomically: temp file → fsync → rename → fsync(dir). Recovery loads the
//! newest valid snapshot and replays only WAL records with `lsn >= cut`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use acc_telemetry::Timed;

use crate::crc::crc32;
use crate::series::series;

const MAGIC: &[u8; 8] = b"ACCSNAP1";
const HEADER: usize = 8 + 8 + 4 + 4; // magic + cut_lsn + len + crc

/// Writes `bytes` to `path` atomically: the data lands under a temporary
/// name, is fsynced, renamed over `path`, and the parent directory is
/// fsynced so the rename itself survives a crash. Readers never observe a
/// partially written file.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        File::open(dir)?.sync_data()?;
    }
    Ok(())
}

fn snapshot_path(dir: &Path, cut_lsn: u64) -> PathBuf {
    dir.join(format!("snapshot-{cut_lsn:020}.snap"))
}

/// Existing snapshots as `(cut_lsn, path)`, in cut-LSN order.
fn snapshots(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(cut) = name
            .strip_prefix("snapshot-")
            .and_then(|rest| rest.strip_suffix(".snap"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((cut, entry.path()));
    }
    out.sort_unstable();
    Ok(out)
}

/// Writes a snapshot of state covering every WAL record below `cut_lsn`,
/// then removes older snapshot files. After this returns, the caller may
/// compact the WAL up to `cut_lsn`.
pub fn write_snapshot(dir: impl AsRef<Path>, cut_lsn: u64, body: &[u8]) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let timed = Timed::start();
    let mut bytes = Vec::with_capacity(HEADER + body.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&cut_lsn.to_le_bytes());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(body).to_le_bytes());
    bytes.extend_from_slice(body);
    write_atomic(snapshot_path(dir, cut_lsn), &bytes)?;
    for (cut, path) in snapshots(dir)? {
        if cut < cut_lsn {
            fs::remove_file(path)?;
        }
    }
    let s = series();
    s.snapshot_writes.inc();
    s.snapshot_bytes.add(bytes.len() as u64);
    timed.observe(&s.snapshot_us);
    Ok(())
}

/// Loads the newest snapshot in `dir` that passes its integrity checks,
/// returning `(cut_lsn, body)`. A snapshot with a bad magic, length, or CRC
/// is skipped in favour of the next older one — an interrupted writer can
/// never make recovery worse than "use the previous snapshot".
pub fn load_latest_snapshot(dir: impl AsRef<Path>) -> io::Result<Option<(u64, Vec<u8>)>> {
    let dir = dir.as_ref();
    if !dir.is_dir() {
        return Ok(None);
    }
    for (cut, path) in snapshots(dir)?.into_iter().rev() {
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER || &bytes[0..8] != MAGIC {
            continue;
        }
        let stored_cut = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        if stored_cut != cut || bytes.len() != HEADER + len {
            continue;
        }
        let body = &bytes[HEADER..];
        if crc32(body) != crc {
            continue;
        }
        return Ok(Some((cut, body.to_vec())));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("acc-snap-{}-{label}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_then_load_roundtrip() {
        let dir = test_dir("roundtrip");
        write_snapshot(&dir, 42, b"the space state").unwrap();
        let (cut, body) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(cut, 42);
        assert_eq!(body, b"the space state");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newer_snapshot_replaces_older() {
        let dir = test_dir("replace");
        write_snapshot(&dir, 10, b"old").unwrap();
        write_snapshot(&dir, 20, b"new").unwrap();
        let (cut, body) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(cut, 20);
        assert_eq!(body, b"new");
        // The older file was compacted away.
        assert_eq!(snapshots(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_older() {
        let dir = test_dir("fallback");
        write_snapshot(&dir, 10, b"good").unwrap();
        // Hand-write a newer, corrupt snapshot (bad CRC).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u64.to_le_bytes());
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.extend_from_slice(b"bad");
        fs::write(snapshot_path(&dir, 99), &bytes).unwrap();
        let (cut, body) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(cut, 10);
        assert_eq!(body, b"good");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_skipped() {
        let dir = test_dir("truncated");
        write_snapshot(&dir, 5, b"complete body").unwrap();
        let path = snapshot_path(&dir, 5);
        let full = fs::read(&path).unwrap();
        write_snapshot(&dir, 3, b"older but whole").unwrap();
        // Recreate the newer file, torn mid-body.
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        let (cut, body) = load_latest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(cut, 3);
        assert_eq!(body, b"older but whole");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_loads_none() {
        let dir = test_dir("missing");
        assert!(load_latest_snapshot(&dir).unwrap().is_none());
    }

    #[test]
    fn write_atomic_overwrites_in_place() {
        let dir = test_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        // No stray temp file left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
