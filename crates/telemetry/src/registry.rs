//! The unified metrics registry.
//!
//! Series are registered by static name and live forever: a handle
//! ([`Counter`], [`Gauge`], [`Histogram`]) is an `Arc` into the global
//! registry, so instrumented code looks its series up once (typically at
//! construction) and then records through plain relaxed atomics with no
//! further locking. One process-wide registry ([`registry`]) aggregates
//! every layer — tuple space, framework, SNMP, federation, simulator —
//! into a single [`Registry::snapshot`], a Prometheus-style text
//! exposition ([`Registry::render_text`]) and a JSON dump
//! ([`Registry::render_json`]) for the bench harness.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::histogram::{Histogram, HistogramSnapshot};

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes and control characters (`\n`, `\t`, …, `\u00XX`). Series
/// names are static today, but span/event field values and thread names
/// are arbitrary — and a hostile value must not break the document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`json_escape`] (plus the other standard JSON escapes
/// `\/`, `\b`, `\f` and full `\uXXXX`). Returns `None` on a malformed
/// escape sequence.
pub fn json_unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// The instant process-level series measure uptime from: first call
/// wins, so every entry point can refresh freely.
pub fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Refreshes the process-level gauges every exporter wants:
/// `process.uptime_seconds` (since [`process_epoch`]) and, where the
/// platform exposes it, `process.threads`. Called by the scrape
/// endpoint per request and by the cluster builder at startup.
pub fn refresh_process_series() {
    registry()
        .gauge("process.uptime_seconds")
        .set(process_epoch().elapsed().as_secs() as i64);
    if let Some(n) = os_thread_count() {
        registry().gauge("process.threads").set(n);
    }
}

#[cfg(target_os = "linux")]
fn os_thread_count() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn os_thread_count() -> Option<i64> {
    None
}

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of every registered series.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values by series name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values by series name.
    pub gauges: BTreeMap<&'static str, i64>,
    /// Histogram snapshots by series name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

impl Snapshot {
    /// Total number of distinct named series in the snapshot.
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

#[derive(Default)]
struct Series {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

/// The metrics registry: a name-indexed set of counters, gauges and
/// histograms.
#[derive(Default)]
pub struct Registry {
    series: Mutex<Series>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let series = self.series.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry")
            .field("counters", &series.counters.len())
            .field("gauges", &series.gauges.len())
            .field("histograms", &series.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry (tests; production code uses the global
    /// [`registry()`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Series> {
        // The registry has no lock-poisoning story to tell: all mutation
        // is a BTreeMap insert.
        self.series.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.lock().counters.entry(name).or_default().clone()
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.lock().gauges.entry(name).or_default().clone()
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.lock().histograms.entry(name).or_default().clone()
    }

    /// Takes a consistent-enough snapshot of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let series = self.lock();
        Snapshot {
            counters: series
                .counters
                .iter()
                .map(|(name, c)| (*name, c.get()))
                .collect(),
            gauges: series
                .gauges
                .iter()
                .map(|(name, g)| (*name, g.get()))
                .collect(),
            histograms: series
                .histograms
                .iter()
                .map(|(name, h)| (*name, h.snapshot()))
                .collect(),
        }
    }

    /// Renders every series as Prometheus-style text exposition: one
    /// `name value` line per counter/gauge, and per-histogram quantile
    /// lines (`name{q="0.5"} v`) plus `_count`, `_sum` and `_max`.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snap.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &snap.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &snap.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let v = h.quantile(q).unwrap_or(0);
                out.push_str(&format!("{name}{{q=\"{label}\"}} {v}\n"));
            }
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }

    /// Renders every series as a JSON object (hand-rolled: the workspace
    /// has no serde), shaped as
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    /// sum, max, p50, p90, p99}}}`.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {value}", json_escape(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in &snap.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {value}", json_escape(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &snap.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.max,
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.p99().unwrap_or(0),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// The process-wide registry every layer records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(r.snapshot().counters["x.count"], 3);
    }

    #[test]
    fn gauges_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("x.level");
        g.set(10);
        g.add(-3);
        assert_eq!(r.snapshot().gauges["x.level"], 7);
    }

    #[test]
    fn text_exposition_contains_all_series() {
        let r = Registry::new();
        r.counter("space.write.count").add(5);
        r.gauge("cluster.workers").set(3);
        r.histogram("space.take.wait_us").observe(100);
        let text = r.render_text();
        assert!(text.contains("space.write.count 5"));
        assert!(text.contains("cluster.workers 3"));
        assert!(text.contains("space.take.wait_us{q=\"0.5\"}"));
        assert!(text.contains("space.take.wait_us_count 1"));
        assert!(text.contains("space.take.wait_us_max 100"));
    }

    #[test]
    fn json_dump_is_shaped() {
        let r = Registry::new();
        r.counter("a").inc();
        r.histogram("h_us").observe(7);
        let json = r.render_json();
        assert!(json.contains("\"a\": 1"));
        assert!(json.contains("\"h_us\": {\"count\": 1, \"sum\": 7, \"max\": 7"));
        // Crude but effective: braces balance.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn snapshot_counts_series() {
        let r = Registry::new();
        r.counter("a");
        r.counter("b");
        r.gauge("c");
        r.histogram("d");
        assert_eq!(r.snapshot().series_count(), 4);
    }

    #[test]
    fn global_registry_is_shared() {
        registry().counter("telemetry.test.shared").inc();
        assert!(registry().snapshot().counters["telemetry.test.shared"] >= 1);
    }

    #[test]
    fn hostile_strings_roundtrip_through_json_escaping() {
        let hostile = [
            "plain",
            "quote\"inside",
            "back\\slash",
            "new\nline\ttab\rret",
            "ctrl\u{1}\u{1f}chars",
            "uni ✓ 🚀",
            "\"},\"pwned\":{\"",
        ];
        for s in hostile {
            let escaped = json_escape(s);
            assert!(
                !escaped.chars().any(|c| (c as u32) < 0x20),
                "raw control char survived: {escaped:?}"
            );
            // Every quote in the escaped form is itself escaped, so the
            // value cannot terminate the enclosing JSON string early.
            let bytes = escaped.as_bytes();
            for (i, b) in bytes.iter().enumerate() {
                if *b == b'"' {
                    assert!(i > 0 && bytes[i - 1] == b'\\', "naked quote in {escaped:?}");
                }
            }
            assert_eq!(json_unescape(&escaped).as_deref(), Some(s));
        }
        // Standard escapes we don't emit still parse.
        assert_eq!(json_unescape("a\\/b\\u0041").as_deref(), Some("a/bA"));
        // Malformed input is rejected, not mangled.
        assert_eq!(json_unescape("bad\\"), None);
        assert_eq!(json_unescape("bad\\q"), None);
        assert_eq!(json_unescape("bad\\u12"), None);
    }

    #[test]
    fn escaped_json_renders_hostile_series_names_safely() {
        let r = Registry::new();
        r.counter("evil\"name\\with\nstuff").inc();
        let json = r.render_json();
        assert!(json.contains("evil\\\"name\\\\with\\nstuff"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn process_series_refresh_populates_gauges() {
        refresh_process_series();
        let snap = registry().snapshot();
        assert!(snap.gauges.contains_key("process.uptime_seconds"));
        #[cfg(target_os = "linux")]
        assert!(snap.gauges["process.threads"] >= 1);
    }
}
