//! Discovery: how clients and services find lookup services.
//!
//! The Jini discovery protocol drops a multicast packet on a well-known
//! port; lookup servers answer with their address. In-process, the
//! [`DiscoveryBus`] plays the role of that well-known multicast group:
//! lookup services [`announce`](DiscoveryBus::announce) themselves, clients
//! [`discover`](DiscoveryBus::discover) the current set, and interested
//! parties subscribe to arrival events.

use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;

use acc_telemetry::event;
use parking_lot::Mutex;

use crate::lookup::LookupService;
use crate::series::series;

/// Fired when a lookup service joins the bus.
#[derive(Clone)]
pub struct DiscoveryEvent {
    /// The newly announced lookup service.
    pub lookup: Arc<LookupService>,
}

impl fmt::Debug for DiscoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiscoveryEvent")
            .field("lookup", &self.lookup.name())
            .finish()
    }
}

type DiscoveryListener = Box<dyn Fn(DiscoveryEvent) + Send + Sync>;

/// The well-known "multicast group" on which lookup services announce
/// themselves.
#[derive(Default)]
pub struct DiscoveryBus {
    inner: Mutex<BusInner>,
}

#[derive(Default)]
struct BusInner {
    lookups: Vec<Arc<LookupService>>,
    listeners: Vec<DiscoveryListener>,
}

impl fmt::Debug for DiscoveryBus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiscoveryBus")
            .field("lookups", &self.inner.lock().lookups.len())
            .finish()
    }
}

impl DiscoveryBus {
    /// Creates an empty bus.
    pub fn new() -> Arc<DiscoveryBus> {
        Arc::new(DiscoveryBus::default())
    }

    /// A lookup service announces its presence (the Jini announcement
    /// packet). Subscribed listeners are notified.
    pub fn announce(&self, lookup: Arc<LookupService>) {
        let listeners_ev = {
            let mut inner = self.inner.lock();
            if inner.lookups.iter().any(|l| Arc::ptr_eq(l, &lookup)) {
                return;
            }
            inner.lookups.push(lookup.clone());
            DiscoveryEvent { lookup }
        };
        series().announcements.inc();
        event!(
            "federation.discovery.announce",
            lookup = listeners_ev.lookup.name(),
        );
        let inner = self.inner.lock();
        for l in &inner.listeners {
            l(listeners_ev.clone());
        }
    }

    /// A lookup service leaves the bus.
    pub fn retract(&self, lookup: &Arc<LookupService>) {
        self.inner
            .lock()
            .lookups
            .retain(|l| !Arc::ptr_eq(l, lookup));
    }

    /// The discovery request: returns every announced lookup service.
    pub fn discover(&self) -> Vec<Arc<LookupService>> {
        series().discoveries.inc();
        self.inner.lock().lookups.clone()
    }

    /// Finds an announced lookup service by name.
    pub fn discover_named(&self, name: &str) -> Option<Arc<LookupService>> {
        self.inner
            .lock()
            .lookups
            .iter()
            .find(|l| l.name() == name)
            .cloned()
    }

    /// Subscribes to future announcements.
    pub fn subscribe(&self, listener: DiscoveryListener) {
        self.inner.lock().listeners.push(listener);
    }

    /// Channel-backed subscription helper.
    pub fn subscribe_channel(&self) -> mpsc::Receiver<DiscoveryEvent> {
        let (tx, rx) = mpsc::channel();
        self.subscribe(Box::new(move |ev| {
            let _ = tx.send(ev);
        }));
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_then_discover() {
        let bus = DiscoveryBus::new();
        assert!(bus.discover().is_empty());
        let lus = LookupService::new("lus-1");
        bus.announce(lus.clone());
        let found = bus.discover();
        assert_eq!(found.len(), 1);
        assert!(Arc::ptr_eq(&found[0], &lus));
    }

    #[test]
    fn duplicate_announce_ignored() {
        let bus = DiscoveryBus::new();
        let lus = LookupService::new("lus-1");
        bus.announce(lus.clone());
        bus.announce(lus.clone());
        assert_eq!(bus.discover().len(), 1);
    }

    #[test]
    fn retract_removes() {
        let bus = DiscoveryBus::new();
        let lus = LookupService::new("lus-1");
        bus.announce(lus.clone());
        bus.retract(&lus);
        assert!(bus.discover().is_empty());
    }

    #[test]
    fn discover_named() {
        let bus = DiscoveryBus::new();
        bus.announce(LookupService::new("a"));
        bus.announce(LookupService::new("b"));
        assert_eq!(bus.discover_named("b").unwrap().name(), "b");
        assert!(bus.discover_named("c").is_none());
    }

    #[test]
    fn subscription_sees_announcements() {
        let bus = DiscoveryBus::new();
        let rx = bus.subscribe_channel();
        bus.announce(LookupService::new("late"));
        let ev = rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
        assert_eq!(ev.lookup.name(), "late");
    }
}
