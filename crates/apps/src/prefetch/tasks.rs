//! The pre-fetching application as the framework sees it.
//!
//! Parallelism is achieved by distributing the matrix and performing the
//! computation on local portions in parallel (paper §5.1.3): each task
//! computes one strip of the matrix–vector product for the current
//! power-iteration step. Inter-iteration dependencies are resolved at the
//! master: it aggregates the strips, applies damping/teleport, checks
//! convergence and replans the next iteration's tasks — the barrier the
//! paper notes limits this application's speedup.
//!
//! The paper's configuration: 500×500 and 500×1 matrices, strips of 20
//! rows ⇒ 25 tasks per iteration.

use std::sync::Arc;

use acc_core::{Application, ExecError, Master, RunReport, TaskEntry, TaskExecutor, TaskSpec};
use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};

use super::matrix::StochasticMatrix;
use super::pagerank::PageRank;
use super::web::{generate_cluster, LinkGraph};

/// Input payload of one strip task: the region of rows plus the current
/// iterate (the 500×1 matrix of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct StripTask {
    /// First row of the strip.
    pub row0: u32,
    /// Number of rows.
    pub rows: u32,
    /// The current rank vector.
    pub vector: Vec<f64>,
}

impl Payload for StripTask {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.row0);
        w.put_u32(self.rows);
        w.put_f64_slice(&self.vector);
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        Ok(StripTask {
            row0: r.get_u32()?,
            rows: r.get_u32()?,
            vector: r.get_f64_vec()?,
        })
    }
}

/// The PageRank-based pre-fetching application.
pub struct PrefetchApp {
    matrix: Arc<StochasticMatrix>,
    /// Solver parameters.
    pub solver: PageRank,
    strip_rows: usize,
    rank: Vec<f64>,
    product: Vec<f64>,
    absorbed: usize,
    iteration: usize,
    last_delta: f64,
}

impl PrefetchApp {
    /// An app over an explicit matrix and strip height.
    pub fn new(matrix: StochasticMatrix, strip_rows: usize) -> PrefetchApp {
        let n = matrix.n();
        PrefetchApp {
            matrix: Arc::new(matrix),
            solver: PageRank::default(),
            strip_rows,
            rank: vec![1.0 / n as f64; n],
            product: vec![0.0; n],
            absorbed: 0,
            iteration: 0,
            last_delta: f64::INFINITY,
        }
    }

    /// The paper's configuration: a 500-page cluster, strips of 20 rows
    /// (25 tasks per iteration).
    pub fn paper_configuration() -> PrefetchApp {
        let pages = generate_cluster("acme", 500, 2001);
        let graph = LinkGraph::from_pages(&pages);
        PrefetchApp::new(StochasticMatrix::from_graph(&graph), 20)
    }

    /// The matrix being iterated.
    pub fn matrix(&self) -> Arc<StochasticMatrix> {
        self.matrix.clone()
    }

    /// Completed power iterations.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    /// The current rank vector.
    pub fn ranks(&self) -> &[f64] {
        &self.rank
    }

    /// L1 change produced by the last finished iteration.
    pub fn last_delta(&self) -> f64 {
        self.last_delta
    }

    /// Has the iteration converged?
    pub fn converged(&self) -> bool {
        self.iteration > 0 && self.last_delta < self.solver.tolerance
    }

    /// Finishes one iteration after all strips have been absorbed:
    /// applies damping/teleport and swaps in the new iterate.
    ///
    /// # Panics
    /// If called before every strip of the round was absorbed.
    pub fn finish_iteration(&mut self) -> f64 {
        assert_eq!(
            self.absorbed,
            self.matrix.strips(self.strip_rows).len(),
            "finish_iteration before all strips arrived"
        );
        let next = self.solver.step_from_product(&self.product);
        self.last_delta = PageRank::delta(&next, &self.rank);
        self.rank = next;
        self.iteration += 1;
        self.absorbed = 0;
        self.product.iter_mut().for_each(|x| *x = 0.0);
        self.last_delta
    }
}

struct StripMultiplyExecutor {
    matrix: Arc<StochasticMatrix>,
}

impl TaskExecutor for StripMultiplyExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let input: StripTask = task.input()?;
        if input.vector.len() != self.matrix.n() {
            return Err(ExecError::App("vector dimension mismatch".into()));
        }
        let out =
            self.matrix
                .strip_multiply(input.row0 as usize, input.rows as usize, &input.vector);
        Ok(out.to_bytes())
    }
}

impl Application for PrefetchApp {
    fn job_name(&self) -> String {
        "page-prefetch".into()
    }

    fn bundle_name(&self) -> String {
        "page-prefetch-worker".into()
    }

    fn bundle_kb(&self) -> usize {
        32 // a matvec kernel; the matrix ships with the bundle
    }

    fn plan(&mut self) -> Vec<TaskSpec> {
        self.matrix
            .strips(self.strip_rows)
            .into_iter()
            .enumerate()
            .map(|(i, (row0, rows))| {
                TaskSpec::new(
                    i as u64,
                    &StripTask {
                        row0: row0 as u32,
                        rows: rows as u32,
                        vector: self.rank.clone(),
                    },
                )
            })
            .collect()
    }

    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(StripMultiplyExecutor {
            matrix: self.matrix.clone(),
        })
    }

    fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        let strips = self.matrix.strips(self.strip_rows);
        let (row0, rows) = *strips
            .get(task_id as usize)
            .ok_or_else(|| ExecError::App(format!("strip {task_id} out of range")))?;
        let values = Vec::<f64>::from_bytes(payload).map_err(ExecError::Decode)?;
        if values.len() != rows {
            return Err(ExecError::App(format!(
                "strip {task_id}: {} rows, expected {rows}",
                values.len()
            )));
        }
        self.product[row0..row0 + rows].copy_from_slice(&values);
        self.absorbed += 1;
        Ok(())
    }
}

/// Drives the full parallel PageRank: one master round per power
/// iteration, with the inter-iteration barrier at the master. Returns the
/// per-round reports.
pub fn run_pagerank_parallel(
    master: &Master,
    app: &mut PrefetchApp,
) -> Result<Vec<RunReport>, ExecError> {
    let mut reports = Vec::new();
    while !app.converged() && app.iterations() < app.solver.max_iterations {
        let report = master
            .run(app)
            .map_err(|e| ExecError::App(format!("space error: {e}")))?;
        if !report.complete {
            return Err(ExecError::App(format!(
                "iteration {} incomplete: {}/{} strips",
                app.iterations(),
                report.results_collected,
                report.times.tasks
            )));
        }
        app.finish_iteration();
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_app() -> PrefetchApp {
        let pages = generate_cluster("t", 60, 3);
        let graph = LinkGraph::from_pages(&pages);
        PrefetchApp::new(StochasticMatrix::from_graph(&graph), 13)
    }

    #[test]
    fn strip_task_roundtrip() {
        let task = StripTask {
            row0: 20,
            rows: 20,
            vector: vec![0.1, 0.2, 0.7],
        };
        assert_eq!(StripTask::from_bytes(&task.to_bytes()).unwrap(), task);
    }

    #[test]
    fn paper_configuration_has_25_tasks() {
        let mut app = PrefetchApp::paper_configuration();
        assert_eq!(app.matrix().n(), 500);
        assert_eq!(app.plan().len(), 25);
    }

    #[test]
    fn one_local_round_matches_direct_step() {
        let mut app = small_app();
        let exec = app.executor();
        let direct = app
            .solver
            .step_from_product(&app.matrix().multiply(app.ranks()));
        for spec in app.plan() {
            let entry = TaskEntry::new("page-prefetch", spec.task_id, spec.payload);
            let out = exec.execute(&entry).unwrap();
            app.absorb(spec.task_id, &out).unwrap();
        }
        app.finish_iteration();
        assert_eq!(app.ranks(), &direct[..], "bit-identical to direct step");
        assert_eq!(app.iterations(), 1);
    }

    #[test]
    fn local_loop_converges_to_sequential_pagerank() {
        let mut app = small_app();
        let (expected, expected_iters) = app.solver.compute(&app.matrix());
        let exec = app.executor();
        while !app.converged() && app.iterations() < app.solver.max_iterations {
            for spec in app.plan() {
                let entry = TaskEntry::new("page-prefetch", spec.task_id, spec.payload);
                let out = exec.execute(&entry).unwrap();
                app.absorb(spec.task_id, &out).unwrap();
            }
            app.finish_iteration();
        }
        assert_eq!(app.iterations(), expected_iters);
        assert_eq!(app.ranks(), &expected[..], "bit-identical convergence");
    }

    #[test]
    fn absorb_validates_inputs() {
        let mut app = small_app();
        assert!(app.absorb(999, &[]).is_err());
        let bad = vec![1.0f64; 2].to_bytes();
        assert!(app.absorb(0, &bad).is_err());
    }

    #[test]
    #[should_panic(expected = "before all strips")]
    fn finish_iteration_requires_all_strips() {
        let mut app = small_app();
        app.finish_iteration();
    }
}
