//! End-to-end integration: all three paper applications run on the real
//! (thread-based) adaptive cluster and produce outputs identical to their
//! sequential baselines.

use std::time::Duration;

use adaptive_spaces::apps::prefetch::{pagerank_sequential, run_pagerank_parallel, PrefetchApp};
use adaptive_spaces::apps::pricing::{price_sequential, OptionSpec, PricingApp};
use adaptive_spaces::apps::raytrace::{benchmark_scene, render_sequential, RayTraceApp};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{AdaptiveCluster, ClusterBuilder, FrameworkConfig, Master};

fn fast_config() -> FrameworkConfig {
    FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        class_load_base: Duration::from_millis(2),
        class_load_per_kb: Duration::ZERO,
        task_poll_timeout: Duration::from_millis(10),
        ..FrameworkConfig::default()
    }
}

fn cluster_with_workers(
    app: &dyn adaptive_spaces::framework::Application,
    n: usize,
) -> AdaptiveCluster {
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(app);
    for i in 0..n {
        cluster.add_worker(NodeSpec::new(format!("w{i:02}"), 800, 256));
    }
    cluster
}

#[test]
fn option_pricing_parallel_equals_sequential() {
    let mut app = PricingApp::new(OptionSpec::paper_default(), 10, 20);
    let mut cluster = cluster_with_workers(&app, 3);
    let report = cluster.run(&mut app);
    assert!(report.complete, "failures: {:?}", report.failures);
    let parallel = app.result();
    let sequential = price_sequential(&PricingApp::new(OptionSpec::paper_default(), 10, 20));
    assert_eq!(parallel, sequential, "bit-identical pricing");
    assert!(parallel.high >= parallel.low);
    cluster.shutdown();
}

#[test]
fn ray_tracing_parallel_equals_sequential() {
    let mut app = RayTraceApp::new(benchmark_scene(), 64, 64, 8);
    let mut cluster = cluster_with_workers(&app, 3);
    let report = cluster.run(&mut app);
    assert!(report.complete);
    let image = app.image().expect("all strips");
    let reference = render_sequential(&benchmark_scene(), 64, 64);
    assert_eq!(image.pixels, reference.pixels, "byte-identical render");
    cluster.shutdown();
}

#[test]
fn prefetch_pagerank_parallel_equals_sequential() {
    let pages = adaptive_spaces::apps::prefetch::generate_cluster("it", 80, 5);
    let graph = adaptive_spaces::apps::prefetch::LinkGraph::from_pages(&pages);
    let matrix = adaptive_spaces::apps::prefetch::StochasticMatrix::from_graph(&graph);
    let mut app = PrefetchApp::new(matrix.clone(), 16);
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    for i in 0..3 {
        cluster.add_worker(NodeSpec::new(format!("w{i:02}"), 800, 256));
    }
    let master = Master::new(cluster.find_space().unwrap());
    let reports = run_pagerank_parallel(&master, &mut app).expect("iterations complete");
    assert!(!reports.is_empty());
    let (expected, expected_iters) = pagerank_sequential(&matrix, &app.solver);
    assert_eq!(app.iterations(), expected_iters);
    assert_eq!(app.ranks(), &expected[..], "bit-identical PageRank");
    cluster.shutdown();
}

#[test]
fn two_jobs_back_to_back_on_one_cluster() {
    // The cluster can be re-bound to a second application after the first
    // completes (workers added per binding).
    let mut pricing = PricingApp::new(OptionSpec::paper_default(), 4, 5);
    let mut cluster = cluster_with_workers(&pricing, 2);
    let first = cluster.run(&mut pricing);
    assert!(first.complete);

    let mut render = RayTraceApp::new(benchmark_scene(), 32, 32, 8);
    cluster.install(&render);
    cluster.add_worker(NodeSpec::new("late-worker", 800, 256));
    let second = cluster.run(&mut render);
    assert!(second.complete);
    assert!(render.image().is_some());
    cluster.shutdown();
}

#[test]
fn remote_workers_over_tcp_space() {
    // The deployment shape: the master hosts the space; worker machines
    // reach it through the TCP proxy. Results must still be bit-identical.
    let mut app = PricingApp::new(OptionSpec::paper_default(), 8, 10);
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster
        .add_remote_worker(NodeSpec::new("remote-1", 800, 256))
        .unwrap();
    cluster
        .add_remote_worker(NodeSpec::new("remote-2", 800, 256))
        .unwrap();
    let report = cluster.run(&mut app);
    assert!(report.complete, "failures: {:?}", report.failures);
    let sequential = price_sequential(&PricingApp::new(OptionSpec::paper_default(), 8, 10));
    assert_eq!(app.result(), sequential);
    // Both remote workers participated (tasks are plentiful enough that
    // at least one did real work; assert none were lost either way).
    // Workers bump their counters after the result-write round trip, so
    // the master can observe the final result a beat before the counter
    // moves — give the tallies a moment to settle.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let tally = || -> u64 { cluster.workers().iter().map(|w| w.tasks_done()).sum() };
    while tally() < 16 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(tally(), 16);
    cluster.shutdown();
}

#[test]
fn mixed_local_and_remote_workers() {
    let mut app = RayTraceApp::new(benchmark_scene(), 40, 40, 8);
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("local-1", 800, 256));
    cluster
        .add_remote_worker(NodeSpec::new("remote-1", 800, 256))
        .unwrap();
    let report = cluster.run(&mut app);
    assert!(report.complete);
    let image = app.image().unwrap();
    assert_eq!(
        image.pixels,
        render_sequential(&benchmark_scene(), 40, 40).pixels
    );
    cluster.shutdown();
}

#[test]
fn report_metrics_are_consistent() {
    let mut app = PricingApp::new(OptionSpec::paper_default(), 6, 10);
    let mut cluster = cluster_with_workers(&app, 2);
    let report = cluster.run(&mut app);
    assert!(report.complete);
    let t = &report.times;
    assert_eq!(t.tasks, 12);
    assert!(t.parallel_ms >= t.task_planning_ms);
    assert!(t.parallel_ms >= t.task_aggregation_ms);
    assert!(t.max_worker_ms >= 0.0);
    assert!(t.workers_used() >= 1 && t.workers_used() <= 2);
    cluster.shutdown();
}
